"""Segment-wise SRAM power gating (§4.1 / §4.3).

The SRAM scratchpad is divided into 4 KB segments, each of which can be
ON, SLEEP (drowsy, data-retaining) or OFF (gated-Vdd, data lost).  The
hardware-managed policy can only use SLEEP for capacity it cannot prove
unused; the software-managed policy uses the compiler's allocation
information to power unused capacity fully OFF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.compiler.allocation import SegmentLifetime, SramAllocator
from repro.gating.bet import GatingParameters
from repro.hardware.chips import NPUChipSpec
from repro.hardware.components import PowerState


@dataclass(frozen=True)
class SramStateShares:
    """Fractions of SRAM capacity x time spent in each power state."""

    on: float
    sleep: float
    off: float

    def __post_init__(self) -> None:
        total = self.on + self.sleep + self.off
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-6):
            raise ValueError(f"SRAM state shares must sum to 1, got {total}")

    def leakage_factor(self, parameters: GatingParameters) -> float:
        """Average leakage relative to an always-on SRAM."""
        return (
            self.on
            + self.sleep * parameters.sleep_leakage()
            + self.off * parameters.leakage.sram_off
        )


class SramGatingModel:
    """Maps SRAM capacity usage onto segment power states."""

    def __init__(self, chip: NPUChipSpec, parameters: GatingParameters):
        self.chip = chip
        self.parameters = parameters

    # ------------------------------------------------------------------ #
    def shares_for_demand(
        self, demand_bytes: float, software_managed: bool
    ) -> SramStateShares:
        """State shares when an operator needs ``demand_bytes`` of SRAM.

        The used capacity stays ON (it actively serves compute and DMA
        traffic).  Unused capacity goes to SLEEP under hardware
        management (the hardware cannot prove it holds no live data) and
        fully OFF under software management.
        """
        capacity = self.chip.sram_bytes
        used = min(1.0, max(0.0, demand_bytes / capacity))
        unused = 1.0 - used
        if software_managed:
            return SramStateShares(on=used, sleep=0.0, off=unused)
        return SramStateShares(on=used, sleep=unused, off=0.0)

    def leakage_factor_for_demand(
        self, demand_bytes: float, software_managed: bool
    ) -> float:
        """Average SRAM leakage factor for one operator."""
        shares = self.shares_for_demand(demand_bytes, software_managed)
        return shares.leakage_factor(self.parameters)

    def leakage_factor_for_demand_array(
        self, demand_bytes, software_managed: bool
    ):
        """Vectorized :meth:`leakage_factor_for_demand` (columnar path).

        Mirrors ``on + sleep * sleep_leak + off * off_leak`` with the
        zero share dropped — adding ``0.0 * leak`` to a non-negative
        float is exact, so the result is bit-identical to the scalar.
        """
        capacity = self.chip.sram_bytes
        used = np.minimum(1.0, np.maximum(0.0, demand_bytes / capacity))
        unused = 1.0 - used
        if software_managed:
            return used + unused * self.parameters.leakage.sram_off
        return used + unused * self.parameters.sleep_leakage()

    # ------------------------------------------------------------------ #
    def shares_from_lifetimes(
        self,
        allocator: SramAllocator,
        lifetimes: list[SegmentLifetime],
        num_instructions: int,
        software_managed: bool,
    ) -> SramStateShares:
        """State shares derived from per-segment buffer lifetimes.

        Used by the trace-level path: a segment is ON while any buffer
        mapped to it is live, OFF (software) or SLEEP (hardware)
        otherwise.
        """
        if num_instructions <= 0:
            raise ValueError("num_instructions must be positive")
        total = len(lifetimes) * num_instructions
        on_cells = 0
        for lifetime in lifetimes:
            for start, end in lifetime.busy_intervals:
                on_cells += min(end, num_instructions - 1) - max(0, start) + 1
        on = min(1.0, on_cells / total)
        rest = 1.0 - on
        if software_managed:
            return SramStateShares(on=on, sleep=0.0, off=rest)
        return SramStateShares(on=on, sleep=rest, off=0.0)

    def segment_state(
        self,
        lifetime: SegmentLifetime,
        instruction_index: int,
        software_managed: bool,
    ) -> PowerState:
        """Power state of one segment at one instruction index."""
        if lifetime.busy_at(instruction_index):
            return PowerState.ON
        if software_managed and not lifetime.ever_used:
            return PowerState.OFF
        return PowerState.OFF if software_managed else PowerState.SLEEP


__all__ = ["SramGatingModel", "SramStateShares"]
