"""Hardware idle-detection state machine.

The hardware-managed (``auto``) policy gates a component after observing
it idle for a detection window (a fraction of the break-even time), and
wakes it up when the next operation arrives, exposing the wake-up delay.
This is the mechanism ReGate uses for the HBM and ICI controllers and,
in the ReGate-Base/HW configurations, for VUs and whole SAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class DetectorState(str, Enum):
    """States of the idle-detection finite state machine."""

    ACTIVE = "active"
    COUNTING = "counting"
    GATED = "gated"
    WAKING = "waking"


@dataclass
class IdleDetectorStats:
    """Aggregate statistics of one detector instance."""

    active_cycles: int = 0
    counting_cycles: int = 0
    gated_cycles: int = 0
    waking_cycles: int = 0
    gate_events: int = 0
    exposed_wakeup_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.active_cycles
            + self.counting_cycles
            + self.gated_cycles
            + self.waking_cycles
        )


class IdleDetector:
    """Cycle-accurate idle-detection state machine for one block.

    Drive it with :meth:`step`, passing whether the block receives work
    this cycle.  The detector reports whether the work can proceed this
    cycle (``False`` while the block is waking up, which is how wake-up
    delay is exposed to the pipeline).
    """

    def __init__(self, detection_window_cycles: int, wakeup_delay_cycles: int):
        if detection_window_cycles < 1:
            raise ValueError("detection window must be at least one cycle")
        if wakeup_delay_cycles < 0:
            raise ValueError("wake-up delay cannot be negative")
        self.detection_window = detection_window_cycles
        self.wakeup_delay = wakeup_delay_cycles
        self.state = DetectorState.ACTIVE
        self.stats = IdleDetectorStats()
        self._idle_counter = 0
        self._wake_counter = 0

    # ------------------------------------------------------------------ #
    @property
    def is_gated(self) -> bool:
        return self.state is DetectorState.GATED

    def step(self, has_work: bool) -> bool:
        """Advance one cycle; returns True if work can execute this cycle."""
        if self.state is DetectorState.ACTIVE:
            if has_work:
                self.stats.active_cycles += 1
                return True
            self.state = DetectorState.COUNTING
            self._idle_counter = 1
            self.stats.counting_cycles += 1
            return True
        if self.state is DetectorState.COUNTING:
            if has_work:
                self.state = DetectorState.ACTIVE
                self.stats.active_cycles += 1
                return True
            self._idle_counter += 1
            self.stats.counting_cycles += 1
            if self._idle_counter >= self.detection_window:
                self.state = DetectorState.GATED
                self.stats.gate_events += 1
            return True
        if self.state is DetectorState.GATED:
            if not has_work:
                self.stats.gated_cycles += 1
                return True
            if self.wakeup_delay == 0:
                self.state = DetectorState.ACTIVE
                self.stats.active_cycles += 1
                return True
            self.state = DetectorState.WAKING
            self._wake_counter = 1
            self.stats.waking_cycles += 1
            self.stats.exposed_wakeup_cycles += 1
            return False
        # WAKING: the pending operation stalls until the block is ready.
        self.stats.waking_cycles += 1
        self._wake_counter += 1
        if self._wake_counter >= self.wakeup_delay:
            self.state = DetectorState.ACTIVE
            return False
        self.stats.exposed_wakeup_cycles += 1
        return False

    def run(self, activity: list[bool]) -> IdleDetectorStats:
        """Run the detector over an activity trace (True = has work).

        This stepwise loop is the reference oracle;
        :func:`run_length_idle_stats` computes the same statistics from
        the run-length encoding of the trace in vectorized time.
        """
        pending = list(activity)
        index = 0
        while index < len(pending):
            executed = self.step(pending[index])
            if executed or not pending[index]:
                index += 1
            # else: the same pending work is retried next cycle (stall).
        return self.stats


def run_length_idle_stats(
    activity, detection_window_cycles: int, wakeup_delay_cycles: int
) -> IdleDetectorStats:
    """Vectorized :meth:`IdleDetector.run`, bit-identical statistics.

    The state machine only changes behavior at run boundaries of the
    activity trace, so the trace is run-length encoded and each run is
    accounted in closed form:

    * an idle run of length ``I`` spends ``min(I, D)`` cycles counting
      and, when ``I >= D``, gates once and stays gated for ``I - D``
      cycles — where ``D = max(detection_window, 2)``: the stepwise
      machine checks the window only in the COUNTING branch, so the
      first idle cycle (the ACTIVE→COUNTING transition) can never gate
      and a one-cycle window still needs two idle cycles;
    * a work run of length ``W`` executes ``W`` active cycles; if it
      arrives while the block is gated and the wake-up delay ``V`` is
      non-zero, the stepwise machine additionally burns ``max(2, V)``
      waking cycles of which ``max(1, V - 1)`` stall the pending
      operation (the entry cycle both wakes and counts as exposed,
      while the cycle that completes the wake-up does not re-expose).

    All quantities are integers, so the equivalence with the stepwise
    oracle is exact, not approximate.
    """
    if detection_window_cycles < 1:
        raise ValueError("detection window must be at least one cycle")
    if wakeup_delay_cycles < 0:
        raise ValueError("wake-up delay cannot be negative")
    trace = np.asarray(activity, dtype=bool)
    stats = IdleDetectorStats()
    if trace.size == 0:
        return stats

    boundaries = np.flatnonzero(trace[1:] != trace[:-1])
    starts = np.concatenate(([0], boundaries + 1))
    lengths = np.diff(np.concatenate((starts, [trace.size])))
    is_work = trace[starts]
    idle_lengths = lengths[~is_work]

    window = max(detection_window_cycles, 2)
    stats.active_cycles = int(np.count_nonzero(trace))
    stats.counting_cycles = int(np.minimum(idle_lengths, window).sum())
    stats.gated_cycles = int(np.maximum(idle_lengths - window, 0).sum())
    stats.gate_events = int(np.count_nonzero(idle_lengths >= window))

    # Work runs that arrive while the detector is gated.
    gated_then_work = (~is_work[:-1]) & (lengths[:-1] >= window) & is_work[1:]
    wakes = int(np.count_nonzero(gated_then_work))
    delay = wakeup_delay_cycles
    if delay > 0 and wakes:
        stats.waking_cycles = wakes * max(2, delay)
        stats.exposed_wakeup_cycles = wakes * max(1, delay - 1)
    return stats


__all__ = [
    "DetectorState",
    "IdleDetector",
    "IdleDetectorStats",
    "run_length_idle_stats",
]
