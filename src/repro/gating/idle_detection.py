"""Hardware idle-detection state machine.

The hardware-managed (``auto``) policy gates a component after observing
it idle for a detection window (a fraction of the break-even time), and
wakes it up when the next operation arrives, exposing the wake-up delay.
This is the mechanism ReGate uses for the HBM and ICI controllers and,
in the ReGate-Base/HW configurations, for VUs and whole SAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class DetectorState(str, Enum):
    """States of the idle-detection finite state machine."""

    ACTIVE = "active"
    COUNTING = "counting"
    GATED = "gated"
    WAKING = "waking"


@dataclass
class IdleDetectorStats:
    """Aggregate statistics of one detector instance."""

    active_cycles: int = 0
    counting_cycles: int = 0
    gated_cycles: int = 0
    waking_cycles: int = 0
    gate_events: int = 0
    exposed_wakeup_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.active_cycles
            + self.counting_cycles
            + self.gated_cycles
            + self.waking_cycles
        )


class IdleDetector:
    """Cycle-accurate idle-detection state machine for one block.

    Drive it with :meth:`step`, passing whether the block receives work
    this cycle.  The detector reports whether the work can proceed this
    cycle (``False`` while the block is waking up, which is how wake-up
    delay is exposed to the pipeline).
    """

    def __init__(self, detection_window_cycles: int, wakeup_delay_cycles: int):
        if detection_window_cycles < 1:
            raise ValueError("detection window must be at least one cycle")
        if wakeup_delay_cycles < 0:
            raise ValueError("wake-up delay cannot be negative")
        self.detection_window = detection_window_cycles
        self.wakeup_delay = wakeup_delay_cycles
        self.state = DetectorState.ACTIVE
        self.stats = IdleDetectorStats()
        self._idle_counter = 0
        self._wake_counter = 0

    # ------------------------------------------------------------------ #
    @property
    def is_gated(self) -> bool:
        return self.state is DetectorState.GATED

    def step(self, has_work: bool) -> bool:
        """Advance one cycle; returns True if work can execute this cycle."""
        if self.state is DetectorState.ACTIVE:
            if has_work:
                self.stats.active_cycles += 1
                return True
            self.state = DetectorState.COUNTING
            self._idle_counter = 1
            self.stats.counting_cycles += 1
            return True
        if self.state is DetectorState.COUNTING:
            if has_work:
                self.state = DetectorState.ACTIVE
                self.stats.active_cycles += 1
                return True
            self._idle_counter += 1
            self.stats.counting_cycles += 1
            if self._idle_counter >= self.detection_window:
                self.state = DetectorState.GATED
                self.stats.gate_events += 1
            return True
        if self.state is DetectorState.GATED:
            if not has_work:
                self.stats.gated_cycles += 1
                return True
            if self.wakeup_delay == 0:
                self.state = DetectorState.ACTIVE
                self.stats.active_cycles += 1
                return True
            self.state = DetectorState.WAKING
            self._wake_counter = 1
            self.stats.waking_cycles += 1
            self.stats.exposed_wakeup_cycles += 1
            return False
        # WAKING: the pending operation stalls until the block is ready.
        self.stats.waking_cycles += 1
        self._wake_counter += 1
        if self._wake_counter >= self.wakeup_delay:
            self.state = DetectorState.ACTIVE
            return False
        self.stats.exposed_wakeup_cycles += 1
        return False

    def run(self, activity: list[bool]) -> IdleDetectorStats:
        """Run the detector over an activity trace (True = has work)."""
        pending = list(activity)
        index = 0
        while index < len(pending):
            executed = self.step(pending[index])
            if executed or not pending[index]:
                index += 1
            # else: the same pending work is retried next cycle (stall).
        return self.stats


__all__ = ["DetectorState", "IdleDetector", "IdleDetectorStats"]
