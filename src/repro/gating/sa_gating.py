"""Spatial (PE-granularity) power gating of systolic arrays (§4.1).

A matmul of shape [M,K]x[K,N] underutilizes a W x W weight-stationary
systolic array in three ways (Figure 10):

* ``K < W`` or ``N < W`` — whole rows/columns of PEs hold only padded
  zero weights.  ReGate detects them with non-zero bitmaps and gates the
  rows/columns that do not need to forward data (Figure 12).
* ``M < W`` — every PE holds a useful weight but is only active while
  the (diagonal) input wavefront passes through it; the rest of the time
  the PE is kept in ``W_on`` mode (only the weight register powered).

This module provides both the bit-level row/column gating logic used by
the cycle-level systolic model and the closed-form static-power factor
used by the operator-level simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gating.bet import GatingParameters
from repro.workloads.base import MatmulDims


# ---------------------------------------------------------------------- #
# Bit-level row/column gating logic (Figure 12)
# ---------------------------------------------------------------------- #
def column_nonzero_bitmap(weights: np.ndarray) -> np.ndarray:
    """``col_nz[j]`` — whether column ``j`` holds any non-zero weight."""
    return np.any(weights != 0, axis=0)


def row_nonzero_bitmap(weights: np.ndarray) -> np.ndarray:
    """``row_nz[i]`` — whether row ``i`` holds any non-zero weight."""
    return np.any(weights != 0, axis=1)


def column_on_bitmap(col_nz: np.ndarray) -> np.ndarray:
    """Columns that must stay powered.

    Input data flows left to right, so a column must stay on if it or any
    column to its *right* holds a non-zero weight (suffix OR).
    """
    suffix = np.zeros_like(col_nz, dtype=bool)
    running = False
    for index in range(len(col_nz) - 1, -1, -1):
        running = running or bool(col_nz[index])
        suffix[index] = running
    return suffix

def row_on_bitmap(row_nz: np.ndarray) -> np.ndarray:
    """Rows that must stay powered.

    Partial sums flow top to bottom, so a row must stay on if it or any
    row *above* it holds a non-zero weight (prefix OR).
    """
    prefix = np.zeros_like(row_nz, dtype=bool)
    running = False
    for index in range(len(row_nz)):
        running = running or bool(row_nz[index])
        prefix[index] = running
    return prefix


def active_pe_mask(weights: np.ndarray) -> np.ndarray:
    """Boolean mask of PEs kept out of the OFF state for a weight tile."""
    rows = row_on_bitmap(row_nonzero_bitmap(weights))
    cols = column_on_bitmap(column_nonzero_bitmap(weights))
    return np.outer(rows, cols)


# ---------------------------------------------------------------------- #
# Closed-form spatial utilization (Figure 5 metric)
# ---------------------------------------------------------------------- #
def padding_efficiency(dim: int, width: int) -> float:
    """Fraction of a dimension that carries real (non-padded) data."""
    if dim <= 0:
        return 0.0
    return dim / (math.ceil(dim / width) * width)


def pipeline_fill_efficiency(m: int, width: int) -> float:
    """Fraction of SA-active cycles doing useful work for M input rows.

    Streaming M rows through a W x W weight-stationary array takes about
    ``M + 2W`` cycles per tile (diagonal fill and drain), of which only
    ``M`` produce new output rows.
    """
    if m <= 0:
        return 0.0
    return m / (m + 2.0 * width)


def spatial_utilization(dims: MatmulDims, width: int) -> float:
    """Achieved FLOPs over peak FLOPs during the SA-active time."""
    return (
        padding_efficiency(dims.k, width)
        * padding_efficiency(dims.n, width)
        * pipeline_fill_efficiency(dims.m, width)
    )


# ---------------------------------------------------------------------- #
# Vectorized counterparts (columnar fast path)
# ---------------------------------------------------------------------- #
# The array helpers mirror the scalar functions above operation for
# operation so the columnar policy evaluation produces bit-identical
# doubles; the ``max(..., 1.0)`` only rewrites denominators of entries
# the `dim > 0` mask discards.
def padding_efficiency_array(dim: np.ndarray, width: int) -> np.ndarray:
    """Vectorized :func:`padding_efficiency` over a dimension array."""
    return np.where(
        dim > 0, dim / np.maximum(np.ceil(dim / width) * width, 1.0), 0.0
    )


def pipeline_fill_efficiency_array(m: np.ndarray, width: int) -> np.ndarray:
    """Vectorized :func:`pipeline_fill_efficiency` over an M array."""
    return np.where(m > 0, m / (m + 2.0 * width), 0.0)


@dataclass(frozen=True)
class SpatialPowerShares:
    """How PE-cycles split across power states during SA-active time."""

    active: float  # fully-on, computing
    weight_only: float  # W_on mode: weight register retained, rest gated
    off: float  # rows/columns gated completely

    def __post_init__(self) -> None:
        total = self.active + self.weight_only + self.off
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-6):
            raise ValueError(f"power shares must sum to 1, got {total}")


class SpatialGatingModel:
    """Static-power model of a spatially gated systolic array."""

    def __init__(self, width: int, parameters: GatingParameters):
        self.width = width
        self.parameters = parameters

    def shares(self, dims: MatmulDims | None) -> SpatialPowerShares:
        """Split PE-cycles into active / weight-only / off shares."""
        if dims is None:
            return SpatialPowerShares(active=1.0, weight_only=0.0, off=0.0)
        held = padding_efficiency(dims.k, self.width) * padding_efficiency(
            dims.n, self.width
        )
        active = held * pipeline_fill_efficiency(dims.m, self.width)
        weight_only = max(0.0, held - active)
        off = max(0.0, 1.0 - held)
        total = active + weight_only + off
        return SpatialPowerShares(
            active=active / total, weight_only=weight_only / total, off=off / total
        )

    def static_power_factor(self, dims: MatmulDims | None) -> float:
        """SA leakage during active time relative to a fully-on SA."""
        shares = self.shares(dims)
        off_leak = self.parameters.leakage.logic_off
        weight_share = self.parameters.pe_weight_register_share
        w_on_leak = weight_share + (1.0 - weight_share) * off_leak
        return shares.active + shares.weight_only * w_on_leak + shares.off * off_leak

    # ------------------------------------------------------------------ #
    # Vectorized counterparts (columnar fast path)
    # ------------------------------------------------------------------ #
    def shares_arrays(
        self,
        m: np.ndarray,
        k: np.ndarray,
        n: np.ndarray,
        has_dims: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-operator (active, weight_only, off) share arrays.

        Operators without matmul dimensions get the scalar code's
        ``dims=None`` answer of (1, 0, 0).
        """
        held = padding_efficiency_array(k, self.width) * padding_efficiency_array(
            n, self.width
        )
        active = held * pipeline_fill_efficiency_array(m, self.width)
        weight_only = np.maximum(0.0, held - active)
        off = np.maximum(0.0, 1.0 - held)
        total = active + weight_only + off
        return (
            np.where(has_dims, active / total, 1.0),
            np.where(has_dims, weight_only / total, 0.0),
            np.where(has_dims, off / total, 0.0),
        )

    def static_power_factor_array(
        self,
        m: np.ndarray,
        k: np.ndarray,
        n: np.ndarray,
        has_dims: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`static_power_factor` over operator arrays."""
        active, weight_only, off = self.shares_arrays(m, k, n, has_dims)
        off_leak = self.parameters.leakage.logic_off
        weight_share = self.parameters.pe_weight_register_share
        w_on_leak = weight_share + (1.0 - weight_share) * off_leak
        return active + weight_only * w_on_leak + off * off_leak


__all__ = [
    "SpatialGatingModel",
    "SpatialPowerShares",
    "active_pe_mask",
    "column_nonzero_bitmap",
    "column_on_bitmap",
    "padding_efficiency",
    "padding_efficiency_array",
    "pipeline_fill_efficiency",
    "pipeline_fill_efficiency_array",
    "row_nonzero_bitmap",
    "row_on_bitmap",
    "spatial_utilization",
]
