"""Power-gating policies: NoPG, ReGate-Base, ReGate-HW, ReGate-Full, Ideal.

Each policy takes the activity profile produced by the performance
simulator and accounts the static energy of every component, the dynamic
energy of power-state transitions, and the exposed wake-up delays:

* **NoPG** — every component leaks at full static power all the time.
* **ReGate-Base** — conventional hardware idle detection at component
  granularity: whole SAs, VUs, the HBM and ICI controllers are gated
  after an idle-detection window (1/3 of the break-even time); unused
  SRAM can only be put to sleep.
* **ReGate-HW** — adds ReGate's PE-granularity spatial SA gating and the
  cheap (1-cycle) PE wake-up that the diagonal ``PE_on`` wavefront
  provides.
* **ReGate-Full** — adds software-managed gating: the compiler gates VUs
  on exact idle intervals (no detection window, no missed wake-ups) and
  powers unused SRAM capacity fully off.
* **Ideal** — a roofline with zero leakage when gated, zero transition
  cost and perfect idleness knowledge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gating.bet import (
    DEFAULT_PARAMETERS,
    GatingParameters,
    IdleGatingCoefficients,
    idle_gating_coefficients,
    parameters_token,
)
from repro.gating.report import EnergyReport, PolicyName
from repro.gating.sa_gating import SpatialGatingModel
from repro.gating.sram_gating import SramGatingModel
from repro.hardware.components import Component
from repro.hardware.power import ChipPowerModel
from repro.simulator import columnar
from repro.simulator.columnar import ProfileTable, seq_sum
from repro.simulator.engine import GapProfile, OperatorProfile, WorkloadProfile

# The hardware VU idle detector waits at least 8 cycles to avoid blocking
# the SA pipeline (§4.1 of the paper).
MIN_VU_DETECTION_WINDOW_CYCLES = 8.0


@dataclass
class _IdleAccounting:
    """Static energy and bookkeeping for one component's idle time."""

    energy_j: float = 0.0
    gated_gaps: float = 0.0
    exposed_wake_cycles: float = 0.0


# Object-path accounting hooks and their columnar counterparts.  A
# subclass overriding one side of a pair without the other would make
# the two paths disagree, so `evaluate` only takes the fast path when,
# for every pair, both names are (re)defined by the same class.
_HOOK_PAIRS = (
    ("_idle_energy", "_idle_energy_columnar"),
    ("_sa_active_energy", "_sa_active_energy_columnar"),
    ("_sram_energy", "_sram_energy_columnar"),
    ("_peak_power", "_peak_power_columnar"),
)
_DISPATCH_SAFE: dict[type, bool] = {}


def _first_definer(cls: type, name: str) -> type | None:
    for klass in cls.__mro__:
        if name in vars(klass):
            return klass
    return None


def _columnar_dispatch_safe(cls: type) -> bool:
    cached = _DISPATCH_SAFE.get(cls)
    if cached is None:
        cached = all(
            _first_definer(cls, legacy) is _first_definer(cls, fast)
            for legacy, fast in _HOOK_PAIRS
        )
        _DISPATCH_SAFE[cls] = cached
    return cached


class PowerGatingPolicy:
    """Base class: shared accounting helpers for all policies."""

    name: PolicyName = PolicyName.NOPG
    #: Whether the SA is gated at PE granularity during active time.
    spatial_sa_gating: bool = False
    #: Whether VU / SRAM power gating is driven by the compiler.
    software_managed: bool = False
    #: Whether any power gating happens at all.
    gating_enabled: bool = False

    def __init__(self, parameters: GatingParameters | None = None):
        self.parameters = parameters or DEFAULT_PARAMETERS

    # ------------------------------------------------------------------ #
    # Idle-period accounting
    # ------------------------------------------------------------------ #
    def _timing_variant(self, component: Component) -> str | None:
        if component is Component.SA:
            return "sa_pe" if self.spatial_sa_gating else "sa_full"
        return None

    def _detection_window_s(self, component: Component, chip) -> float:
        window = self.parameters.detection_window_cycles(
            component, self._timing_variant(component)
        )
        if component is Component.VU:
            window = max(window, MIN_VU_DETECTION_WINDOW_CYCLES)
        return chip.cycles_to_seconds(window)

    def _uses_software_gating(self, component: Component) -> bool:
        return self.software_managed and component is Component.VU

    def _idle_coefficients(
        self, component: Component, static_power_w: float, chip
    ) -> IdleGatingCoefficients:
        """Per-gap gating coefficients shared by both accounting paths.

        The detection window is resolved through
        :meth:`_detection_window_s`, so a subclass overriding that hook
        affects the object path and the columnar path alike.
        """
        software = self._uses_software_gating(component)
        return idle_gating_coefficients(
            self.parameters,
            component,
            self._timing_variant(component),
            static_power_w,
            chip,
            software=software,
            window_s=None if software else self._detection_window_s(component, chip),
        )

    def _idle_memo_key(
        self, component: Component, static_power_w: float, chip, token
    ) -> tuple:
        """Memo key covering every input of the base idle accounting.

        The resolved detection window is part of the key so subclasses
        customizing :meth:`_detection_window_s` never share entries with
        the stock policies.
        """
        software = self._uses_software_gating(component)
        return (
            "idle",
            component,
            static_power_w,
            self._timing_variant(component),
            software,
            None if software else self._detection_window_s(component, chip),
            token,
        )

    def _idle_energy(
        self,
        component: Component,
        gaps: list[GapProfile],
        static_power_w: float,
        chip,
    ) -> _IdleAccounting:
        """Static energy of a component's idle time (object path)."""
        accounting = _IdleAccounting()
        if not self.gating_enabled:
            accounting.energy_j = static_power_w * sum(g.total_idle_s for g in gaps)
            return accounting

        coeff = self._idle_coefficients(component, static_power_w, chip)
        for gap in gaps:
            if gap.gap_s <= 0 or gap.num_gaps <= 0:
                continue
            if gap.gap_s <= coeff.threshold_s:
                accounting.energy_j += static_power_w * gap.total_idle_s
                continue
            gated_s = gap.gap_s - coeff.window_s
            per_gap = (
                static_power_w * coeff.window_s
                + static_power_w * coeff.off_leakage * gated_s
                + coeff.transition_j
            )
            accounting.energy_j += per_gap * gap.num_gaps
            accounting.gated_gaps += gap.num_gaps
            if not coeff.software:
                accounting.exposed_wake_cycles += coeff.delay_cycles * gap.num_gaps
        return accounting

    def _idle_energy_columnar(
        self,
        component: Component,
        gap_s: np.ndarray,
        num_gaps: np.ndarray,
        static_power_w: float,
        chip,
        table: ProfileTable | None = None,
    ) -> _IdleAccounting:
        """Vectorized :meth:`_idle_energy` over a profile's gap table.

        The arrays are zero-padded per operator; a zero gap contributes
        an exact ``+0.0`` to every sequential reduction, so the result
        is bit-identical to the object path's filtered gap list.  The
        result is memoized on the table keyed by the full coefficient
        set — policies with identical gating behavior for a component
        (e.g. ReGate-Base/HW/Full on the HBM controller) share one
        computation.
        """
        accounting = _IdleAccounting()
        if not self.gating_enabled:
            accounting.energy_j = static_power_w * self._total_idle_s(
                component, gap_s, num_gaps, table
            )
            return accounting

        memo_key = self._idle_memo_key(
            component, static_power_w, chip, parameters_token(self.parameters)
        )
        if table is not None:
            cached = table.memo.get(memo_key)
            if cached is not None:
                return _IdleAccounting(*cached)

        coeff = self._idle_coefficients(component, static_power_w, chip)
        valid = (gap_s > 0.0) & (num_gaps > 0.0)
        below = gap_s <= coeff.threshold_s
        ungated_j = static_power_w * (gap_s * num_gaps)
        gated_s = gap_s - coeff.window_s
        per_gap = (
            static_power_w * coeff.window_s
            + static_power_w * coeff.off_leakage * gated_s
            + coeff.transition_j
        )
        accounting.energy_j = seq_sum(
            np.where(valid, np.where(below, ungated_j, per_gap * num_gaps), 0.0)
        )
        gated_mask = valid & ~below
        accounting.gated_gaps = seq_sum(np.where(gated_mask, num_gaps, 0.0))
        if not coeff.software:
            accounting.exposed_wake_cycles = seq_sum(
                np.where(gated_mask, coeff.delay_cycles * num_gaps, 0.0)
            )
        if table is not None:
            table.memo[memo_key] = (
                accounting.energy_j,
                accounting.gated_gaps,
                accounting.exposed_wake_cycles,
            )
        return accounting

    @staticmethod
    def _total_idle_s(
        component: Component,
        gap_s: np.ndarray,
        num_gaps: np.ndarray,
        table: ProfileTable | None,
    ) -> float:
        """Memoized ``sum(gap_s * num_gaps)`` of one component."""
        if table is None:
            return seq_sum(gap_s * num_gaps)
        key = ("total_idle", component)
        total = table.memo.get(key)
        if total is None:
            total = seq_sum(gap_s * num_gaps)
            table.memo[key] = total
        return total

    def _ideal_idle_energy(self, gaps: list[GapProfile]) -> _IdleAccounting:
        return _IdleAccounting(energy_j=0.0)

    # ------------------------------------------------------------------ #
    # Active-period accounting
    # ------------------------------------------------------------------ #
    def _sa_active_energy(
        self, profile: WorkloadProfile, static_power_w: float
    ) -> float:
        """SA leakage while the SA is actively computing."""
        if not self.spatial_sa_gating:
            return static_power_w * profile.active_s(Component.SA)
        model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
        energy = 0.0
        for op_profile in profile.profiles:
            active = op_profile.active_s(Component.SA) * op_profile.count
            if active <= 0:
                continue
            factor = model.static_power_factor(op_profile.operator.dims)
            energy += static_power_w * active * factor
        return energy

    def _sa_active_energy_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, static_power_w: float
    ) -> float:
        """Vectorized :meth:`_sa_active_energy` over the profile table."""
        if not self.spatial_sa_gating:
            return static_power_w * table.active_total_s(Component.SA)
        memo_key = (
            "sa_active_energy",
            static_power_w,
            self.parameters.leakage.logic_off,
            self.parameters.pe_weight_register_share,
        )
        cached = table.memo.get(memo_key)
        if cached is not None:
            return cached
        active = table.weighted_active(Component.SA)
        factor = self._spatial_factor_array(profile.chip, table)
        energy = seq_sum(
            np.where(active > 0.0, static_power_w * active * factor, 0.0)
        )
        table.memo[memo_key] = energy
        return energy

    def _spatial_factor_array(self, chip, table: ProfileTable) -> np.ndarray:
        """Memoized per-operator spatial static-power factor array."""
        memo_key = (
            "spatial_factor",
            self.parameters.leakage.logic_off,
            self.parameters.pe_weight_register_share,
        )
        factor = table.memo.get(memo_key)
        if factor is None:
            model = SpatialGatingModel(chip.sa_width, self.parameters)
            factor = model.static_power_factor_array(
                table.dims_m, table.dims_k, table.dims_n, table.has_dims
            )
            table.memo[memo_key] = factor
        return factor

    def _sram_energy(self, profile: WorkloadProfile, static_power_w: float) -> float:
        """SRAM leakage: used capacity stays on, unused is slept/gated."""
        if not self.gating_enabled:
            return static_power_w * profile.total_time_s
        model = SramGatingModel(profile.chip, self.parameters)
        energy = 0.0
        for op_profile in profile.profiles:
            duration = op_profile.latency_s * op_profile.count
            factor = model.leakage_factor_for_demand(
                op_profile.sram_demand_bytes, software_managed=self.software_managed
            )
            energy += static_power_w * duration * factor
        return energy

    def _sram_energy_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, static_power_w: float
    ) -> float:
        """Vectorized :meth:`_sram_energy` over the profile table."""
        if not self.gating_enabled:
            return static_power_w * table.total_time_s()
        leak = (
            self.parameters.leakage.sram_off
            if self.software_managed
            else self.parameters.sleep_leakage()
        )
        memo_key = ("sram_energy", static_power_w, self.software_managed, leak)
        cached = table.memo.get(memo_key)
        if cached is not None:
            return cached
        duration = table.weighted_latency()
        factor = self._sram_factor_array(profile.chip, table)
        energy = seq_sum(static_power_w * duration * factor)
        table.memo[memo_key] = energy
        return energy

    def _sram_factor_array(self, chip, table: ProfileTable) -> np.ndarray:
        """Memoized per-operator SRAM leakage-factor array."""
        leak = (
            self.parameters.leakage.sram_off
            if self.software_managed
            else self.parameters.sleep_leakage()
        )
        memo_key = ("sram_factor", self.software_managed, leak)
        factor = table.memo.get(memo_key)
        if factor is None:
            model = SramGatingModel(chip, self.parameters)
            factor = model.leakage_factor_for_demand_array(
                table.sram_demand_bytes, self.software_managed
            )
            table.memo[memo_key] = factor
        return factor

    # ------------------------------------------------------------------ #
    def evaluate(
        self, profile: WorkloadProfile, power_model: ChipPowerModel | None = None
    ) -> EnergyReport:
        """Compute the full energy report of this policy for one profile.

        The per-gap / per-operator accounting runs on the columnar fast
        path by default (vectorized over the profile's memoized
        :class:`~repro.simulator.columnar.ProfileTable`) and on the
        original object-path loops when the fast path is disabled or a
        subclass overrides only the object-path hooks; both paths
        produce bit-identical reports.
        """
        power_model = power_model or ChipPowerModel.for_chip(profile.chip)
        chip = profile.chip
        table = (
            profile._fast_table() if _columnar_dispatch_safe(type(self)) else None
        )
        fast = table is not None

        token = parameters_token(self.parameters) if fast else None
        # The hoisted memo lookup below replicates the base columnar
        # idle accounting's key; it must not short-circuit a subclass
        # override (e.g. Ideal), which memoizes under its own keys.
        base_idle = (
            type(self)._idle_energy_columnar
            is PowerGatingPolicy._idle_energy_columnar
        )

        def idle_accounting(component: Component) -> _IdleAccounting:
            if fast:
                if base_idle and self.gating_enabled:
                    memo_key = self._idle_memo_key(
                        component, static[component], chip, token
                    )
                    cached = table.memo.get(memo_key)
                    if cached is not None:
                        return _IdleAccounting(*cached)
                gap_s, _, num_total = table.gap_table(component)
                return self._idle_energy_columnar(
                    component, gap_s, num_total, static[component], chip, table
                )
            return self._idle_energy(
                component, profile.gap_profiles(component), static[component], chip
            )

        total_time_s = table.total_time_s() if fast else profile.total_time_s

        def active_s(component: Component) -> float:
            if fast:
                return table.active_total_s(component)
            return profile.active_s(component)

        report = EnergyReport(
            policy=self.name,
            baseline_time_s=total_time_s,
            overhead_time_s=0.0,
        )
        exposed_cycles = 0.0

        for component in Component.all():
            report.dynamic_energy_j[component] = (
                table.dynamic_total_j(component)
                if fast
                else profile.dynamic_energy_j(component)
            )

        static = power_model.static_power_by_component()

        # Never-gated logic leaks for the whole execution.
        report.static_energy_j[Component.OTHER] = (
            static[Component.OTHER] * total_time_s
        )

        # Systolic arrays: active-time leakage (possibly spatially gated)
        # plus idle-time leakage under the temporal gating scheme.
        sa_idle = idle_accounting(Component.SA)
        sa_active_j = (
            self._sa_active_energy_columnar(profile, table, static[Component.SA])
            if fast
            else self._sa_active_energy(profile, static[Component.SA])
        )
        report.static_energy_j[Component.SA] = sa_active_j + sa_idle.energy_j
        report.gating_events[Component.SA] = sa_idle.gated_gaps
        exposed_cycles += sa_idle.exposed_wake_cycles

        # Vector units.
        vu_idle = idle_accounting(Component.VU)
        report.static_energy_j[Component.VU] = (
            static[Component.VU] * active_s(Component.VU) + vu_idle.energy_j
        )
        report.gating_events[Component.VU] = vu_idle.gated_gaps
        exposed_cycles += vu_idle.exposed_wake_cycles

        # HBM and ICI controllers: hardware idle detection in every ReGate
        # variant; their wake-up delay is amortized by the DMA latency, so
        # it does not show up as a performance overhead.
        for component in (Component.HBM, Component.ICI):
            idle = idle_accounting(component)
            report.static_energy_j[component] = (
                static[component] * active_s(component) + idle.energy_j
            )
            report.gating_events[component] = idle.gated_gaps

        # SRAM capacity gating.
        report.static_energy_j[Component.SRAM] = (
            self._sram_energy_columnar(profile, table, static[Component.SRAM])
            if fast
            else self._sram_energy(profile, static[Component.SRAM])
        )
        report.gating_events[Component.SRAM] = float(
            table.n_ops if fast else len(profile.profiles)
        )

        report.overhead_time_s = chip.cycles_to_seconds(exposed_cycles)
        # The exposed wake-up delays keep the whole chip powered a little
        # longer; charge that time at the un-gated static power.
        if report.overhead_time_s > 0:
            total_static_power = sum(static.values())
            extra = total_static_power * report.overhead_time_s
            report.static_energy_j[Component.OTHER] += extra

        report.peak_power_w = (
            self._peak_power_columnar(profile, table, power_model)
            if fast
            else self._peak_power(profile, power_model)
        )
        return report

    # ------------------------------------------------------------------ #
    def _peak_power(
        self, profile: WorkloadProfile, power_model: ChipPowerModel
    ) -> float:
        """Average power of the most power-hungry operator (Figure 18)."""
        sram_model = SramGatingModel(profile.chip, self.parameters)
        spatial_model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
        off_leak = self.parameters.leakage.logic_off
        peak = 0.0
        for op_profile in profile.profiles:
            latency = op_profile.latency_s
            if latency <= 0:
                continue
            dynamic_w = sum(op_profile.dynamic_energy_j.values()) / latency
            static_w = 0.0
            for component in Component.all():
                base = power_model.static_power_w(component)
                active_fraction = min(1.0, op_profile.active_s(component) / latency)
                if not self.gating_enabled:
                    static_w += base
                    continue
                if component is Component.OTHER:
                    static_w += base
                elif component is Component.SRAM:
                    static_w += base * sram_model.leakage_factor_for_demand(
                        op_profile.sram_demand_bytes, self.software_managed
                    )
                elif component is Component.SA and self.spatial_sa_gating:
                    factor = spatial_model.static_power_factor(op_profile.operator.dims)
                    static_w += base * (
                        active_fraction * factor + (1 - active_fraction) * off_leak
                    )
                else:
                    idle_leak = 0.0 if self.name is PolicyName.IDEAL else off_leak
                    static_w += base * (
                        active_fraction + (1 - active_fraction) * idle_leak
                    )
            peak = max(peak, dynamic_w + static_w)
        return peak

    def _peak_power_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, power_model: ChipPowerModel
    ) -> float:
        """Vectorized :meth:`_peak_power` over the profile table."""
        latency = table.latency_s
        mask = latency > 0.0
        if not bool(mask.any()):
            return 0.0
        safe_latency = np.where(mask, latency, 1.0)

        off_leak = self.parameters.leakage.logic_off

        dynamic_w = table.memo.get("peak_dynamic_w")
        if dynamic_w is None:
            dynamic = table.dynamic
            # Mirrors sum(op.dynamic_energy_j.values()) over the
            # insertion order SA, VU, SRAM, HBM, ICI, OTHER.
            dynamic_j = (
                dynamic[Component.SA]
                + dynamic[Component.VU]
                + dynamic[Component.SRAM]
                + dynamic[Component.HBM]
                + dynamic[Component.ICI]
                + dynamic[Component.OTHER]
            )
            dynamic_w = dynamic_j / safe_latency
            table.memo["peak_dynamic_w"] = dynamic_w

        def active_fraction(component: Component) -> np.ndarray:
            key = ("active_fraction", component)
            fraction = table.memo.get(key)
            if fraction is None:
                fraction = np.minimum(1.0, table.active[component] / safe_latency)
                table.memo[key] = fraction
            return fraction

        # Per-component static contributions, cached on the table and
        # shared by every policy whose accounting for that component is
        # identical (e.g. ReGate-Base/HW/Full on the HBM controller).
        token = parameters_token(self.parameters)

        def contribution(component: Component) -> np.ndarray | float:
            base = power_model.static_power_w(component)
            if not self.gating_enabled or component is Component.OTHER:
                return base
            if component is Component.SRAM:
                key = ("peak_sram", base, self.software_managed, token)
                value = table.memo.get(key)
                if value is None:
                    value = base * self._sram_factor_array(profile.chip, table)
                    table.memo[key] = value
                return value
            if component is Component.SA and self.spatial_sa_gating:
                key = ("peak_sa_spatial", base, token)
                value = table.memo.get(key)
                if value is None:
                    factor = self._spatial_factor_array(profile.chip, table)
                    fraction = active_fraction(component)
                    value = base * (
                        fraction * factor + (1 - fraction) * off_leak
                    )
                    table.memo[key] = value
                return value
            idle_leak = 0.0 if self.name is PolicyName.IDEAL else off_leak
            key = ("peak_temporal", component, base, idle_leak, token)
            value = table.memo.get(key)
            if value is None:
                fraction = active_fraction(component)
                value = base * (fraction + (1 - fraction) * idle_leak)
                table.memo[key] = value
            return value

        static_w = np.zeros_like(latency)
        for component in Component.all():
            static_w = static_w + contribution(component)
        return float(np.max(np.where(mask, dynamic_w + static_w, 0.0), initial=0.0))


class NoPGPolicy(PowerGatingPolicy):
    """No power gating: the baseline the paper normalizes against."""

    name = PolicyName.NOPG
    gating_enabled = False


class ReGateBasePolicy(PowerGatingPolicy):
    """Component-granularity hardware idle detection (ReGate-Base)."""

    name = PolicyName.REGATE_BASE
    gating_enabled = True
    spatial_sa_gating = False
    software_managed = False


class ReGateHWPolicy(PowerGatingPolicy):
    """ReGate-Base plus PE-granularity spatial SA gating (ReGate-HW)."""

    name = PolicyName.REGATE_HW
    gating_enabled = True
    spatial_sa_gating = True
    software_managed = False


class ReGateFullPolicy(PowerGatingPolicy):
    """Full ReGate: hardware gating plus software-managed VU/SRAM gating."""

    name = PolicyName.REGATE_FULL
    gating_enabled = True
    spatial_sa_gating = True
    software_managed = True


class IdealPolicy(PowerGatingPolicy):
    """Roofline: zero leakage when idle, zero transition cost and delay."""

    name = PolicyName.IDEAL
    gating_enabled = True
    spatial_sa_gating = True
    software_managed = True

    def _idle_energy(self, component, gaps, static_power_w, chip) -> _IdleAccounting:
        return _IdleAccounting(energy_j=0.0, gated_gaps=sum(g.num_gaps for g in gaps))

    def _idle_energy_columnar(
        self, component, gap_s, num_gaps, static_power_w, chip, table=None
    ) -> _IdleAccounting:
        if table is None:
            return _IdleAccounting(energy_j=0.0, gated_gaps=seq_sum(num_gaps))
        key = ("ideal_gated_gaps", component)
        gated = table.memo.get(key)
        if gated is None:
            gated = seq_sum(num_gaps)
            table.memo[key] = gated
        return _IdleAccounting(energy_j=0.0, gated_gaps=gated)

    def _sa_active_energy(self, profile: WorkloadProfile, static_power_w: float) -> float:
        model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
        energy = 0.0
        for op_profile in profile.profiles:
            active = op_profile.active_s(Component.SA) * op_profile.count
            if active <= 0:
                continue
            shares = model.shares(op_profile.operator.dims)
            energy += static_power_w * active * shares.active
        return energy

    def _sa_active_energy_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, static_power_w: float
    ) -> float:
        memo_key = ("ideal_sa_active_energy", static_power_w)
        cached = table.memo.get(memo_key)
        if cached is not None:
            return cached
        active = table.weighted_active(Component.SA)
        active_share = table.memo.get("spatial_active_share")
        if active_share is None:
            model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
            active_share, _, _ = model.shares_arrays(
                table.dims_m, table.dims_k, table.dims_n, table.has_dims
            )
            table.memo["spatial_active_share"] = active_share
        energy = seq_sum(
            np.where(active > 0.0, static_power_w * active * active_share, 0.0)
        )
        table.memo[memo_key] = energy
        return energy

    def _sram_energy(self, profile: WorkloadProfile, static_power_w: float) -> float:
        capacity = profile.chip.sram_bytes
        energy = 0.0
        for op_profile in profile.profiles:
            duration = op_profile.latency_s * op_profile.count
            used = min(1.0, op_profile.sram_demand_bytes / capacity)
            energy += static_power_w * duration * used
        return energy

    def _sram_energy_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, static_power_w: float
    ) -> float:
        memo_key = ("ideal_sram_energy", static_power_w)
        cached = table.memo.get(memo_key)
        if cached is not None:
            return cached
        capacity = profile.chip.sram_bytes
        duration = table.weighted_latency()
        used = np.minimum(1.0, table.sram_demand_bytes / capacity)
        energy = seq_sum(static_power_w * duration * used)
        table.memo[memo_key] = energy
        return energy


_POLICIES: dict[PolicyName, type[PowerGatingPolicy]] = {
    PolicyName.NOPG: NoPGPolicy,
    PolicyName.REGATE_BASE: ReGateBasePolicy,
    PolicyName.REGATE_HW: ReGateHWPolicy,
    PolicyName.REGATE_FULL: ReGateFullPolicy,
    PolicyName.IDEAL: IdealPolicy,
}


def list_policies() -> list[PolicyName]:
    """All policy names in the paper's presentation order."""
    return list(_POLICIES)


def get_policy(
    name: PolicyName | str, parameters: GatingParameters | None = None
) -> PowerGatingPolicy:
    """Instantiate a policy by name."""
    return _POLICIES[PolicyName.parse(name)](parameters)


__all__ = [
    "IdealPolicy",
    "NoPGPolicy",
    "PolicyName",
    "PowerGatingPolicy",
    "ReGateBasePolicy",
    "ReGateFullPolicy",
    "ReGateHWPolicy",
    "get_policy",
    "list_policies",
]
