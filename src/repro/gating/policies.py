"""Power-gating policies: NoPG, ReGate-Base, ReGate-HW, ReGate-Full, Ideal.

Each policy takes the activity profile produced by the performance
simulator and accounts the static energy of every component, the dynamic
energy of power-state transitions, and the exposed wake-up delays:

* **NoPG** — every component leaks at full static power all the time.
* **ReGate-Base** — conventional hardware idle detection at component
  granularity: whole SAs, VUs, the HBM and ICI controllers are gated
  after an idle-detection window (1/3 of the break-even time); unused
  SRAM can only be put to sleep.
* **ReGate-HW** — adds ReGate's PE-granularity spatial SA gating and the
  cheap (1-cycle) PE wake-up that the diagonal ``PE_on`` wavefront
  provides.
* **ReGate-Full** — adds software-managed gating: the compiler gates VUs
  on exact idle intervals (no detection window, no missed wake-ups) and
  powers unused SRAM capacity fully off.
* **Ideal** — a roofline with zero leakage when gated, zero transition
  cost and perfect idleness knowledge.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass

import numpy as np

from repro.gating.bet import (
    DEFAULT_PARAMETERS,
    GatingParameters,
    IdleCoefficientColumns,
    IdleGatingCoefficients,
    ParameterTable,
    grid_idle_coefficient_columns,
    idle_gating_coefficients,
    parameters_token,
)
from repro.gating.report import EnergyReport, PolicyName
from repro.gating.sa_gating import SpatialGatingModel
from repro.gating.sram_gating import SramGatingModel
from repro.hardware.components import Component
from repro.hardware.power import ChipPowerModel
from repro.simulator import columnar
from repro.simulator.columnar import ProfileTable, seq_sum
from repro.simulator.engine import GapProfile, OperatorProfile, WorkloadProfile

# The hardware VU idle detector waits at least 8 cycles to avoid blocking
# the SA pipeline (§4.1 of the paper).
MIN_VU_DETECTION_WINDOW_CYCLES = 8.0


@dataclass
class _IdleAccounting:
    """Static energy and bookkeeping for one component's idle time."""

    energy_j: float = 0.0
    gated_gaps: float = 0.0
    exposed_wake_cycles: float = 0.0


def _idle_gap_values(
    coeff: "IdleGatingCoefficients | IdleCoefficientColumns",
    static_power_w: float,
    gap_s: np.ndarray,
    num_gaps: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-gap ``(energy_j, gated-mask)`` arrays of the idle accounting.

    The single definition of the gated-gap energy expressions, shared by
    the per-profile columnar path, the packed multi-profile path and the
    grid path so they can never drift apart; only the reduction differs
    between them.  ``coeff`` is either one scalar
    :class:`IdleGatingCoefficients` or, on the grid path, an
    :class:`~repro.gating.bet.IdleCoefficientColumns` whose
    ``(n_points, 1)`` columns broadcast against the per-operator axis —
    elementwise, every point sees exactly the scalar expressions.
    """
    valid = (gap_s > 0.0) & (num_gaps > 0.0)
    below = gap_s <= coeff.threshold_s
    ungated_j = static_power_w * (gap_s * num_gaps)
    gated_s = gap_s - coeff.window_s
    per_gap = (
        static_power_w * coeff.window_s
        + static_power_w * coeff.off_leakage * gated_s
        + coeff.transition_j
    )
    energy_values = np.where(
        valid, np.where(below, ungated_j, per_gap * num_gaps), 0.0
    )
    return energy_values, valid & ~below


def _safe_latency(store) -> np.ndarray:
    """Memoized division-safe latency array of a table/pack ``store``."""
    safe = store.memo.get("safe_latency")
    if safe is None:
        safe = np.where(store.latency_s > 0.0, store.latency_s, 1.0)
        store.memo["safe_latency"] = safe
    return safe


def _peak_dynamic_w(store) -> np.ndarray:
    """Memoized per-operator dynamic power array (peak-power accounting)."""
    dynamic_w = store.memo.get("peak_dynamic_w")
    if dynamic_w is None:
        dynamic = store.dynamic
        # Mirrors sum(op.dynamic_energy_j.values()) over the
        # insertion order SA, VU, SRAM, HBM, ICI, OTHER.
        dynamic_j = (
            dynamic[Component.SA]
            + dynamic[Component.VU]
            + dynamic[Component.SRAM]
            + dynamic[Component.HBM]
            + dynamic[Component.ICI]
            + dynamic[Component.OTHER]
        )
        dynamic_w = dynamic_j / _safe_latency(store)
        store.memo["peak_dynamic_w"] = dynamic_w
    return dynamic_w


def _peak_active_fraction(store, component: Component) -> np.ndarray:
    """Memoized per-operator active-time fraction of one component."""
    key = ("active_fraction", component)
    fraction = store.memo.get(key)
    if fraction is None:
        fraction = np.minimum(1.0, store.active[component] / _safe_latency(store))
        store.memo[key] = fraction
    return fraction


# Object-path accounting hooks and their columnar counterparts.  A
# subclass overriding one side of a pair without the other would make
# the two paths disagree, so `evaluate` only takes the fast path when,
# for every pair, both names are (re)defined by the same class.
_HOOK_PAIRS = (
    ("_idle_energy", "_idle_energy_columnar"),
    ("_sa_active_energy", "_sa_active_energy_columnar"),
    ("_sram_energy", "_sram_energy_columnar"),
    ("_peak_power", "_peak_power_columnar"),
)
_DISPATCH_SAFE: dict[type, bool] = {}

# The packed (multi-profile batch) accounting additionally mirrors each
# hook as a ``*_packed`` variant; `batch_evaluate` only takes the packed
# path when every member of each hook family is defined by the same
# class AND `evaluate` itself is not customized (a subclass overriding
# `evaluate` expects one call per profile).
_HOOK_FAMILIES = (
    ("_idle_energy", "_idle_energy_columnar", "_idle_energy_packed"),
    ("_sa_active_energy", "_sa_active_energy_columnar", "_sa_active_energy_packed"),
    ("_sram_energy", "_sram_energy_columnar", "_sram_energy_packed"),
    ("_peak_power", "_peak_power_columnar", "_peak_power_packed"),
)
_PACKED_DISPATCH_SAFE: dict[type, bool] = {}

# The grid (profiles × gating-parameter points) accounting mirrors each
# family once more as a ``*_grid`` variant; `grid_evaluate` additionally
# requires a stock ``__init__`` because the kernel derives per-point
# coefficients through fresh ``type(self)(parameters)`` instances (the
# same construction the per-point oracle uses).
_GRID_HOOK_FAMILIES = tuple(
    family + (family[0] + "_grid",) for family in _HOOK_FAMILIES
)
_GRID_DISPATCH_SAFE: dict[type, bool] = {}


def _first_definer(cls: type, name: str) -> type | None:
    for klass in cls.__mro__:
        if name in vars(klass):
            return klass
    return None


def _columnar_dispatch_safe(cls: type) -> bool:
    cached = _DISPATCH_SAFE.get(cls)
    if cached is None:
        cached = all(
            _first_definer(cls, legacy) is _first_definer(cls, fast)
            for legacy, fast in _HOOK_PAIRS
        )
        _DISPATCH_SAFE[cls] = cached
    return cached


def _packed_dispatch_safe(cls: type) -> bool:
    cached = _PACKED_DISPATCH_SAFE.get(cls)
    if cached is None:
        cached = _first_definer(cls, "evaluate") is PowerGatingPolicy and all(
            len({_first_definer(cls, name) for name in family}) == 1
            for family in _HOOK_FAMILIES
        )
        _PACKED_DISPATCH_SAFE[cls] = cached
    return cached


def _grid_dispatch_safe(cls: type) -> bool:
    cached = _GRID_DISPATCH_SAFE.get(cls)
    if cached is None:
        cached = (
            _first_definer(cls, "evaluate") is PowerGatingPolicy
            and _first_definer(cls, "__init__") is PowerGatingPolicy
            and all(
                len({_first_definer(cls, name) for name in family}) == 1
                for family in _GRID_HOOK_FAMILIES
            )
        )
        _GRID_DISPATCH_SAFE[cls] = cached
    return cached


# The idle-coefficient hooks the vectorized column builder replaces.
# A subclass redefining any of them gets the per-point derivation so
# its custom windows/coefficients keep affecting every accounting path.
_COEFFICIENT_HOOKS = (
    "_idle_coefficients",
    "_detection_window_s",
    "_uses_software_gating",
    "_timing_variant",
)
_COEFFICIENT_COLUMNS_SAFE: dict[type, bool] = {}


def _coefficient_columns_safe(cls: type) -> bool:
    cached = _COEFFICIENT_COLUMNS_SAFE.get(cls)
    if cached is None:
        cached = all(
            _first_definer(cls, name) is PowerGatingPolicy
            for name in _COEFFICIENT_HOOKS
        )
        _COEFFICIENT_COLUMNS_SAFE[cls] = cached
    return cached


class PackedProfiles:
    """A ragged batch of profile tables packed into offset-indexed arrays.

    The serving-style batch API: ``n`` profiles of one chip are
    concatenated into single per-operator arrays so a policy can
    evaluate all of them with single NumPy calls
    (:meth:`PowerGatingPolicy.batch_evaluate`).  Derived arrays that do
    not depend on the policy (gap tables, active fractions, leakage
    factor arrays) are memoized on the pack and shared by every policy
    evaluated on it — pack once, evaluate many.

    Per-profile reductions slice the packed arrays at the segment
    offsets and reduce each segment with :func:`seq_sum`, keeping the
    strictly sequential accumulation the bit-exactness contract
    requires (``np.add.reduceat`` rounds differently).
    """

    def __init__(self, profiles: list[WorkloadProfile], tables: list[ProfileTable]):
        chips = {id(profile.chip) for profile in profiles}
        if len(chips) != 1:
            raise ValueError("PackedProfiles requires profiles of a single chip")
        self.profiles = profiles
        self.tables = tables
        self.chip = profiles[0].chip
        lengths = [table.n_ops for table in tables]
        bounds = np.zeros(len(tables) + 1, dtype=np.int64)
        np.cumsum(lengths, out=bounds[1:])
        self.starts = bounds[:-1]
        self.ends = bounds[1:]
        self.n_profiles = len(tables)
        self.n_ops = np.asarray(lengths, dtype=np.float64)
        self.count = np.concatenate([t.count for t in tables])
        self.latency_s = np.concatenate([t.latency_s for t in tables])
        self.sa_mapped = np.concatenate([t.sa_mapped for t in tables])
        self.active = {
            c: np.concatenate([t.active[c] for t in tables]) for c in Component.all()
        }
        self.dynamic = {
            c: np.concatenate([t.dynamic[c] for t in tables]) for c in Component.all()
        }
        self.sram_demand_bytes = np.concatenate(
            [t.sram_demand_bytes for t in tables]
        )
        self.num_weight_tiles = np.concatenate([t.num_weight_tiles for t in tables])
        self.num_output_tiles = np.concatenate([t.num_output_tiles for t in tables])
        self.num_dma_bursts = np.concatenate([t.num_dma_bursts for t in tables])
        self.dims_m = np.concatenate([t.dims_m for t in tables])
        self.dims_k = np.concatenate([t.dims_k for t in tables])
        self.dims_n = np.concatenate([t.dims_n for t in tables])
        self.has_dims = np.concatenate([t.has_dims for t in tables])
        #: Cross-policy scratchpad (packed analogue of ``ProfileTable.memo``).
        self.memo: dict = {}

    @classmethod
    def pack(cls, profiles: list[WorkloadProfile]) -> "PackedProfiles | None":
        """Pack profiles for batch evaluation, or ``None`` off the fast path.

        Returns ``None`` when the columnar fast path is disabled or any
        profile cannot produce a table (duck-typed stand-ins) — callers
        fall back to per-profile evaluation.
        """
        if not columnar.fast_path_enabled():
            return None
        tables = [profile._fast_table() for profile in profiles]
        if any(table is None for table in tables):
            return None
        return cls(list(profiles), tables)

    # ------------------------------------------------------------------ #
    def seg_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-profile strictly-sequential sums of a packed array."""
        out = np.empty(self.n_profiles, dtype=np.float64)
        starts = self.starts.tolist()
        ends = self.ends.tolist()
        for index in range(self.n_profiles):
            out[index] = seq_sum(values[starts[index]:ends[index]])
        return out

    def seg_sums_multi(self, rows: tuple[np.ndarray, ...]) -> np.ndarray:
        """Per-profile sequential sums of several packed arrays at once.

        Stacks the rows into one matrix and accumulates each segment
        with a single ``cumsum(axis=1)`` — row-wise sequential, so every
        row reduces bit-identically to :func:`seq_sum`, with one NumPy
        call per profile instead of one per (row, profile).
        """
        return self.seg_sums_matrix(np.vstack(rows))

    def seg_sums_matrix(self, stacked: np.ndarray) -> np.ndarray:
        """Per-profile sequential sums of every row of a ``(R, n_ops)`` matrix.

        The workhorse behind :meth:`seg_sums_multi`; the grid kernel
        feeds it ``(n_points * quantities, n_ops)`` matrices so a whole
        policy × gating-parameter grid reduces with one NumPy call per
        profile (the parameter axis rides along as extra rows).
        """
        out = np.empty((stacked.shape[0], self.n_profiles), dtype=np.float64)
        starts = self.starts.tolist()
        ends = self.ends.tolist()
        for index in range(self.n_profiles):
            start, end = starts[index], ends[index]
            if end > start:
                out[:, index] = stacked[:, start:end].cumsum(axis=1)[:, -1]
            else:
                out[:, index] = 0.0
        return out

    def seg_max_matrix(self, values: np.ndarray) -> np.ndarray:
        """Per-profile row-wise max of a ``(R, n_ops)`` matrix (0 floor)."""
        out = np.empty((values.shape[0], self.n_profiles), dtype=np.float64)
        starts = self.starts.tolist()
        ends = self.ends.tolist()
        for index in range(self.n_profiles):
            out[:, index] = np.max(
                values[:, starts[index]:ends[index]], axis=1, initial=0.0
            )
        return out

    def base_totals(self) -> None:
        """Fill the policy-independent reduction memos in one fused pass.

        Busy time, per-component active seconds and dynamic energies of
        every profile reduce together (11 rows, one pass); all five
        policies evaluated on the pack read the same memo entries.
        """
        if "total_time_s" in self.memo:
            return
        components = Component.all()
        active_components = (Component.SA, Component.VU, Component.HBM, Component.ICI)
        rows = (
            (self.weighted_latency(),)
            + tuple(self.weighted_active(c) for c in active_components)
            + tuple(self.dynamic[c] * self.count for c in components)
        )
        totals = self.seg_sums_multi(rows)
        self.memo["total_time_s"] = totals[0]
        for offset, component in enumerate(active_components):
            self.memo[("active_total", component)] = totals[1 + offset]
        for offset, component in enumerate(components):
            self.memo[("dynamic_total", component)] = totals[5 + offset]
        # Share the reductions with the per-table aggregate caches: the
        # sweep's row assembly reads the same totals per profile, and
        # the fused pass produced bit-identical doubles.
        for index, table in enumerate(self.tables):
            if table._total_time_s is None:
                table._total_time_s = float(totals[0][index])
            for offset, component in enumerate(active_components):
                table._active_totals.setdefault(
                    component, float(totals[1 + offset][index])
                )
            for offset, component in enumerate(components):
                table._dynamic_totals.setdefault(
                    component, float(totals[5 + offset][index])
                )

    def seg_max(self, values: np.ndarray) -> np.ndarray:
        """Per-profile max (order-insensitive) with an implicit 0 floor."""
        out = np.empty(self.n_profiles, dtype=np.float64)
        starts = self.starts.tolist()
        ends = self.ends.tolist()
        for index in range(self.n_profiles):
            out[index] = np.max(
                values[starts[index]:ends[index]], initial=0.0
            )
        return out

    # -- packed analogues of the per-table derived arrays ---------------- #
    def weighted_latency(self) -> np.ndarray:
        cached = self.memo.get("weighted_latency")
        if cached is None:
            cached = self.latency_s * self.count
            self.memo["weighted_latency"] = cached
        return cached

    def weighted_active(self, component: Component) -> np.ndarray:
        key = ("weighted_active", component)
        cached = self.memo.get(key)
        if cached is None:
            cached = self.active[component] * self.count
            self.memo[key] = cached
        return cached

    def total_time_s(self) -> np.ndarray:
        """Per-profile busy time (packed ``ProfileTable.total_time_s``)."""
        cached = self.memo.get("total_time_s")
        if cached is None:
            cached = self.seg_sums(self.weighted_latency())
            self.memo["total_time_s"] = cached
        return cached

    def active_total_s(self, component: Component) -> np.ndarray:
        key = ("active_total", component)
        cached = self.memo.get(key)
        if cached is None:
            cached = self.seg_sums(self.weighted_active(component))
            self.memo[key] = cached
        return cached

    def dynamic_total_j(self, component: Component) -> np.ndarray:
        key = ("dynamic_total", component)
        cached = self.memo.get(key)
        if cached is None:
            cached = self.seg_sums(self.dynamic[component] * self.count)
            self.memo[key] = cached
        return cached

    def gap_table(self, component: Component) -> tuple[np.ndarray, np.ndarray]:
        """Packed ``(gap_s, num_gaps_total)`` of one component.

        Elementwise-identical to concatenating each table's
        :meth:`~repro.simulator.columnar.ProfileTable.gap_table` (the
        burst model lives in one shared helper,
        :func:`repro.simulator.columnar.gap_arrays`), and computed once
        per pack for all policies.
        """
        key = ("gap_table", component)
        cached = self.memo.get(key)
        if cached is not None:
            return cached
        family = columnar.gap_arrays(
            component,
            latency=self.latency_s,
            active=self.active[component],
            sa_mapped=self.sa_mapped,
            num_weight_tiles=self.num_weight_tiles,
            num_output_tiles=self.num_output_tiles,
            num_dma_bursts=self.num_dma_bursts,
        )
        if family is None:
            zeros = np.zeros_like(self.latency_s)
            table = (zeros, zeros)
        else:
            gap_s, num_per_invocation = family
            table = (gap_s, num_per_invocation * self.count)
        self.memo[key] = table
        return table


class ChipMajorPacks:
    """A chip-heterogeneous profile batch packed chip-major.

    :class:`PackedProfiles` segments are single-chip (every per-gap
    coefficient is a per-chip scalar); a multi-chip sweep therefore
    packs its profiles *chip-major*: one contiguous
    :class:`PackedProfiles` per distinct chip, in first-appearance
    order, plus the index map back to the caller's profile order.  The
    whole batch is packed once per sweep and shared by every policy and
    every gating-parameter point evaluated on it.
    """

    def __init__(
        self,
        profiles: list[WorkloadProfile],
        packs: list[PackedProfiles],
        index_map: list[tuple[int, int]],
    ):
        self.profiles = profiles
        self.packs = packs
        #: Original profile index -> (pack index, position within pack).
        self.index_map = index_map
        self.n_profiles = len(profiles)
        #: Per pack, the original indices of its profiles (pack order).
        self.pack_indices: list[list[int]] = [[] for _ in packs]
        for original, (pack_index, position) in enumerate(index_map):
            columns = self.pack_indices[pack_index]
            assert position == len(columns)
            columns.append(original)

    @property
    def chips(self) -> list:
        """Distinct chips, in first-appearance (chip-major) order."""
        return [pack.chip for pack in self.packs]

    @staticmethod
    def partition_chip_major(chip_keys) -> list[list[int]]:
        """Group positions by chip key, in first-appearance (chip-major) order.

        The single definition of the chip-major partitioning rule: both
        :meth:`pack` (grouping live profiles by chip identity) and the
        shard planner (:class:`~repro.experiments.sharding.ShardPlan`,
        grouping sweep points by chip *name* so the partition is stable
        across processes) chunk work along these groups, which is what
        keeps every :class:`PackedProfiles` pack — and every shard —
        as close to single-chip as the input allows.
        """
        groups: dict = {}
        for index, key in enumerate(chip_keys):
            groups.setdefault(key, []).append(index)
        return list(groups.values())

    @classmethod
    def pack(cls, profiles: list[WorkloadProfile]) -> "ChipMajorPacks | None":
        """Pack a (possibly multi-chip) batch, or ``None`` off the fast path."""
        profiles = list(profiles)
        if not columnar.fast_path_enabled() or not profiles:
            return None
        groups = cls.partition_chip_major(
            [id(profile.chip) for profile in profiles]
        )
        packs: list[PackedProfiles] = []
        index_map: list[tuple[int, int] | None] = [None] * len(profiles)
        for pack_index, indices in enumerate(groups):
            packed = PackedProfiles.pack([profiles[i] for i in indices])
            if packed is None:
                return None
            packs.append(packed)
            for position, original in enumerate(indices):
                index_map[original] = (pack_index, position)
        return cls(profiles, packs, index_map)


#: Static-energy insertion order of one report (mirrors ``evaluate``).
#: Shared single definition: the runner's vectorized
#: ``sum(static_energy_j.values())`` replication imports this order —
#: reordering it here reorders the bit-exact accumulation everywhere.
STATIC_ENERGY_ORDER = (
    Component.OTHER,
    Component.SA,
    Component.VU,
    Component.HBM,
    Component.ICI,
    Component.SRAM,
)
#: Gating-event insertion order of one report (mirrors ``evaluate``).
GATING_EVENT_ORDER = (
    Component.SA,
    Component.VU,
    Component.HBM,
    Component.ICI,
    Component.SRAM,
)


class GridEnergyReports:
    """Array-native energy reports of one policy over a points × profiles grid.

    The output of :meth:`PowerGatingPolicy.grid_evaluate`: every report
    quantity is one ``(n_points, n_profiles)`` ``float64`` array (the
    gating-parameter axis first), so a sweep can assemble its result
    columns without materializing per-report dictionaries.
    :meth:`report` lazily materializes a single
    :class:`~repro.gating.report.EnergyReport` — bit-identical to what
    per-point :meth:`~PowerGatingPolicy.batch_evaluate` returns — for
    consumers of the object API (e.g. the report cache).
    """

    def __init__(
        self,
        policy: PolicyName,
        *,
        baseline_time_s: np.ndarray,
        overhead_time_s: np.ndarray,
        static_energy_j: dict[Component, np.ndarray],
        dynamic_energy_j: dict[Component, np.ndarray],
        gating_events: dict[Component, np.ndarray],
        peak_power_w: np.ndarray,
    ):
        self.policy = policy
        self.baseline_time_s = baseline_time_s
        self.overhead_time_s = overhead_time_s
        self.static_energy_j = static_energy_j
        self.dynamic_energy_j = dynamic_energy_j
        self.gating_events = gating_events
        self.peak_power_w = peak_power_w
        self.n_points, self.n_profiles = overhead_time_s.shape
        # Oracle-built reports (fallback path) returned verbatim.
        self._reports: list[list[EnergyReport]] | None = None

    # ------------------------------------------------------------------ #
    def report(self, point: int, profile: int) -> EnergyReport:
        """Materialize the report of one (parameter point, profile) cell."""
        if self._reports is not None:
            return self._reports[point][profile]
        report = EnergyReport(
            policy=self.policy,
            baseline_time_s=float(self.baseline_time_s[point, profile]),
            overhead_time_s=float(self.overhead_time_s[point, profile]),
        )
        for component in Component.all():
            report.dynamic_energy_j[component] = float(
                self.dynamic_energy_j[component][point, profile]
            )
        for component in STATIC_ENERGY_ORDER:
            report.static_energy_j[component] = float(
                self.static_energy_j[component][point, profile]
            )
        for component in GATING_EVENT_ORDER:
            report.gating_events[component] = float(
                self.gating_events[component][point, profile]
            )
        report.peak_power_w = float(self.peak_power_w[point, profile])
        return report

    def reports(self, point: int) -> list[EnergyReport]:
        """All profile reports of one parameter point (oracle order)."""
        if self._reports is not None:
            return list(self._reports[point])
        return [self.report(point, profile) for profile in range(self.n_profiles)]

    #: Array attributes gathered lazily on the oracle-backed fallback.
    _ARRAY_FIELDS = frozenset(
        {
            "baseline_time_s",
            "overhead_time_s",
            "static_energy_j",
            "dynamic_energy_j",
            "gating_events",
            "peak_power_w",
        }
    )

    @classmethod
    def from_reports(
        cls, policy: PolicyName, reports_per_point: list[list[EnergyReport]]
    ) -> "GridEnergyReports":
        """Wrap oracle-built per-point report lists in the grid API.

        :meth:`report` hands back the original objects; the column
        arrays are gathered from their scalars — lazily, on first
        attribute access, since the fallback path's consumers usually
        only want the reports — so array-native consumers see the same
        values either way.
        """
        grid = cls.__new__(cls)
        grid.policy = policy
        grid._reports = [list(row) for row in reports_per_point]
        grid.n_points = len(grid._reports)
        grid.n_profiles = len(grid._reports[0]) if grid._reports else 0
        return grid

    def __getattr__(self, name: str):
        # Only fires for attributes never set: the lazily-gathered array
        # fields of a from_reports-built instance.
        if name in GridEnergyReports._ARRAY_FIELDS:
            reports = self.__dict__.get("_reports")
            if reports is not None:
                value = self._gather_field(name)
                self.__dict__[name] = value
                return value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _gather_field(self, name: str):
        def gather(read) -> np.ndarray:
            return np.asarray(
                [[read(report) for report in row] for row in self._reports],
                dtype=np.float64,
            )

        if name in ("baseline_time_s", "overhead_time_s", "peak_power_w"):
            return gather(lambda report: getattr(report, name))
        return {
            c: gather(lambda report, c=c: getattr(report, name).get(c, 0.0))
            for c in Component.all()
        }


class PowerGatingPolicy:
    """Base class: shared accounting helpers for all policies."""

    name: PolicyName = PolicyName.NOPG
    #: Whether the SA is gated at PE granularity during active time.
    spatial_sa_gating: bool = False
    #: Whether VU / SRAM power gating is driven by the compiler.
    software_managed: bool = False
    #: Whether any power gating happens at all.
    gating_enabled: bool = False

    def __init__(self, parameters: GatingParameters | None = None):
        self.parameters = parameters or DEFAULT_PARAMETERS

    # ------------------------------------------------------------------ #
    # Idle-period accounting
    # ------------------------------------------------------------------ #
    def _timing_variant(self, component: Component) -> str | None:
        if component is Component.SA:
            return "sa_pe" if self.spatial_sa_gating else "sa_full"
        return None

    def _detection_window_s(self, component: Component, chip) -> float:
        window = self.parameters.detection_window_cycles(
            component, self._timing_variant(component)
        )
        if component is Component.VU:
            window = max(window, MIN_VU_DETECTION_WINDOW_CYCLES)
        return chip.cycles_to_seconds(window)

    def _uses_software_gating(self, component: Component) -> bool:
        return self.software_managed and component is Component.VU

    def _idle_coefficients(
        self, component: Component, static_power_w: float, chip
    ) -> IdleGatingCoefficients:
        """Per-gap gating coefficients shared by both accounting paths.

        The detection window is resolved through
        :meth:`_detection_window_s`, so a subclass overriding that hook
        affects the object path and the columnar path alike.
        """
        software = self._uses_software_gating(component)
        return idle_gating_coefficients(
            self.parameters,
            component,
            self._timing_variant(component),
            static_power_w,
            chip,
            software=software,
            window_s=None if software else self._detection_window_s(component, chip),
        )

    def _idle_memo_key(
        self, component: Component, static_power_w: float, chip, token
    ) -> tuple:
        """Memo key covering every input of the base idle accounting.

        The resolved detection window is part of the key so subclasses
        customizing :meth:`_detection_window_s` never share entries with
        the stock policies.
        """
        software = self._uses_software_gating(component)
        return (
            "idle",
            component,
            static_power_w,
            self._timing_variant(component),
            software,
            None if software else self._detection_window_s(component, chip),
            token,
        )

    def _idle_energy(
        self,
        component: Component,
        gaps: list[GapProfile],
        static_power_w: float,
        chip,
    ) -> _IdleAccounting:
        """Static energy of a component's idle time (object path)."""
        accounting = _IdleAccounting()
        if not self.gating_enabled:
            accounting.energy_j = static_power_w * sum(g.total_idle_s for g in gaps)
            return accounting

        coeff = self._idle_coefficients(component, static_power_w, chip)
        for gap in gaps:
            if gap.gap_s <= 0 or gap.num_gaps <= 0:
                continue
            if gap.gap_s <= coeff.threshold_s:
                accounting.energy_j += static_power_w * gap.total_idle_s
                continue
            gated_s = gap.gap_s - coeff.window_s
            per_gap = (
                static_power_w * coeff.window_s
                + static_power_w * coeff.off_leakage * gated_s
                + coeff.transition_j
            )
            accounting.energy_j += per_gap * gap.num_gaps
            accounting.gated_gaps += gap.num_gaps
            if not coeff.software:
                accounting.exposed_wake_cycles += coeff.delay_cycles * gap.num_gaps
        return accounting

    def _idle_energy_columnar(
        self,
        component: Component,
        gap_s: np.ndarray,
        num_gaps: np.ndarray,
        static_power_w: float,
        chip,
        table: ProfileTable | None = None,
    ) -> _IdleAccounting:
        """Vectorized :meth:`_idle_energy` over a profile's gap table.

        The arrays are zero-padded per operator; a zero gap contributes
        an exact ``+0.0`` to every sequential reduction, so the result
        is bit-identical to the object path's filtered gap list.  The
        result is memoized on the table keyed by the full coefficient
        set — policies with identical gating behavior for a component
        (e.g. ReGate-Base/HW/Full on the HBM controller) share one
        computation.
        """
        accounting = _IdleAccounting()
        if not self.gating_enabled:
            accounting.energy_j = static_power_w * self._total_idle_s(
                component, gap_s, num_gaps, table
            )
            return accounting

        memo_key = self._idle_memo_key(
            component, static_power_w, chip, parameters_token(self.parameters)
        )
        if table is not None:
            cached = table.memo.get(memo_key)
            if cached is not None:
                return _IdleAccounting(*cached)

        coeff = self._idle_coefficients(component, static_power_w, chip)
        energy_values, gated_mask = _idle_gap_values(
            coeff, static_power_w, gap_s, num_gaps
        )
        accounting.energy_j = seq_sum(energy_values)
        accounting.gated_gaps = seq_sum(np.where(gated_mask, num_gaps, 0.0))
        if not coeff.software:
            accounting.exposed_wake_cycles = seq_sum(
                np.where(gated_mask, coeff.delay_cycles * num_gaps, 0.0)
            )
        if table is not None:
            table.memo[memo_key] = (
                accounting.energy_j,
                accounting.gated_gaps,
                accounting.exposed_wake_cycles,
            )
        return accounting

    @staticmethod
    def _total_idle_s(
        component: Component,
        gap_s: np.ndarray,
        num_gaps: np.ndarray,
        table: ProfileTable | None,
    ) -> float:
        """Memoized ``sum(gap_s * num_gaps)`` of one component."""
        if table is None:
            return seq_sum(gap_s * num_gaps)
        key = ("total_idle", component)
        total = table.memo.get(key)
        if total is None:
            total = seq_sum(gap_s * num_gaps)
            table.memo[key] = total
        return total

    def _ideal_idle_energy(self, gaps: list[GapProfile]) -> _IdleAccounting:
        return _IdleAccounting(energy_j=0.0)

    # ------------------------------------------------------------------ #
    # Active-period accounting
    # ------------------------------------------------------------------ #
    def _sa_active_energy(
        self, profile: WorkloadProfile, static_power_w: float
    ) -> float:
        """SA leakage while the SA is actively computing."""
        if not self.spatial_sa_gating:
            return static_power_w * profile.active_s(Component.SA)
        model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
        energy = 0.0
        for op_profile in profile.profiles:
            active = op_profile.active_s(Component.SA) * op_profile.count
            if active <= 0:
                continue
            factor = model.static_power_factor(op_profile.operator.dims)
            energy += static_power_w * active * factor
        return energy

    def _sa_active_energy_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, static_power_w: float
    ) -> float:
        """Vectorized :meth:`_sa_active_energy` over the profile table."""
        if not self.spatial_sa_gating:
            return static_power_w * table.active_total_s(Component.SA)
        memo_key = (
            "sa_active_energy",
            static_power_w,
            self.parameters.leakage.logic_off,
            self.parameters.pe_weight_register_share,
        )
        cached = table.memo.get(memo_key)
        if cached is not None:
            return cached
        active = table.weighted_active(Component.SA)
        factor = self._spatial_factor_array(profile.chip, table)
        energy = seq_sum(
            np.where(active > 0.0, static_power_w * active * factor, 0.0)
        )
        table.memo[memo_key] = energy
        return energy

    def _spatial_factor_array(self, chip, table: ProfileTable) -> np.ndarray:
        """Memoized per-operator spatial static-power factor array."""
        memo_key = (
            "spatial_factor",
            self.parameters.leakage.logic_off,
            self.parameters.pe_weight_register_share,
        )
        factor = table.memo.get(memo_key)
        if factor is None:
            model = SpatialGatingModel(chip.sa_width, self.parameters)
            factor = model.static_power_factor_array(
                table.dims_m, table.dims_k, table.dims_n, table.has_dims
            )
            table.memo[memo_key] = factor
        return factor

    def _sram_energy(self, profile: WorkloadProfile, static_power_w: float) -> float:
        """SRAM leakage: used capacity stays on, unused is slept/gated."""
        if not self.gating_enabled:
            return static_power_w * profile.total_time_s
        model = SramGatingModel(profile.chip, self.parameters)
        energy = 0.0
        for op_profile in profile.profiles:
            duration = op_profile.latency_s * op_profile.count
            factor = model.leakage_factor_for_demand(
                op_profile.sram_demand_bytes, software_managed=self.software_managed
            )
            energy += static_power_w * duration * factor
        return energy

    def _sram_energy_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, static_power_w: float
    ) -> float:
        """Vectorized :meth:`_sram_energy` over the profile table."""
        if not self.gating_enabled:
            return static_power_w * table.total_time_s()
        leak = (
            self.parameters.leakage.sram_off
            if self.software_managed
            else self.parameters.sleep_leakage()
        )
        memo_key = ("sram_energy", static_power_w, self.software_managed, leak)
        cached = table.memo.get(memo_key)
        if cached is not None:
            return cached
        duration = table.weighted_latency()
        factor = self._sram_factor_array(profile.chip, table)
        energy = seq_sum(static_power_w * duration * factor)
        table.memo[memo_key] = energy
        return energy

    def _sram_factor_array(self, chip, table: ProfileTable) -> np.ndarray:
        """Memoized per-operator SRAM leakage-factor array."""
        leak = (
            self.parameters.leakage.sram_off
            if self.software_managed
            else self.parameters.sleep_leakage()
        )
        memo_key = ("sram_factor", self.software_managed, leak)
        factor = table.memo.get(memo_key)
        if factor is None:
            model = SramGatingModel(chip, self.parameters)
            factor = model.leakage_factor_for_demand_array(
                table.sram_demand_bytes, self.software_managed
            )
            table.memo[memo_key] = factor
        return factor

    # ------------------------------------------------------------------ #
    def evaluate(
        self, profile: WorkloadProfile, power_model: ChipPowerModel | None = None
    ) -> EnergyReport:
        """Compute the full energy report of this policy for one profile.

        The per-gap / per-operator accounting runs on the columnar fast
        path by default (vectorized over the profile's memoized
        :class:`~repro.simulator.columnar.ProfileTable`) and on the
        original object-path loops when the fast path is disabled or a
        subclass overrides only the object-path hooks; both paths
        produce bit-identical reports.
        """
        power_model = power_model or ChipPowerModel.for_chip(profile.chip)
        chip = profile.chip
        table = (
            profile._fast_table() if _columnar_dispatch_safe(type(self)) else None
        )
        fast = table is not None

        token = parameters_token(self.parameters) if fast else None
        # The hoisted memo lookup below replicates the base columnar
        # idle accounting's key; it must not short-circuit a subclass
        # override (e.g. Ideal), which memoizes under its own keys.
        base_idle = (
            type(self)._idle_energy_columnar
            is PowerGatingPolicy._idle_energy_columnar
        )

        def idle_accounting(component: Component) -> _IdleAccounting:
            if fast:
                if base_idle and self.gating_enabled:
                    memo_key = self._idle_memo_key(
                        component, static[component], chip, token
                    )
                    cached = table.memo.get(memo_key)
                    if cached is not None:
                        return _IdleAccounting(*cached)
                gap_s, _, num_total = table.gap_table(component)
                return self._idle_energy_columnar(
                    component, gap_s, num_total, static[component], chip, table
                )
            return self._idle_energy(
                component, profile.gap_profiles(component), static[component], chip
            )

        total_time_s = table.total_time_s() if fast else profile.total_time_s

        def active_s(component: Component) -> float:
            if fast:
                return table.active_total_s(component)
            return profile.active_s(component)

        report = EnergyReport(
            policy=self.name,
            baseline_time_s=total_time_s,
            overhead_time_s=0.0,
        )
        exposed_cycles = 0.0

        for component in Component.all():
            report.dynamic_energy_j[component] = (
                table.dynamic_total_j(component)
                if fast
                else profile.dynamic_energy_j(component)
            )

        static = power_model.static_power_by_component()

        # Never-gated logic leaks for the whole execution.
        report.static_energy_j[Component.OTHER] = (
            static[Component.OTHER] * total_time_s
        )

        # Systolic arrays: active-time leakage (possibly spatially gated)
        # plus idle-time leakage under the temporal gating scheme.
        sa_idle = idle_accounting(Component.SA)
        sa_active_j = (
            self._sa_active_energy_columnar(profile, table, static[Component.SA])
            if fast
            else self._sa_active_energy(profile, static[Component.SA])
        )
        report.static_energy_j[Component.SA] = sa_active_j + sa_idle.energy_j
        report.gating_events[Component.SA] = sa_idle.gated_gaps
        exposed_cycles += sa_idle.exposed_wake_cycles

        # Vector units.
        vu_idle = idle_accounting(Component.VU)
        report.static_energy_j[Component.VU] = (
            static[Component.VU] * active_s(Component.VU) + vu_idle.energy_j
        )
        report.gating_events[Component.VU] = vu_idle.gated_gaps
        exposed_cycles += vu_idle.exposed_wake_cycles

        # HBM and ICI controllers: hardware idle detection in every ReGate
        # variant; their wake-up delay is amortized by the DMA latency, so
        # it does not show up as a performance overhead.
        for component in (Component.HBM, Component.ICI):
            idle = idle_accounting(component)
            report.static_energy_j[component] = (
                static[component] * active_s(component) + idle.energy_j
            )
            report.gating_events[component] = idle.gated_gaps

        # SRAM capacity gating.
        report.static_energy_j[Component.SRAM] = (
            self._sram_energy_columnar(profile, table, static[Component.SRAM])
            if fast
            else self._sram_energy(profile, static[Component.SRAM])
        )
        report.gating_events[Component.SRAM] = float(
            table.n_ops if fast else len(profile.profiles)
        )

        report.overhead_time_s = chip.cycles_to_seconds(exposed_cycles)
        # The exposed wake-up delays keep the whole chip powered a little
        # longer; charge that time at the un-gated static power.
        if report.overhead_time_s > 0:
            total_static_power = sum(static.values())
            extra = total_static_power * report.overhead_time_s
            report.static_energy_j[Component.OTHER] += extra

        report.peak_power_w = (
            self._peak_power_columnar(profile, table, power_model)
            if fast
            else self._peak_power(profile, power_model)
        )
        return report

    # ------------------------------------------------------------------ #
    def _peak_power(
        self, profile: WorkloadProfile, power_model: ChipPowerModel
    ) -> float:
        """Average power of the most power-hungry operator (Figure 18)."""
        sram_model = SramGatingModel(profile.chip, self.parameters)
        spatial_model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
        off_leak = self.parameters.leakage.logic_off
        peak = 0.0
        for op_profile in profile.profiles:
            latency = op_profile.latency_s
            if latency <= 0:
                continue
            dynamic_w = sum(op_profile.dynamic_energy_j.values()) / latency
            static_w = 0.0
            for component in Component.all():
                base = power_model.static_power_w(component)
                active_fraction = min(1.0, op_profile.active_s(component) / latency)
                if not self.gating_enabled:
                    static_w += base
                    continue
                if component is Component.OTHER:
                    static_w += base
                elif component is Component.SRAM:
                    static_w += base * sram_model.leakage_factor_for_demand(
                        op_profile.sram_demand_bytes, self.software_managed
                    )
                elif component is Component.SA and self.spatial_sa_gating:
                    factor = spatial_model.static_power_factor(op_profile.operator.dims)
                    static_w += base * (
                        active_fraction * factor + (1 - active_fraction) * off_leak
                    )
                else:
                    idle_leak = 0.0 if self.name is PolicyName.IDEAL else off_leak
                    static_w += base * (
                        active_fraction + (1 - active_fraction) * idle_leak
                    )
            peak = max(peak, dynamic_w + static_w)
        return peak

    def _peak_power_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, power_model: ChipPowerModel
    ) -> float:
        """Vectorized :meth:`_peak_power` over the profile table."""
        if not bool((table.latency_s > 0.0).any()):
            return 0.0
        values = self._peak_power_values(table, profile.chip, power_model)
        return float(np.max(values, initial=0.0))

    def _peak_power_values(
        self, store, chip, power_model: ChipPowerModel
    ) -> np.ndarray:
        """Masked per-operator total power array (zero where latency is 0).

        The single definition of the peak-power accounting, shared by
        the per-profile columnar path and the packed multi-profile path
        (``store`` is a :class:`ProfileTable` or :class:`PackedProfiles`
        — both expose the same array attributes and a ``memo``); only
        the reduction differs between them.  Intermediates are cached on
        the store and shared by every policy whose accounting for a
        component is identical (e.g. ReGate-Base/HW/Full on the HBM
        controller).
        """
        latency = store.latency_s
        mask = latency > 0.0
        off_leak = self.parameters.leakage.logic_off
        dynamic_w = _peak_dynamic_w(store)

        def active_fraction(component: Component) -> np.ndarray:
            return _peak_active_fraction(store, component)

        token = parameters_token(self.parameters)

        def contribution(component: Component) -> np.ndarray | float:
            base = power_model.static_power_w(component)
            if not self.gating_enabled or component is Component.OTHER:
                return base
            if component is Component.SRAM:
                key = ("peak_sram", base, self.software_managed, token)
                value = store.memo.get(key)
                if value is None:
                    value = base * self._sram_factor_array(chip, store)
                    store.memo[key] = value
                return value
            if component is Component.SA and self.spatial_sa_gating:
                key = ("peak_sa_spatial", base, token)
                value = store.memo.get(key)
                if value is None:
                    factor = self._spatial_factor_array(chip, store)
                    fraction = active_fraction(component)
                    value = base * (
                        fraction * factor + (1 - fraction) * off_leak
                    )
                    store.memo[key] = value
                return value
            idle_leak = 0.0 if self.name is PolicyName.IDEAL else off_leak
            key = ("peak_temporal", component, base, idle_leak, token)
            value = store.memo.get(key)
            if value is None:
                fraction = active_fraction(component)
                value = base * (fraction + (1 - fraction) * idle_leak)
                store.memo[key] = value
            return value

        static_w = np.zeros_like(latency)
        for component in Component.all():
            static_w = static_w + contribution(component)
        return np.where(mask, dynamic_w + static_w, 0.0)

    # ------------------------------------------------------------------ #
    # Batched multi-profile evaluation (serving-style deployments)
    # ------------------------------------------------------------------ #
    def batch_evaluate(
        self,
        profiles: "list[WorkloadProfile] | PackedProfiles | ChipMajorPacks",
        power_model: ChipPowerModel | None = None,
    ) -> list[EnergyReport]:
        """Evaluate this policy across a batch of profiles at once.

        Bit-identical to ``[self.evaluate(p, power_model) for p in
        profiles]``, but the per-gap / per-operator accounting runs in
        single NumPy calls over the packed (offset-indexed) arrays of
        the whole batch — the API a serving-style deployment uses to
        price one gating design across a fleet of workload profiles.

        Accepts a pre-built :class:`PackedProfiles` so several policies
        can share one packing.  Falls back to the per-profile loop when
        the fast path is off, profiles span multiple chips (packs are
        single-chip; plain lists are grouped internally), or a subclass
        customizes the accounting hooks or ``evaluate`` itself.
        """
        if isinstance(profiles, PackedProfiles):
            if not _packed_dispatch_safe(type(self)):
                return [
                    self.evaluate(profile, power_model)
                    for profile in profiles.profiles
                ]
            model = power_model or ChipPowerModel.for_chip(profiles.chip)
            return self._evaluate_packed(profiles, model)
        if isinstance(profiles, ChipMajorPacks):
            if not _packed_dispatch_safe(type(self)):
                return [
                    self.evaluate(profile, power_model)
                    for profile in profiles.profiles
                ]
            reports: list[EnergyReport | None] = [None] * profiles.n_profiles
            for pack, columns in zip(profiles.packs, profiles.pack_indices):
                model = power_model or ChipPowerModel.for_chip(pack.chip)
                for index, report in zip(columns, self._evaluate_packed(pack, model)):
                    reports[index] = report
            return reports
        profiles = list(profiles)
        if not _packed_dispatch_safe(type(self)) or not columnar.fast_path_enabled():
            return [self.evaluate(profile, power_model) for profile in profiles]
        reports: list[EnergyReport | None] = [None] * len(profiles)
        groups: dict[int, list[int]] = {}
        for index, profile in enumerate(profiles):
            groups.setdefault(id(profile.chip), []).append(index)
        for indices in groups.values():
            packed = PackedProfiles.pack([profiles[i] for i in indices])
            if packed is None or len(indices) == 1:
                for i in indices:
                    reports[i] = self.evaluate(profiles[i], power_model)
                continue
            model = power_model or ChipPowerModel.for_chip(packed.chip)
            for i, report in zip(indices, self._evaluate_packed(packed, model)):
                reports[i] = report
        return reports

    def _evaluate_packed(
        self, pack: PackedProfiles, power_model: ChipPowerModel
    ) -> list[EnergyReport]:
        """Packed counterpart of :meth:`evaluate` (same scalar assembly)."""
        chip = pack.chip
        static = power_model.static_power_by_component()
        pack.base_totals()
        total_time = pack.total_time_s().tolist()
        dynamic_totals = {
            component: pack.dynamic_total_j(component).tolist()
            for component in Component.all()
        }
        active_totals = {
            component: pack.active_total_s(component).tolist()
            for component in (Component.VU, Component.HBM, Component.ICI)
        }

        sa_idle = self._idle_energy_packed(Component.SA, pack, static[Component.SA], chip)
        vu_idle = self._idle_energy_packed(Component.VU, pack, static[Component.VU], chip)
        hbm_idle = self._idle_energy_packed(
            Component.HBM, pack, static[Component.HBM], chip
        )
        ici_idle = self._idle_energy_packed(
            Component.ICI, pack, static[Component.ICI], chip
        )
        sa_active_j = self._sa_active_energy_packed(
            pack, static[Component.SA]
        ).tolist()
        sram_j = self._sram_energy_packed(pack, static[Component.SRAM]).tolist()
        peak_w = self._peak_power_packed(pack, power_model).tolist()
        n_ops = pack.n_ops.tolist()
        total_static_power = sum(static.values())

        idle_lists = {
            component: tuple(array.tolist() for array in accounting)
            for component, accounting in (
                (Component.SA, sa_idle),
                (Component.VU, vu_idle),
                (Component.HBM, hbm_idle),
                (Component.ICI, ici_idle),
            )
        }
        reports: list[EnergyReport] = []
        for b in range(pack.n_profiles):
            report = EnergyReport(
                policy=self.name,
                baseline_time_s=total_time[b],
                overhead_time_s=0.0,
            )
            exposed_cycles = 0.0
            for component in Component.all():
                report.dynamic_energy_j[component] = dynamic_totals[component][b]
            report.static_energy_j[Component.OTHER] = (
                static[Component.OTHER] * total_time[b]
            )
            sa_energy, sa_gated, sa_exposed = idle_lists[Component.SA]
            report.static_energy_j[Component.SA] = sa_active_j[b] + sa_energy[b]
            report.gating_events[Component.SA] = sa_gated[b]
            exposed_cycles += sa_exposed[b]

            vu_energy, vu_gated, vu_exposed = idle_lists[Component.VU]
            report.static_energy_j[Component.VU] = (
                static[Component.VU] * active_totals[Component.VU][b] + vu_energy[b]
            )
            report.gating_events[Component.VU] = vu_gated[b]
            exposed_cycles += vu_exposed[b]

            for component in (Component.HBM, Component.ICI):
                energy, gated, _ = idle_lists[component]
                report.static_energy_j[component] = (
                    static[component] * active_totals[component][b] + energy[b]
                )
                report.gating_events[component] = gated[b]

            report.static_energy_j[Component.SRAM] = sram_j[b]
            report.gating_events[Component.SRAM] = float(n_ops[b])

            report.overhead_time_s = chip.cycles_to_seconds(exposed_cycles)
            if report.overhead_time_s > 0:
                extra = total_static_power * report.overhead_time_s
                report.static_energy_j[Component.OTHER] += extra
            report.peak_power_w = peak_w[b]
            reports.append(report)
        return reports

    def _idle_energy_packed(
        self,
        component: Component,
        pack: PackedProfiles,
        static_power_w: float,
        chip,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Packed :meth:`_idle_energy_columnar`: per-profile arrays of
        ``(energy_j, gated_gaps, exposed_wake_cycles)``."""
        gap_s, num_gaps = pack.gap_table(component)
        zeros = np.zeros(pack.n_profiles, dtype=np.float64)
        if not self.gating_enabled:
            energy = static_power_w * pack.seg_sums(gap_s * num_gaps)
            return energy, zeros, zeros
        coeff = self._idle_coefficients(component, static_power_w, chip)
        energy_values, gated_mask = _idle_gap_values(
            coeff, static_power_w, gap_s, num_gaps
        )
        gated_values = np.where(gated_mask, num_gaps, 0.0)
        if coeff.software:
            energy, gated = pack.seg_sums_multi((energy_values, gated_values))
            return energy, gated, zeros
        energy, gated, exposed = pack.seg_sums_multi(
            (
                energy_values,
                gated_values,
                np.where(gated_mask, coeff.delay_cycles * num_gaps, 0.0),
            )
        )
        return energy, gated, exposed

    def _sa_active_energy_packed(
        self, pack: PackedProfiles, static_power_w: float
    ) -> np.ndarray:
        """Packed :meth:`_sa_active_energy_columnar` (per-profile array)."""
        if not self.spatial_sa_gating:
            return static_power_w * pack.active_total_s(Component.SA)
        active = pack.weighted_active(Component.SA)
        factor = self._spatial_factor_array(pack.chip, pack)
        return pack.seg_sums(
            np.where(active > 0.0, static_power_w * active * factor, 0.0)
        )

    def _sram_energy_packed(
        self, pack: PackedProfiles, static_power_w: float
    ) -> np.ndarray:
        """Packed :meth:`_sram_energy_columnar` (per-profile array)."""
        if not self.gating_enabled:
            return static_power_w * pack.total_time_s()
        duration = pack.weighted_latency()
        factor = self._sram_factor_array(pack.chip, pack)
        return pack.seg_sums(static_power_w * duration * factor)

    def _peak_power_packed(
        self, pack: PackedProfiles, power_model: ChipPowerModel
    ) -> np.ndarray:
        """Packed :meth:`_peak_power_columnar` (per-profile array)."""
        values = self._peak_power_values(pack, pack.chip, power_model)
        return pack.seg_max(values)

    # ------------------------------------------------------------------ #
    # Grid-batched evaluation (profiles × gating-parameter points)
    # ------------------------------------------------------------------ #
    def grid_evaluate(
        self,
        profiles: "list[WorkloadProfile] | PackedProfiles | ChipMajorPacks",
        parameter_grid: "ParameterTable | list[GatingParameters]",
        power_model: ChipPowerModel | None = None,
    ) -> GridEnergyReports:
        """Evaluate this policy over all profiles × all parameter points.

        The sensitivity-sweep kernel: one call prices a whole (profile
        batch × gating-parameter grid) in a handful of vectorized NumPy
        operations, with the parameter axis riding along as extra rows
        of the packed segment reductions.  Bit-identical to the
        per-point oracle ::

            [type(self)(parameters).batch_evaluate(profiles, power_model)
             for parameters in parameter_grid]

        ``self.parameters`` never influences the result — every point's
        coefficients come from the grid.  Accepts a pre-built
        :class:`PackedProfiles` (single chip), a :class:`ChipMajorPacks`
        (chip-heterogeneous batch) or a plain profile list, so one
        packing can be shared by every policy of a sweep.  Falls back to
        looping ``batch_evaluate`` per point when the fast path is off
        or a subclass customizes the accounting hooks, ``evaluate`` or
        ``__init__`` (the per-point policies are then shallow copies of
        ``self`` with ``parameters`` swapped, so a custom constructor
        signature can never mis-bind a grid point's parameters).
        """
        ptable = ParameterTable.of(parameter_grid)
        cls = type(self)
        packs: list[PackedProfiles] | None = None
        pack_columns: list[list[int]] | None = None
        if isinstance(profiles, PackedProfiles):
            if _grid_dispatch_safe(cls):
                packs = [profiles]
                pack_columns = [list(range(profiles.n_profiles))]
        elif isinstance(profiles, ChipMajorPacks):
            if _grid_dispatch_safe(cls):
                packs = profiles.packs
                pack_columns = profiles.pack_indices
        else:
            profiles = list(profiles)
            if _grid_dispatch_safe(cls):
                multi = ChipMajorPacks.pack(profiles)
                if multi is not None:
                    packs = multi.packs
                    pack_columns = multi.pack_indices
        if packs is None:
            per_point = [
                self._policy_for_point(parameters).batch_evaluate(
                    profiles, power_model
                )
                for parameters in ptable.parameters
            ]
            return GridEnergyReports.from_reports(self.name, per_point)

        parts = [
            self._evaluate_grid_pack(
                pack,
                ptable,
                power_model or ChipPowerModel.for_chip(pack.chip),
            )
            for pack in packs
        ]
        if len(parts) == 1:
            return parts[0]
        return self._merge_grid_parts(parts, pack_columns, ptable)

    def _policy_for_point(self, parameters: GatingParameters) -> "PowerGatingPolicy":
        """This policy re-parameterized for one grid point.

        Stock constructors get a fresh ``type(self)(parameters)`` — the
        documented oracle.  A subclass with a customized ``__init__``
        (unknown signature; its first positional may not be
        ``parameters``) gets a shallow copy of ``self`` with only
        ``parameters`` swapped, so subclass state carries over and a
        grid point's parameters can never bind to the wrong argument.
        """
        if _first_definer(type(self), "__init__") is PowerGatingPolicy:
            return type(self)(parameters)
        clone = copy.copy(self)
        clone.parameters = parameters
        return clone

    def _merge_grid_parts(
        self,
        parts: list[GridEnergyReports],
        pack_columns: list[list[int]],
        ptable: ParameterTable,
    ) -> GridEnergyReports:
        """Reassemble per-chip grid reports into the caller's profile order."""
        n_profiles = sum(len(columns) for columns in pack_columns)
        shape = (ptable.n_points, n_profiles)

        def merge(read) -> np.ndarray:
            out = np.empty(shape, dtype=np.float64)
            for part, columns in zip(parts, pack_columns):
                out[:, columns] = read(part)
            return out

        return GridEnergyReports(
            self.name,
            baseline_time_s=merge(lambda part: part.baseline_time_s),
            overhead_time_s=merge(lambda part: part.overhead_time_s),
            static_energy_j={
                c: merge(lambda part, c=c: part.static_energy_j[c])
                for c in STATIC_ENERGY_ORDER
            },
            dynamic_energy_j={
                c: merge(lambda part, c=c: part.dynamic_energy_j[c])
                for c in Component.all()
            },
            gating_events={
                c: merge(lambda part, c=c: part.gating_events[c])
                for c in GATING_EVENT_ORDER
            },
            peak_power_w=merge(lambda part: part.peak_power_w),
        )

    def _evaluate_grid_pack(
        self, pack: PackedProfiles, ptable: ParameterTable, power_model: ChipPowerModel
    ) -> GridEnergyReports:
        """Grid counterpart of :meth:`_evaluate_packed` (array assembly).

        Every scalar assembly step of the packed path reappears here as
        one elementwise operation over ``(n_points, n_profiles)`` arrays
        — same operations, same order, bit-identical doubles.
        """
        chip = pack.chip
        static = power_model.static_power_by_component()
        shape = (ptable.n_points, pack.n_profiles)
        pack.base_totals()
        total_time = pack.total_time_s()

        sa_idle = self._idle_energy_grid(
            Component.SA, pack, ptable, static[Component.SA], chip
        )
        vu_idle = self._idle_energy_grid(
            Component.VU, pack, ptable, static[Component.VU], chip
        )
        hbm_idle = self._idle_energy_grid(
            Component.HBM, pack, ptable, static[Component.HBM], chip
        )
        ici_idle = self._idle_energy_grid(
            Component.ICI, pack, ptable, static[Component.ICI], chip
        )
        sa_active_j = self._sa_active_energy_grid(pack, ptable, static[Component.SA])
        sram_j = self._sram_energy_grid(pack, ptable, static[Component.SRAM])
        peak_w = self._peak_power_grid(pack, ptable, power_model)

        # exposed_cycles = 0.0 + SA + VU, as in the scalar assembly.
        exposed_cycles = sa_idle[2] + vu_idle[2]
        overhead_time_s = chip.cycles_to_seconds(exposed_cycles)
        overhead_time_s = np.broadcast_to(overhead_time_s, shape)

        other_j = static[Component.OTHER] * total_time
        total_static_power = sum(static.values())
        extra_j = total_static_power * overhead_time_s
        static_energy = {
            Component.OTHER: np.where(
                overhead_time_s > 0.0,
                other_j + extra_j,
                np.broadcast_to(other_j, shape),
            ),
            Component.SA: sa_active_j + sa_idle[0],
            Component.VU: (
                static[Component.VU] * pack.active_total_s(Component.VU)
                + vu_idle[0]
            ),
            Component.HBM: (
                static[Component.HBM] * pack.active_total_s(Component.HBM)
                + hbm_idle[0]
            ),
            Component.ICI: (
                static[Component.ICI] * pack.active_total_s(Component.ICI)
                + ici_idle[0]
            ),
            Component.SRAM: np.broadcast_to(sram_j, shape),
        }
        gating_events = {
            Component.SA: np.broadcast_to(sa_idle[1], shape),
            Component.VU: np.broadcast_to(vu_idle[1], shape),
            Component.HBM: np.broadcast_to(hbm_idle[1], shape),
            Component.ICI: np.broadcast_to(ici_idle[1], shape),
            Component.SRAM: np.broadcast_to(pack.n_ops, shape),
        }
        return GridEnergyReports(
            self.name,
            baseline_time_s=np.broadcast_to(total_time, shape),
            overhead_time_s=overhead_time_s,
            static_energy_j={
                c: np.broadcast_to(static_energy[c], shape) for c in STATIC_ENERGY_ORDER
            },
            dynamic_energy_j={
                c: np.broadcast_to(pack.dynamic_total_j(c), shape)
                for c in Component.all()
            },
            gating_events=gating_events,
            peak_power_w=np.broadcast_to(peak_w, shape),
        )

    def _idle_coefficient_columns(
        self,
        component: Component,
        ptable: ParameterTable,
        static_power_w: float,
        chip,
    ) -> IdleCoefficientColumns:
        """Per-point idle coefficients as aligned ``(n_points, 1)`` columns.

        Policies with stock coefficient hooks get the vectorized
        derivation (:func:`grid_idle_coefficient_columns`), which is
        elementwise-identical to the scalar function; a subclass that
        redefines any coefficient hook falls back to deriving each
        point's scalars through a fresh per-point policy instance —
        exactly the objects the per-point oracle consumes.  Either way
        the columns are memoized on the parameter table per (policy
        class, component, static power, chip).  The chip spec itself
        (frozen, hashable) is part of the key — an ``id()`` key could
        alias a recycled address to stale chip-frequency-dependent
        coefficients.
        """
        key = ("idle_coeffs", type(self), component, static_power_w, chip)
        cached = ptable.memo.get(key)
        if cached is None:
            cls = type(self)
            if _coefficient_columns_safe(cls):
                cached = grid_idle_coefficient_columns(
                    ptable,
                    component,
                    self._timing_variant(component),
                    static_power_w,
                    chip,
                    software=self._uses_software_gating(component),
                    min_window_cycles=(
                        MIN_VU_DETECTION_WINDOW_CYCLES
                        if component is Component.VU
                        else 0.0
                    ),
                )
            else:
                cached = IdleCoefficientColumns.from_coefficients(
                    [
                        cls(parameters)._idle_coefficients(
                            component, static_power_w, chip
                        )
                        for parameters in ptable.parameters
                    ]
                )
            ptable.memo[key] = cached
        return cached

    def _idle_energy_grid(
        self,
        component: Component,
        pack: PackedProfiles,
        ptable: ParameterTable,
        static_power_w: float,
        chip,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Grid :meth:`_idle_energy_packed`: ``(n_points, n_profiles)``
        arrays of ``(energy_j, gated_gaps, exposed_wake_cycles)``."""
        gap_s, num_gaps = pack.gap_table(component)
        n_points = ptable.n_points
        shape = (n_points, pack.n_profiles)
        zeros = np.zeros(shape)
        if not self.gating_enabled:
            energy = static_power_w * pack.seg_sums(gap_s * num_gaps)
            return np.broadcast_to(energy, shape), zeros, zeros
        coeffs = self._idle_coefficient_columns(
            component, ptable, static_power_w, chip
        )
        # The shared per-gap expressions, with the coefficient columns
        # broadcasting along the parameter axis.
        energy_values, gated_mask = _idle_gap_values(
            coeffs, static_power_w, gap_s, num_gaps
        )
        gated_values = np.where(gated_mask, num_gaps, 0.0)
        if coeffs.software:
            sums = pack.seg_sums_matrix(np.vstack((energy_values, gated_values)))
            return sums[:n_points], sums[n_points:], zeros
        exposed_values = np.where(gated_mask, coeffs.delay_cycles * num_gaps, 0.0)
        sums = pack.seg_sums_matrix(
            np.vstack((energy_values, gated_values, exposed_values))
        )
        return (
            sums[:n_points],
            sums[n_points : 2 * n_points],
            sums[2 * n_points :],
        )

    def _spatial_factor_grid(
        self, pack: PackedProfiles, ptable: ParameterTable
    ) -> np.ndarray:
        """Grid :meth:`_spatial_factor_array`: ``(n_points, n_ops)``.

        The PE-share split is parameter-independent (it only depends on
        the matmul shapes and the SA width), so it is computed once per
        pack; each point then applies its own leakage scalars — the same
        left-to-right expression as the scalar factor.
        """
        key = ("spatial_factor_grid", ptable.tokens)
        cached = pack.memo.get(key)
        if cached is None:
            shares = pack.memo.get("spatial_shares")
            if shares is None:
                model = SpatialGatingModel(pack.chip.sa_width, self.parameters)
                shares = model.shares_arrays(
                    pack.dims_m, pack.dims_k, pack.dims_n, pack.has_dims
                )
                pack.memo["spatial_shares"] = shares
            active, weight_only, off = shares
            off_leak = ptable.logic_off[:, None]
            weight_share = ptable.pe_weight_register_share[:, None]
            w_on_leak = weight_share + (1.0 - weight_share) * off_leak
            cached = active + weight_only * w_on_leak + off * off_leak
            pack.memo[key] = cached
        return cached

    def _sram_factor_grid(
        self, pack: PackedProfiles, ptable: ParameterTable
    ) -> np.ndarray:
        """Grid :meth:`_sram_factor_array`: ``(n_points, n_ops)``."""
        key = ("sram_factor_grid", self.software_managed, ptable.tokens)
        cached = pack.memo.get(key)
        if cached is None:
            fractions = pack.memo.get("sram_used_fraction")
            if fractions is None:
                capacity = pack.chip.sram_bytes
                used = np.minimum(
                    1.0, np.maximum(0.0, pack.sram_demand_bytes / capacity)
                )
                fractions = (used, 1.0 - used)
                pack.memo["sram_used_fraction"] = fractions
            used, unused = fractions
            leak = ptable.sram_off if self.software_managed else ptable.sram_sleep
            cached = used + unused * leak[:, None]
            pack.memo[key] = cached
        return cached

    def _sa_active_energy_grid(
        self, pack: PackedProfiles, ptable: ParameterTable, static_power_w: float
    ) -> np.ndarray:
        """Grid :meth:`_sa_active_energy_packed` (points × profiles)."""
        shape = (ptable.n_points, pack.n_profiles)
        if not self.spatial_sa_gating:
            energy = static_power_w * pack.active_total_s(Component.SA)
            return np.broadcast_to(energy, shape)
        active = pack.weighted_active(Component.SA)
        factor = self._spatial_factor_grid(pack, ptable)
        return pack.seg_sums_matrix(
            np.where(active > 0.0, static_power_w * active * factor, 0.0)
        )

    def _sram_energy_grid(
        self, pack: PackedProfiles, ptable: ParameterTable, static_power_w: float
    ) -> np.ndarray:
        """Grid :meth:`_sram_energy_packed` (points × profiles)."""
        shape = (ptable.n_points, pack.n_profiles)
        if not self.gating_enabled:
            return np.broadcast_to(static_power_w * pack.total_time_s(), shape)
        duration = pack.weighted_latency()
        factor = self._sram_factor_grid(pack, ptable)
        return pack.seg_sums_matrix(static_power_w * duration * factor)

    def _peak_power_grid(
        self, pack: PackedProfiles, ptable: ParameterTable, power_model: ChipPowerModel
    ) -> np.ndarray:
        """Grid :meth:`_peak_power_packed` (points × profiles)."""
        latency = pack.latency_s
        mask = latency > 0.0
        dynamic_w = _peak_dynamic_w(pack)
        off_leak = ptable.logic_off[:, None]
        ideal = self.name is PolicyName.IDEAL

        def contribution(component: Component) -> np.ndarray | float:
            base = power_model.static_power_w(component)
            if not self.gating_enabled or component is Component.OTHER:
                return base
            if component is Component.SRAM:
                key = ("peak_sram_grid", base, self.software_managed, ptable.tokens)
                value = pack.memo.get(key)
                if value is None:
                    value = base * self._sram_factor_grid(pack, ptable)
                    pack.memo[key] = value
                return value
            if component is Component.SA and self.spatial_sa_gating:
                key = ("peak_sa_spatial_grid", base, ptable.tokens)
                value = pack.memo.get(key)
                if value is None:
                    factor = self._spatial_factor_grid(pack, ptable)
                    fraction = _peak_active_fraction(pack, component)
                    value = base * (
                        fraction * factor + (1 - fraction) * off_leak
                    )
                    pack.memo[key] = value
                return value
            idle_leak = 0.0 if ideal else off_leak
            key = ("peak_temporal_grid", component, base, ideal, ptable.tokens)
            value = pack.memo.get(key)
            if value is None:
                fraction = _peak_active_fraction(pack, component)
                value = base * (fraction + (1 - fraction) * idle_leak)
                pack.memo[key] = value
            return value

        static_w: np.ndarray = np.zeros_like(latency)
        for component in Component.all():
            static_w = static_w + contribution(component)
        values = np.where(mask, dynamic_w + static_w, 0.0)
        if values.ndim == 1:
            # Every contribution was parameter-independent (e.g. NoPG).
            maxes = pack.seg_max_matrix(values[None, :])[0]
            return np.broadcast_to(maxes, (ptable.n_points, pack.n_profiles))
        return pack.seg_max_matrix(values)


class NoPGPolicy(PowerGatingPolicy):
    """No power gating: the baseline the paper normalizes against."""

    name = PolicyName.NOPG
    gating_enabled = False


class ReGateBasePolicy(PowerGatingPolicy):
    """Component-granularity hardware idle detection (ReGate-Base)."""

    name = PolicyName.REGATE_BASE
    gating_enabled = True
    spatial_sa_gating = False
    software_managed = False


class ReGateHWPolicy(PowerGatingPolicy):
    """ReGate-Base plus PE-granularity spatial SA gating (ReGate-HW)."""

    name = PolicyName.REGATE_HW
    gating_enabled = True
    spatial_sa_gating = True
    software_managed = False


class ReGateFullPolicy(PowerGatingPolicy):
    """Full ReGate: hardware gating plus software-managed VU/SRAM gating."""

    name = PolicyName.REGATE_FULL
    gating_enabled = True
    spatial_sa_gating = True
    software_managed = True


class IdealPolicy(PowerGatingPolicy):
    """Roofline: zero leakage when idle, zero transition cost and delay."""

    name = PolicyName.IDEAL
    gating_enabled = True
    spatial_sa_gating = True
    software_managed = True

    def _idle_energy(self, component, gaps, static_power_w, chip) -> _IdleAccounting:
        return _IdleAccounting(energy_j=0.0, gated_gaps=sum(g.num_gaps for g in gaps))

    def _idle_energy_columnar(
        self, component, gap_s, num_gaps, static_power_w, chip, table=None
    ) -> _IdleAccounting:
        if table is None:
            return _IdleAccounting(energy_j=0.0, gated_gaps=seq_sum(num_gaps))
        key = ("ideal_gated_gaps", component)
        gated = table.memo.get(key)
        if gated is None:
            gated = seq_sum(num_gaps)
            table.memo[key] = gated
        return _IdleAccounting(energy_j=0.0, gated_gaps=gated)

    def _sa_active_energy(self, profile: WorkloadProfile, static_power_w: float) -> float:
        model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
        energy = 0.0
        for op_profile in profile.profiles:
            active = op_profile.active_s(Component.SA) * op_profile.count
            if active <= 0:
                continue
            shares = model.shares(op_profile.operator.dims)
            energy += static_power_w * active * shares.active
        return energy

    def _sa_active_energy_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, static_power_w: float
    ) -> float:
        memo_key = ("ideal_sa_active_energy", static_power_w)
        cached = table.memo.get(memo_key)
        if cached is not None:
            return cached
        active = table.weighted_active(Component.SA)
        active_share = table.memo.get("spatial_active_share")
        if active_share is None:
            model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
            active_share, _, _ = model.shares_arrays(
                table.dims_m, table.dims_k, table.dims_n, table.has_dims
            )
            table.memo["spatial_active_share"] = active_share
        energy = seq_sum(
            np.where(active > 0.0, static_power_w * active * active_share, 0.0)
        )
        table.memo[memo_key] = energy
        return energy

    def _sram_energy(self, profile: WorkloadProfile, static_power_w: float) -> float:
        capacity = profile.chip.sram_bytes
        energy = 0.0
        for op_profile in profile.profiles:
            duration = op_profile.latency_s * op_profile.count
            used = min(1.0, op_profile.sram_demand_bytes / capacity)
            energy += static_power_w * duration * used
        return energy

    def _sram_energy_columnar(
        self, profile: WorkloadProfile, table: ProfileTable, static_power_w: float
    ) -> float:
        memo_key = ("ideal_sram_energy", static_power_w)
        cached = table.memo.get(memo_key)
        if cached is not None:
            return cached
        capacity = profile.chip.sram_bytes
        duration = table.weighted_latency()
        used = np.minimum(1.0, table.sram_demand_bytes / capacity)
        energy = seq_sum(static_power_w * duration * used)
        table.memo[memo_key] = energy
        return energy

    # -- packed (batch) counterparts ------------------------------------- #
    def _idle_energy_packed(
        self, component, pack: PackedProfiles, static_power_w: float, chip
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        _, num_gaps = pack.gap_table(component)
        zeros = np.zeros(pack.n_profiles, dtype=np.float64)
        key = ("ideal_gated_gaps", component)
        gated = pack.memo.get(key)
        if gated is None:
            gated = pack.seg_sums(num_gaps)
            pack.memo[key] = gated
        return zeros, gated, zeros

    def _sa_active_energy_packed(
        self, pack: PackedProfiles, static_power_w: float
    ) -> np.ndarray:
        active = pack.weighted_active(Component.SA)
        active_share = pack.memo.get("spatial_active_share")
        if active_share is None:
            model = SpatialGatingModel(pack.chip.sa_width, self.parameters)
            active_share, _, _ = model.shares_arrays(
                pack.dims_m, pack.dims_k, pack.dims_n, pack.has_dims
            )
            pack.memo["spatial_active_share"] = active_share
        return pack.seg_sums(
            np.where(active > 0.0, static_power_w * active * active_share, 0.0)
        )

    def _sram_energy_packed(
        self, pack: PackedProfiles, static_power_w: float
    ) -> np.ndarray:
        capacity = pack.chip.sram_bytes
        duration = pack.weighted_latency()
        used = np.minimum(1.0, pack.sram_demand_bytes / capacity)
        return pack.seg_sums(static_power_w * duration * used)

    # -- grid (profiles × parameter points) counterparts ------------------ #
    # The Ideal roofline's idle/SA/SRAM accounting is independent of the
    # gating parameters, so each grid hook computes its per-profile
    # values once and broadcasts them along the parameter axis — exactly
    # the values the per-point packed hooks produce at every point.
    def _idle_energy_grid(
        self, component, pack: PackedProfiles, ptable, static_power_w: float, chip
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        _, num_gaps = pack.gap_table(component)
        shape = (ptable.n_points, pack.n_profiles)
        zeros = np.zeros(shape)
        key = ("ideal_gated_gaps", component)
        gated = pack.memo.get(key)
        if gated is None:
            gated = pack.seg_sums(num_gaps)
            pack.memo[key] = gated
        return zeros, np.broadcast_to(gated, shape), zeros

    def _sa_active_energy_grid(
        self, pack: PackedProfiles, ptable, static_power_w: float
    ) -> np.ndarray:
        energy = self._sa_active_energy_packed(pack, static_power_w)
        return np.broadcast_to(energy, (ptable.n_points, pack.n_profiles))

    def _sram_energy_grid(
        self, pack: PackedProfiles, ptable, static_power_w: float
    ) -> np.ndarray:
        energy = self._sram_energy_packed(pack, static_power_w)
        return np.broadcast_to(energy, (ptable.n_points, pack.n_profiles))


_POLICIES: dict[PolicyName, type[PowerGatingPolicy]] = {
    PolicyName.NOPG: NoPGPolicy,
    PolicyName.REGATE_BASE: ReGateBasePolicy,
    PolicyName.REGATE_HW: ReGateHWPolicy,
    PolicyName.REGATE_FULL: ReGateFullPolicy,
    PolicyName.IDEAL: IdealPolicy,
}


def list_policies() -> list[PolicyName]:
    """All policy names in the paper's presentation order."""
    return list(_POLICIES)


def get_policy(
    name: PolicyName | str, parameters: GatingParameters | None = None
) -> PowerGatingPolicy:
    """Instantiate a policy by name."""
    return _POLICIES[PolicyName.parse(name)](parameters)


__all__ = [
    "ChipMajorPacks",
    "GridEnergyReports",
    "IdealPolicy",
    "NoPGPolicy",
    "PackedProfiles",
    "ParameterTable",
    "PolicyName",
    "PowerGatingPolicy",
    "ReGateBasePolicy",
    "ReGateFullPolicy",
    "ReGateHWPolicy",
    "get_policy",
    "list_policies",
]
