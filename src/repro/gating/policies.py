"""Power-gating policies: NoPG, ReGate-Base, ReGate-HW, ReGate-Full, Ideal.

Each policy takes the activity profile produced by the performance
simulator and accounts the static energy of every component, the dynamic
energy of power-state transitions, and the exposed wake-up delays:

* **NoPG** — every component leaks at full static power all the time.
* **ReGate-Base** — conventional hardware idle detection at component
  granularity: whole SAs, VUs, the HBM and ICI controllers are gated
  after an idle-detection window (1/3 of the break-even time); unused
  SRAM can only be put to sleep.
* **ReGate-HW** — adds ReGate's PE-granularity spatial SA gating and the
  cheap (1-cycle) PE wake-up that the diagonal ``PE_on`` wavefront
  provides.
* **ReGate-Full** — adds software-managed gating: the compiler gates VUs
  on exact idle intervals (no detection window, no missed wake-ups) and
  powers unused SRAM capacity fully off.
* **Ideal** — a roofline with zero leakage when gated, zero transition
  cost and perfect idleness knowledge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gating.bet import DEFAULT_PARAMETERS, GatingParameters
from repro.gating.report import EnergyReport, PolicyName
from repro.gating.sa_gating import SpatialGatingModel
from repro.gating.sram_gating import SramGatingModel
from repro.hardware.components import Component
from repro.hardware.power import ChipPowerModel
from repro.simulator.engine import GapProfile, OperatorProfile, WorkloadProfile

# The hardware VU idle detector waits at least 8 cycles to avoid blocking
# the SA pipeline (§4.1 of the paper).
MIN_VU_DETECTION_WINDOW_CYCLES = 8.0


@dataclass
class _IdleAccounting:
    """Static energy and bookkeeping for one component's idle time."""

    energy_j: float = 0.0
    gated_gaps: float = 0.0
    exposed_wake_cycles: float = 0.0


class PowerGatingPolicy:
    """Base class: shared accounting helpers for all policies."""

    name: PolicyName = PolicyName.NOPG
    #: Whether the SA is gated at PE granularity during active time.
    spatial_sa_gating: bool = False
    #: Whether VU / SRAM power gating is driven by the compiler.
    software_managed: bool = False
    #: Whether any power gating happens at all.
    gating_enabled: bool = False

    def __init__(self, parameters: GatingParameters | None = None):
        self.parameters = parameters or DEFAULT_PARAMETERS

    # ------------------------------------------------------------------ #
    # Idle-period accounting
    # ------------------------------------------------------------------ #
    def _timing_variant(self, component: Component) -> str | None:
        if component is Component.SA:
            return "sa_pe" if self.spatial_sa_gating else "sa_full"
        return None

    def _detection_window_s(self, component: Component, chip) -> float:
        window = self.parameters.detection_window_cycles(
            component, self._timing_variant(component)
        )
        if component is Component.VU:
            window = max(window, MIN_VU_DETECTION_WINDOW_CYCLES)
        return chip.cycles_to_seconds(window)

    def _uses_software_gating(self, component: Component) -> bool:
        return self.software_managed and component is Component.VU

    def _idle_energy(
        self,
        component: Component,
        gaps: list[GapProfile],
        static_power_w: float,
        chip,
    ) -> _IdleAccounting:
        """Static energy of a component's idle time under this policy."""
        accounting = _IdleAccounting()
        if not self.gating_enabled:
            accounting.energy_j = static_power_w * sum(g.total_idle_s for g in gaps)
            return accounting

        variant = self._timing_variant(component)
        timing = self.parameters.timing(component, variant)
        delay_s = chip.cycles_to_seconds(timing.delay_cycles)
        bet_s = chip.cycles_to_seconds(timing.bet_cycles)
        off_leak = self.parameters.off_leakage(component)
        transition_j = static_power_w * bet_s * (1.0 - off_leak)

        software = self._uses_software_gating(component)
        window_s = 0.0 if software else self._detection_window_s(component, chip)
        threshold_s = max(bet_s, 2.0 * delay_s) if software else window_s + bet_s

        for gap in gaps:
            if gap.gap_s <= 0 or gap.num_gaps <= 0:
                continue
            if gap.gap_s <= threshold_s:
                accounting.energy_j += static_power_w * gap.total_idle_s
                continue
            gated_s = gap.gap_s - window_s
            per_gap = (
                static_power_w * window_s
                + static_power_w * off_leak * gated_s
                + transition_j
            )
            accounting.energy_j += per_gap * gap.num_gaps
            accounting.gated_gaps += gap.num_gaps
            if not software:
                accounting.exposed_wake_cycles += timing.delay_cycles * gap.num_gaps
        return accounting

    def _ideal_idle_energy(self, gaps: list[GapProfile]) -> _IdleAccounting:
        return _IdleAccounting(energy_j=0.0)

    # ------------------------------------------------------------------ #
    # Active-period accounting
    # ------------------------------------------------------------------ #
    def _sa_active_energy(
        self, profile: WorkloadProfile, static_power_w: float
    ) -> float:
        """SA leakage while the SA is actively computing."""
        if not self.spatial_sa_gating:
            return static_power_w * profile.active_s(Component.SA)
        model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
        energy = 0.0
        for op_profile in profile.profiles:
            active = op_profile.active_s(Component.SA) * op_profile.count
            if active <= 0:
                continue
            factor = model.static_power_factor(op_profile.operator.dims)
            energy += static_power_w * active * factor
        return energy

    def _sram_energy(self, profile: WorkloadProfile, static_power_w: float) -> float:
        """SRAM leakage: used capacity stays on, unused is slept/gated."""
        if not self.gating_enabled:
            return static_power_w * profile.total_time_s
        model = SramGatingModel(profile.chip, self.parameters)
        energy = 0.0
        for op_profile in profile.profiles:
            duration = op_profile.latency_s * op_profile.count
            factor = model.leakage_factor_for_demand(
                op_profile.sram_demand_bytes, software_managed=self.software_managed
            )
            energy += static_power_w * duration * factor
        return energy

    # ------------------------------------------------------------------ #
    def evaluate(
        self, profile: WorkloadProfile, power_model: ChipPowerModel | None = None
    ) -> EnergyReport:
        """Compute the full energy report of this policy for one profile."""
        power_model = power_model or ChipPowerModel(profile.chip)
        chip = profile.chip
        report = EnergyReport(
            policy=self.name,
            baseline_time_s=profile.total_time_s,
            overhead_time_s=0.0,
        )
        exposed_cycles = 0.0

        for component in Component.all():
            report.dynamic_energy_j[component] = profile.dynamic_energy_j(component)

        static = {c: power_model.static_power_w(c) for c in Component.all()}

        # Never-gated logic leaks for the whole execution.
        report.static_energy_j[Component.OTHER] = (
            static[Component.OTHER] * profile.total_time_s
        )

        # Systolic arrays: active-time leakage (possibly spatially gated)
        # plus idle-time leakage under the temporal gating scheme.
        sa_idle = self._idle_energy(
            Component.SA, profile.gap_profiles(Component.SA), static[Component.SA], chip
        )
        report.static_energy_j[Component.SA] = (
            self._sa_active_energy(profile, static[Component.SA]) + sa_idle.energy_j
        )
        report.gating_events[Component.SA] = sa_idle.gated_gaps
        exposed_cycles += sa_idle.exposed_wake_cycles

        # Vector units.
        vu_idle = self._idle_energy(
            Component.VU, profile.gap_profiles(Component.VU), static[Component.VU], chip
        )
        report.static_energy_j[Component.VU] = (
            static[Component.VU] * profile.active_s(Component.VU) + vu_idle.energy_j
        )
        report.gating_events[Component.VU] = vu_idle.gated_gaps
        exposed_cycles += vu_idle.exposed_wake_cycles

        # HBM and ICI controllers: hardware idle detection in every ReGate
        # variant; their wake-up delay is amortized by the DMA latency, so
        # it does not show up as a performance overhead.
        for component in (Component.HBM, Component.ICI):
            idle = self._idle_energy(
                component, profile.gap_profiles(component), static[component], chip
            )
            report.static_energy_j[component] = (
                static[component] * profile.active_s(component) + idle.energy_j
            )
            report.gating_events[component] = idle.gated_gaps

        # SRAM capacity gating.
        report.static_energy_j[Component.SRAM] = self._sram_energy(
            profile, static[Component.SRAM]
        )
        report.gating_events[Component.SRAM] = float(len(profile.profiles))

        report.overhead_time_s = chip.cycles_to_seconds(exposed_cycles)
        # The exposed wake-up delays keep the whole chip powered a little
        # longer; charge that time at the un-gated static power.
        if report.overhead_time_s > 0:
            total_static_power = sum(static.values())
            extra = total_static_power * report.overhead_time_s
            report.static_energy_j[Component.OTHER] += extra

        report.peak_power_w = self._peak_power(profile, power_model)
        return report

    # ------------------------------------------------------------------ #
    def _peak_power(
        self, profile: WorkloadProfile, power_model: ChipPowerModel
    ) -> float:
        """Average power of the most power-hungry operator (Figure 18)."""
        sram_model = SramGatingModel(profile.chip, self.parameters)
        spatial_model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
        off_leak = self.parameters.leakage.logic_off
        peak = 0.0
        for op_profile in profile.profiles:
            latency = op_profile.latency_s
            if latency <= 0:
                continue
            dynamic_w = sum(op_profile.dynamic_energy_j.values()) / latency
            static_w = 0.0
            for component in Component.all():
                base = power_model.static_power_w(component)
                active_fraction = min(1.0, op_profile.active_s(component) / latency)
                if not self.gating_enabled:
                    static_w += base
                    continue
                if component is Component.OTHER:
                    static_w += base
                elif component is Component.SRAM:
                    static_w += base * sram_model.leakage_factor_for_demand(
                        op_profile.sram_demand_bytes, self.software_managed
                    )
                elif component is Component.SA and self.spatial_sa_gating:
                    factor = spatial_model.static_power_factor(op_profile.operator.dims)
                    static_w += base * (
                        active_fraction * factor + (1 - active_fraction) * off_leak
                    )
                else:
                    idle_leak = 0.0 if self.name is PolicyName.IDEAL else off_leak
                    static_w += base * (
                        active_fraction + (1 - active_fraction) * idle_leak
                    )
            peak = max(peak, dynamic_w + static_w)
        return peak


class NoPGPolicy(PowerGatingPolicy):
    """No power gating: the baseline the paper normalizes against."""

    name = PolicyName.NOPG
    gating_enabled = False


class ReGateBasePolicy(PowerGatingPolicy):
    """Component-granularity hardware idle detection (ReGate-Base)."""

    name = PolicyName.REGATE_BASE
    gating_enabled = True
    spatial_sa_gating = False
    software_managed = False


class ReGateHWPolicy(PowerGatingPolicy):
    """ReGate-Base plus PE-granularity spatial SA gating (ReGate-HW)."""

    name = PolicyName.REGATE_HW
    gating_enabled = True
    spatial_sa_gating = True
    software_managed = False


class ReGateFullPolicy(PowerGatingPolicy):
    """Full ReGate: hardware gating plus software-managed VU/SRAM gating."""

    name = PolicyName.REGATE_FULL
    gating_enabled = True
    spatial_sa_gating = True
    software_managed = True


class IdealPolicy(PowerGatingPolicy):
    """Roofline: zero leakage when idle, zero transition cost and delay."""

    name = PolicyName.IDEAL
    gating_enabled = True
    spatial_sa_gating = True
    software_managed = True

    def _idle_energy(self, component, gaps, static_power_w, chip) -> _IdleAccounting:
        return _IdleAccounting(energy_j=0.0, gated_gaps=sum(g.num_gaps for g in gaps))

    def _sa_active_energy(self, profile: WorkloadProfile, static_power_w: float) -> float:
        model = SpatialGatingModel(profile.chip.sa_width, self.parameters)
        energy = 0.0
        for op_profile in profile.profiles:
            active = op_profile.active_s(Component.SA) * op_profile.count
            if active <= 0:
                continue
            shares = model.shares(op_profile.operator.dims)
            energy += static_power_w * active * shares.active
        return energy

    def _sram_energy(self, profile: WorkloadProfile, static_power_w: float) -> float:
        capacity = profile.chip.sram_bytes
        energy = 0.0
        for op_profile in profile.profiles:
            duration = op_profile.latency_s * op_profile.count
            used = min(1.0, op_profile.sram_demand_bytes / capacity)
            energy += static_power_w * duration * used
        return energy


_POLICIES: dict[PolicyName, type[PowerGatingPolicy]] = {
    PolicyName.NOPG: NoPGPolicy,
    PolicyName.REGATE_BASE: ReGateBasePolicy,
    PolicyName.REGATE_HW: ReGateHWPolicy,
    PolicyName.REGATE_FULL: ReGateFullPolicy,
    PolicyName.IDEAL: IdealPolicy,
}


def list_policies() -> list[PolicyName]:
    """All policy names in the paper's presentation order."""
    return list(_POLICIES)


def get_policy(
    name: PolicyName | str, parameters: GatingParameters | None = None
) -> PowerGatingPolicy:
    """Instantiate a policy by name."""
    return _POLICIES[PolicyName.parse(name)](parameters)


__all__ = [
    "IdealPolicy",
    "NoPGPolicy",
    "PolicyName",
    "PowerGatingPolicy",
    "ReGateBasePolicy",
    "ReGateFullPolicy",
    "ReGateHWPolicy",
    "get_policy",
    "list_policies",
]
