"""Power-gating mechanisms and policies (ReGate's core contribution)."""

from repro.gating.bet import (
    ComponentTiming,
    DEFAULT_PARAMETERS,
    GatingParameters,
    ParameterTable,
)
from repro.gating.idle_detection import IdleDetector, run_length_idle_stats
from repro.gating.policies import (
    ChipMajorPacks,
    GridEnergyReports,
    PackedProfiles,
    PolicyName,
    PowerGatingPolicy,
    get_policy,
    list_policies,
)
from repro.gating.sa_gating import SpatialGatingModel, spatial_utilization
from repro.gating.sram_gating import SramGatingModel

__all__ = [
    "ChipMajorPacks",
    "ComponentTiming",
    "DEFAULT_PARAMETERS",
    "GatingParameters",
    "GridEnergyReports",
    "IdleDetector",
    "PackedProfiles",
    "ParameterTable",
    "PolicyName",
    "PowerGatingPolicy",
    "SpatialGatingModel",
    "SramGatingModel",
    "get_policy",
    "list_policies",
    "run_length_idle_stats",
    "spatial_utilization",
]
