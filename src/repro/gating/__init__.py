"""Power-gating mechanisms and policies (ReGate's core contribution)."""

from repro.gating.bet import ComponentTiming, GatingParameters, DEFAULT_PARAMETERS
from repro.gating.idle_detection import IdleDetector, run_length_idle_stats
from repro.gating.policies import (
    PolicyName,
    PowerGatingPolicy,
    get_policy,
    list_policies,
)
from repro.gating.sa_gating import SpatialGatingModel, spatial_utilization
from repro.gating.sram_gating import SramGatingModel

__all__ = [
    "ComponentTiming",
    "DEFAULT_PARAMETERS",
    "GatingParameters",
    "IdleDetector",
    "PolicyName",
    "PowerGatingPolicy",
    "SpatialGatingModel",
    "SramGatingModel",
    "get_policy",
    "list_policies",
    "run_length_idle_stats",
    "spatial_utilization",
]
