"""Energy/power/performance report structures produced by gating policies."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.hardware.components import Component


class PolicyName(str, Enum):
    """The five designs compared in the paper's evaluation (§6.1)."""

    NOPG = "NoPG"
    REGATE_BASE = "ReGate-Base"
    REGATE_HW = "ReGate-HW"
    REGATE_FULL = "ReGate-Full"
    IDEAL = "Ideal"

    @classmethod
    def parse(cls, name: "PolicyName | str") -> "PolicyName":
        """Resolve a policy from its display value or enum name.

        Case-insensitive; the single place CLI, sweep specs and policy
        lookups share for name resolution.
        """
        if isinstance(name, PolicyName):
            return name
        lookup = {policy.value.lower(): policy for policy in cls}
        lookup.update({policy.name.lower(): policy for policy in cls})
        key = str(name).strip().lower()
        if key not in lookup:
            raise KeyError(
                f"unknown policy {name!r}; choose from "
                f"{', '.join(policy.value for policy in cls)}"
            )
        return lookup[key]


@dataclass
class EnergyReport:
    """Per-iteration energy, power and performance under one policy."""

    policy: PolicyName
    baseline_time_s: float
    overhead_time_s: float
    static_energy_j: dict[Component, float] = field(default_factory=dict)
    dynamic_energy_j: dict[Component, float] = field(default_factory=dict)
    gating_events: dict[Component, float] = field(default_factory=dict)
    peak_power_w: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def total_time_s(self) -> float:
        """Execution time including exposed wake-up delays."""
        return self.baseline_time_s + self.overhead_time_s

    @property
    def performance_overhead(self) -> float:
        """Slowdown relative to the un-gated execution time."""
        if self.baseline_time_s <= 0:
            return 0.0
        return self.overhead_time_s / self.baseline_time_s

    @property
    def total_static_j(self) -> float:
        return sum(self.static_energy_j.values())

    @property
    def total_dynamic_j(self) -> float:
        return sum(self.dynamic_energy_j.values())

    @property
    def total_energy_j(self) -> float:
        return self.total_static_j + self.total_dynamic_j

    @property
    def average_power_w(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_energy_j / self.total_time_s

    def component_energy_j(self, component: Component) -> float:
        """Static plus dynamic energy of one component."""
        return self.static_energy_j.get(component, 0.0) + self.dynamic_energy_j.get(
            component, 0.0
        )

    def static_fraction(self, component: Component | None = None) -> float:
        """Share of total energy that is static (optionally one component)."""
        total = self.total_energy_j
        if total <= 0:
            return 0.0
        if component is None:
            return self.total_static_j / total
        return self.static_energy_j.get(component, 0.0) / total

    def savings_vs(self, baseline: "EnergyReport") -> float:
        """Fractional energy savings relative to another report."""
        if baseline.total_energy_j <= 0:
            return 0.0
        return 1.0 - self.total_energy_j / baseline.total_energy_j

    def component_savings_vs(self, baseline: "EnergyReport", component: Component) -> float:
        """Energy saved on one component, as a fraction of baseline total energy."""
        if baseline.total_energy_j <= 0:
            return 0.0
        delta = baseline.component_energy_j(component) - self.component_energy_j(component)
        return delta / baseline.total_energy_j


__all__ = ["EnergyReport", "PolicyName"]
