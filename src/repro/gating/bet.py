"""Break-even times, wake-up delays and leakage ratios (Table 3, §6.1).

The break-even time (BET) is the minimum idle duration for which power
gating saves energy: shorter idle periods do not amortize the dynamic
energy spent switching the supply off and on.  Both the BET and the
power-on/off delay of each component come from the paper's synthesized
prototype (Table 3); the default leakage ratios of gated logic, drowsy
SRAM and powered-off SRAM come from §6.1.  All of them are exposed as
configuration so the sensitivity analyses (Figures 21-22) can sweep
them.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.hardware.chips import NPUChipSpec
from repro.hardware.components import Component

# Monotonic per-instance tokens for GatingParameters (see
# :func:`parameters_token`): a hashable stand-in for the (unhashable,
# dict-holding) parameters object in memoization keys.
_PARAMETER_TOKENS: dict[int, int] = {}
_TOKEN_COUNTER = itertools.count()


def parameters_token(parameters: "GatingParameters") -> int:
    """A process-unique token identifying one parameters instance.

    ``GatingParameters`` is frozen but holds a dict, so it cannot be
    hashed directly; the token lets caches key on the instance without
    re-deriving anything from its content.  Entries are evicted when
    the instance is collected (before its id can be reused), so a token
    never aliases two different parameter sets.
    """
    key = id(parameters)
    token = _PARAMETER_TOKENS.get(key)
    if token is None:
        token = next(_TOKEN_COUNTER)
        _PARAMETER_TOKENS[key] = token
        weakref.finalize(parameters, _PARAMETER_TOKENS.pop, key, None)
    return token


@dataclass(frozen=True)
class ComponentTiming:
    """Wake-up delay and break-even time of one gateable block."""

    delay_cycles: float
    bet_cycles: float

    def scaled(self, factor: float) -> "ComponentTiming":
        """Scale the power-gate & wake-up delay (Figure 22 sweep).

        The BET grows with the transition delay because a slower switch
        dissipates more transition energy; we scale it proportionally,
        matching how the paper's sweep treats "power-gate & wake-up
        delay" as a single knob.
        """
        return ComponentTiming(
            delay_cycles=self.delay_cycles * factor,
            bet_cycles=self.bet_cycles * factor,
        )


# Table 3 of the paper.
TABLE3_TIMINGS: dict[str, ComponentTiming] = {
    "sa_pe": ComponentTiming(delay_cycles=1, bet_cycles=47),
    "sa_full": ComponentTiming(delay_cycles=10, bet_cycles=469),
    "vu": ComponentTiming(delay_cycles=2, bet_cycles=32),
    "hbm": ComponentTiming(delay_cycles=60, bet_cycles=412),
    "ici": ComponentTiming(delay_cycles=60, bet_cycles=459),
    "sram_sleep": ComponentTiming(delay_cycles=4, bet_cycles=41),
    "sram_off": ComponentTiming(delay_cycles=10, bet_cycles=82),
}


@dataclass(frozen=True)
class LeakageRatios:
    """Leakage power of gated blocks relative to their ON-state leakage.

    The defaults (§6.1): gated logic 3%, drowsy (sleep) SRAM 25%,
    powered-off SRAM 0.2%.
    """

    logic_off: float = 0.03
    sram_sleep: float = 0.25
    sram_off: float = 0.002

    def __post_init__(self) -> None:
        for name in ("logic_off", "sram_sleep", "sram_off"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")


class _FrozenTimings(dict):
    """Immutable timing table: ``GatingParameters`` is deeply frozen.

    The cache keys and the fast-path memos identify a parameters
    instance by identity, so its content must never change after
    construction; derive variants with :meth:`with_delay_multiplier` /
    ``dataclasses.replace`` instead of mutating in place.
    """

    def _readonly(self, *args, **kwargs):
        raise TypeError(
            "GatingParameters timings are immutable; build a new instance "
            "(e.g. with_delay_multiplier or dataclasses.replace)"
        )

    __setitem__ = __delitem__ = _readonly
    clear = pop = popitem = setdefault = update = _readonly
    del _readonly

    def __reduce__(self):
        return (type(self), (dict(self),))


@dataclass(frozen=True)
class GatingParameters:
    """All tunable parameters of the power-gating mechanisms."""

    timings: dict[str, ComponentTiming] = field(
        default_factory=lambda: dict(TABLE3_TIMINGS)
    )
    leakage: LeakageRatios = field(default_factory=LeakageRatios)
    # The idle-detection state machine waits this fraction of the BET
    # before gating (the paper's baseline uses a 1/3-BET window, §6.1).
    detection_window_bet_fraction: float = 1.0 / 3.0
    # Weight-register share of a PE's leakage when held in W_on mode.
    pe_weight_register_share: float = 0.12

    def __post_init__(self) -> None:
        # Deep-freeze: a copied, immutable mapping means neither the
        # caller's dict nor in-place item assignment can change this
        # instance's content behind the identity-keyed caches.
        object.__setattr__(self, "timings", _FrozenTimings(self.timings))

    # ------------------------------------------------------------------ #
    _COMPONENT_KEYS = {
        Component.SA: "sa_full",
        Component.VU: "vu",
        Component.HBM: "hbm",
        Component.ICI: "ici",
        Component.SRAM: "sram_sleep",
    }

    def timing(self, component: Component, variant: str | None = None) -> ComponentTiming:
        """Timing of a component; ``variant`` selects e.g. ``"sa_pe"``."""
        key = variant or self._COMPONENT_KEYS[component]
        return self.timings[key]

    def detection_window_cycles(self, component: Component, variant: str | None = None) -> float:
        """Idle-detection window before the hardware policy gates a block."""
        return self.timing(component, variant).bet_cycles * self.detection_window_bet_fraction

    def off_leakage(self, component: Component) -> float:
        """Leakage ratio of a fully gated component."""
        if component is Component.SRAM:
            return self.leakage.sram_off
        return self.leakage.logic_off

    def sleep_leakage(self) -> float:
        """Leakage ratio of drowsy SRAM."""
        return self.leakage.sram_sleep

    # ------------------------------------------------------------------ #
    def with_delay_multiplier(self, factor: float) -> "GatingParameters":
        """Return parameters with all delays/BETs scaled (Figure 22)."""
        scaled = {key: timing.scaled(factor) for key, timing in self.timings.items()}
        return replace(self, timings=scaled)

    def with_leakage(
        self, logic_off: float, sram_sleep: float, sram_off: float
    ) -> "GatingParameters":
        """Return parameters with new leakage ratios (Figure 21)."""
        return replace(
            self,
            leakage=LeakageRatios(
                logic_off=logic_off, sram_sleep=sram_sleep, sram_off=sram_off
            ),
        )

    # ------------------------------------------------------------------ #
    def transition_energy_j(
        self, static_power_w: float, chip: NPUChipSpec, component: Component,
        variant: str | None = None,
    ) -> float:
        """Dynamic energy of one power-off/on cycle.

        Defined so that gating an idle period exactly equal to the BET is
        energy neutral: ``E_trans = P_static * BET * (1 - off_leakage)``.
        """
        timing = self.timing(component, variant)
        bet_s = chip.cycles_to_seconds(timing.bet_cycles)
        return static_power_w * bet_s * (1.0 - self.off_leakage(component))


@dataclass(frozen=True)
class IdleGatingCoefficients:
    """Scalar idle-gating terms of one (policy, component, chip) triple.

    These are the per-gap coefficients of the idle-energy accounting in
    :mod:`repro.gating.policies`; both the object-path loop and the
    columnar fast path consume the same instance, so the two paths use
    bit-identical scalars by construction.
    """

    window_s: float  # idle-detection window (0 for software gating)
    threshold_s: float  # minimum gap length worth gating
    off_leakage: float  # leakage ratio of the gated block
    transition_j: float  # energy of one power-off/on cycle
    delay_cycles: float  # wake-up delay exposed per gated gap
    software: bool  # compiler-managed (no window, no missed wake-ups)


def idle_gating_coefficients(
    parameters: GatingParameters,
    component: Component,
    variant: str | None,
    static_power_w: float,
    chip: NPUChipSpec,
    software: bool,
    min_window_cycles: float = 0.0,
    window_s: float | None = None,
) -> IdleGatingCoefficients:
    """Compute the per-gap idle-gating coefficients of one component.

    ``window_s`` overrides the detection window derived from
    ``parameters`` — the policies pass their (possibly subclassed)
    ``_detection_window_s`` result through here so a custom window
    implementation affects both accounting paths.
    """
    timing = parameters.timing(component, variant)
    delay_s = chip.cycles_to_seconds(timing.delay_cycles)
    bet_s = chip.cycles_to_seconds(timing.bet_cycles)
    off_leak = parameters.off_leakage(component)
    transition_j = static_power_w * bet_s * (1.0 - off_leak)
    if software:
        window_s = 0.0
        threshold_s = max(bet_s, 2.0 * delay_s)
    else:
        if window_s is None:
            window = parameters.detection_window_cycles(component, variant)
            window = max(window, min_window_cycles)
            window_s = chip.cycles_to_seconds(window)
        threshold_s = window_s + bet_s
    return IdleGatingCoefficients(
        window_s=window_s,
        threshold_s=threshold_s,
        off_leakage=off_leak,
        transition_j=transition_j,
        delay_cycles=timing.delay_cycles,
        software=software,
    )


@dataclass(frozen=True)
class IdleCoefficientColumns:
    """Aligned per-parameter-point columns of :class:`IdleGatingCoefficients`.

    One entry per gating-parameter point, shaped ``(n_points, 1)`` so the
    grid kernel can broadcast them against a packed per-operator axis.
    The columns are built from per-point scalar coefficient instances
    (the exact objects the per-point oracle consumes), so the grid path
    uses bit-identical scalars by construction.
    """

    window_s: np.ndarray
    threshold_s: np.ndarray
    off_leakage: np.ndarray
    transition_j: np.ndarray
    delay_cycles: np.ndarray
    software: bool  # policy/component property: uniform across points

    @classmethod
    def from_coefficients(
        cls, coefficients: Sequence[IdleGatingCoefficients]
    ) -> "IdleCoefficientColumns":
        softwares = {coeff.software for coeff in coefficients}
        if len(softwares) != 1:
            raise ValueError(
                "idle coefficients of one (policy, component) must agree on "
                "software management across parameter points"
            )

        def column(values: Iterable[float]) -> np.ndarray:
            return np.asarray(list(values), dtype=np.float64)[:, None]

        return cls(
            window_s=column(c.window_s for c in coefficients),
            threshold_s=column(c.threshold_s for c in coefficients),
            off_leakage=column(c.off_leakage for c in coefficients),
            transition_j=column(c.transition_j for c in coefficients),
            delay_cycles=column(c.delay_cycles for c in coefficients),
            software=softwares.pop(),
        )


def grid_idle_coefficient_columns(
    table: "ParameterTable",
    component: Component,
    variant: str | None,
    static_power_w: float,
    chip: NPUChipSpec,
    software: bool,
    min_window_cycles: float = 0.0,
) -> IdleCoefficientColumns:
    """Vectorized :func:`idle_gating_coefficients` over a parameter grid.

    Derives the per-gap coefficient columns of one (component, chip)
    pair for every point of ``table`` in a handful of array ops instead
    of one scalar derivation per point.  Every operation mirrors the
    scalar function elementwise — same divisions, same ``max`` order —
    so the columns are bit-identical to stacking the per-point scalar
    results.  Only valid for policies whose coefficient hooks are the
    stock ones; subclasses with custom windows or coefficients must go
    through the per-point path.
    """
    key = variant or GatingParameters._COMPONENT_KEYS[component]
    delay_cycles = table.delay_cycles[key]
    bet_cycles = table.bet_cycles[key]
    delay_s = chip.cycles_to_seconds(delay_cycles)
    bet_s = chip.cycles_to_seconds(bet_cycles)
    if component is Component.SRAM:
        off_leak = table.sram_off
    else:
        off_leak = table.logic_off
    transition_j = static_power_w * bet_s * (1.0 - off_leak)
    if software:
        window_s = np.zeros_like(bet_s)
        threshold_s = np.maximum(bet_s, 2.0 * delay_s)
    else:
        window = bet_cycles * table.detection_window_bet_fraction
        window = np.maximum(window, min_window_cycles)
        window_s = chip.cycles_to_seconds(window)
        threshold_s = window_s + bet_s
    return IdleCoefficientColumns(
        window_s=window_s[:, None],
        threshold_s=threshold_s[:, None],
        off_leakage=off_leak[:, None],
        transition_j=transition_j[:, None],
        delay_cycles=delay_cycles[:, None],
        software=software,
    )


class ParameterTable:
    """A grid of :class:`GatingParameters` in struct-of-arrays form.

    The input of the grid-batched policy evaluation
    (:meth:`repro.gating.policies.PowerGatingPolicy.grid_evaluate`): the
    leakage ratios, the per-timing-key delay/BET cycle counts and the
    remaining tunables of every point are held as aligned ``float64``
    arrays (one entry per point), alongside the original parameter
    instances, which stay the source of truth for derived per-point
    scalars.  Derived coefficient columns are memoized in :attr:`memo`
    and shared by every policy evaluated on the table.
    """

    def __init__(self, parameters: "Sequence[GatingParameters]"):
        points = tuple(parameters)
        if not points:
            raise ValueError("ParameterTable needs at least one parameter point")
        for point in points:
            if not isinstance(point, GatingParameters):
                raise TypeError(
                    f"ParameterTable entries must be GatingParameters, got {point!r}"
                )
        self.parameters = points
        self.n_points = len(points)
        #: Per-point identity tokens (stable memoization handles).
        self.tokens = tuple(parameters_token(point) for point in points)
        column = self._column
        self.logic_off = column(p.leakage.logic_off for p in points)
        self.sram_sleep = column(p.leakage.sram_sleep for p in points)
        self.sram_off = column(p.leakage.sram_off for p in points)
        self.pe_weight_register_share = column(
            p.pe_weight_register_share for p in points
        )
        #: Cross-policy scratchpad for derived per-point columns
        #: (e.g. :class:`IdleCoefficientColumns` per component).
        self.memo: dict = {}

    @staticmethod
    def _column(values: Iterable[float]) -> np.ndarray:
        return np.asarray(list(values), dtype=np.float64)

    # -- timing columns (lazy: the grid kernel derives its coefficients
    # -- from the parameter instances, so these are API surface for
    # -- analyses and tests, not hot-path work) ------------------------- #
    @property
    def detection_window_bet_fraction(self) -> np.ndarray:
        cached = self.memo.get("detection_window_bet_fraction")
        if cached is None:
            cached = self._column(
                p.detection_window_bet_fraction for p in self.parameters
            )
            self.memo["detection_window_bet_fraction"] = cached
        return cached

    @property
    def timing_keys(self) -> tuple[str, ...]:
        cached = self.memo.get("timing_keys")
        if cached is None:
            cached = tuple(self.parameters[0].timings)
            for point in self.parameters[1:]:
                if tuple(point.timings) != cached:
                    raise ValueError(
                        "all parameter points of a ParameterTable must share "
                        "one timing-key set"
                    )
            self.memo["timing_keys"] = cached
        return cached

    @property
    def delay_cycles(self) -> dict[str, np.ndarray]:
        cached = self.memo.get("delay_cycles")
        if cached is None:
            cached = {
                key: self._column(
                    p.timings[key].delay_cycles for p in self.parameters
                )
                for key in self.timing_keys
            }
            self.memo["delay_cycles"] = cached
        return cached

    @property
    def bet_cycles(self) -> dict[str, np.ndarray]:
        cached = self.memo.get("bet_cycles")
        if cached is None:
            cached = {
                key: self._column(p.timings[key].bet_cycles for p in self.parameters)
                for key in self.timing_keys
            }
            self.memo["bet_cycles"] = cached
        return cached

    @classmethod
    def of(
        cls, grid: "ParameterTable | Sequence[GatingParameters]"
    ) -> "ParameterTable":
        """Coerce a parameter sequence into a table (tables pass through)."""
        if isinstance(grid, ParameterTable):
            return grid
        return cls(grid)

    def __len__(self) -> int:
        return self.n_points

    def __iter__(self):
        return iter(self.parameters)


DEFAULT_PARAMETERS = GatingParameters()

# Leakage sweep points of Figure 21 (logic off / SRAM sleep / SRAM off).
FIGURE21_LEAKAGE_POINTS: tuple[tuple[float, float, float], ...] = (
    (0.03, 0.25, 0.002),
    (0.10, 0.30, 0.010),
    (0.20, 0.40, 0.100),
    (0.40, 0.50, 0.250),
    (0.60, 0.80, 0.400),
)

# Delay multipliers of Figure 22.
FIGURE22_DELAY_MULTIPLIERS: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 4.0)


__all__ = [
    "ComponentTiming",
    "DEFAULT_PARAMETERS",
    "FIGURE21_LEAKAGE_POINTS",
    "FIGURE22_DELAY_MULTIPLIERS",
    "GatingParameters",
    "IdleCoefficientColumns",
    "IdleGatingCoefficients",
    "LeakageRatios",
    "ParameterTable",
    "TABLE3_TIMINGS",
    "grid_idle_coefficient_columns",
    "idle_gating_coefficients",
    "parameters_token",
]
