"""Registry of benchmark workloads (Table 1 of the paper).

Each :class:`WorkloadSpec` bundles a model, an execution phase, default
batch/sequence parameters and a graph builder.  The registry also
provides the default pod configurations used in the evaluation (the
Table 4 analogue for this reproduction) and a simple heuristic for
choosing a parallelism layout given a chip count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.workloads import dlrm, diffusion, llm
from repro.workloads.base import OperatorGraph, ParallelismConfig, WorkloadPhase
from repro.workloads.table import GraphTable


def llm_parallelism(
    model: str,
    phase: WorkloadPhase,
    num_chips: int,
    hbm_capacity_bytes: float,
    batch_size: int | None = None,
) -> ParallelismConfig:
    """Choose a (tensor, pipeline, data) layout for an LLM on ``num_chips``.

    Tensor parallelism is grown (up to 8-way) until the per-chip memory
    footprint fits in HBM, then pipeline parallelism, and any remaining
    chips are used for data parallelism.
    """
    cfg = llm.get_llama_config(model)
    if batch_size is None:
        batch_size = 256 if phase is WorkloadPhase.DECODE else 32
    best: ParallelismConfig | None = None
    # Prefer tensor parallelism (within a node) before pipeline stages:
    # pipeline bubbles hurt latency-bound inference much more than the
    # extra all-reduce traffic of tensor sharding.
    for pipeline in (1, 2, 4, 8, 16):
        if pipeline > num_chips:
            break
        for tensor in (1, 2, 4, 8):
            if tensor * pipeline > num_chips:
                break
            if num_chips % (tensor * pipeline) != 0:
                continue
            data = num_chips // (tensor * pipeline)
            candidate = ParallelismConfig(data=data, tensor=tensor, pipeline=pipeline)
            footprint = llm.memory_per_chip_bytes(
                cfg, phase, candidate, batch_size=batch_size, seq_len=4096
            )
            if footprint <= hbm_capacity_bytes:
                if best is None:
                    best = candidate
                break
        if best is not None:
            break
    if best is None:
        # Fall back to the most aggressive sharding available.
        tensor = min(8, num_chips)
        pipeline = num_chips // tensor
        best = ParallelismConfig(data=1, tensor=tensor, pipeline=max(1, pipeline))
    return best


def flat_data_parallelism(num_chips: int) -> ParallelismConfig:
    """Pure data parallelism (used by DLRM and stable diffusion)."""
    return ParallelismConfig(data=num_chips, tensor=1, pipeline=1)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named benchmark workload with defaults from Tables 1 and 4."""

    name: str
    model: str
    phase: WorkloadPhase
    family: str  # "llm", "dlrm", "diffusion"
    default_batch_size: int
    default_num_chips: int
    seq_len: int = 4096
    output_len: int = 512
    builder: Callable[..., OperatorGraph] = field(repr=False, default=None)
    parallelism_fn: Callable[[int, float], ParallelismConfig] = field(
        repr=False, default=None
    )
    memory_fn: Callable[[ParallelismConfig, int], float] = field(repr=False, default=None)
    table_builder: Callable[..., GraphTable] = field(repr=False, default=None)

    def parallelism_for(self, num_chips: int, hbm_capacity_bytes: float) -> ParallelismConfig:
        """Pick a parallelism layout for this workload on ``num_chips``."""
        return self.parallelism_fn(num_chips, hbm_capacity_bytes)

    def memory_per_chip(self, parallelism: ParallelismConfig, batch_size: int) -> float:
        """Estimate the per-chip HBM footprint in bytes."""
        return self.memory_fn(parallelism, batch_size)

    def build_graph(
        self,
        batch_size: int | None = None,
        parallelism: ParallelismConfig | None = None,
    ) -> OperatorGraph:
        """Build the per-chip operator graph."""
        batch = batch_size if batch_size is not None else self.default_batch_size
        parallelism = parallelism or ParallelismConfig()
        return self.builder(batch, parallelism)

    def build_table(
        self,
        batch_size: int | None = None,
        parallelism: ParallelismConfig | None = None,
    ) -> GraphTable:
        """Build the per-chip graph in columnar (:class:`GraphTable`) form.

        Uses the workload family's array-native builder when one is
        registered (bit-identical to the object builder by contract);
        otherwise falls back to extracting the object graph's columns.
        """
        batch = batch_size if batch_size is not None else self.default_batch_size
        parallelism = parallelism or ParallelismConfig()
        if self.table_builder is not None:
            return self.table_builder(batch, parallelism)
        return GraphTable.from_graph(self.builder(batch, parallelism))


def _llm_spec(model: str, phase: WorkloadPhase, batch: int, chips: int) -> WorkloadSpec:
    cfg = llm.get_llama_config(model)

    def build(batch_size: int, parallelism: ParallelismConfig) -> OperatorGraph:
        if phase is WorkloadPhase.TRAINING:
            return llm.build_training_graph(cfg, batch_size, 4096, parallelism)
        if phase is WorkloadPhase.PREFILL:
            return llm.build_prefill_graph(cfg, batch_size, 4096, parallelism)
        return llm.build_decode_graph(cfg, batch_size, 4096, 512, parallelism)

    def build_table(batch_size: int, parallelism: ParallelismConfig) -> GraphTable:
        if phase is WorkloadPhase.TRAINING:
            return llm.build_training_table(cfg, batch_size, 4096, parallelism)
        if phase is WorkloadPhase.PREFILL:
            return llm.build_prefill_table(cfg, batch_size, 4096, parallelism)
        return llm.build_decode_table(cfg, batch_size, 4096, 512, parallelism)

    def memory(parallelism: ParallelismConfig, batch_size: int) -> float:
        return llm.memory_per_chip_bytes(cfg, phase, parallelism, batch_size, 4096)

    def pick(num_chips: int, hbm_bytes: float) -> ParallelismConfig:
        return llm_parallelism(model, phase, num_chips, hbm_bytes)

    return WorkloadSpec(
        name=f"{model}-{phase.value}",
        model=model,
        phase=phase,
        family="llm",
        default_batch_size=batch,
        default_num_chips=chips,
        builder=build,
        parallelism_fn=pick,
        memory_fn=memory,
        table_builder=build_table,
    )


def _dlrm_spec(model: str, batch: int, chips: int) -> WorkloadSpec:
    cfg = dlrm.get_dlrm_config(model)

    def build(batch_size: int, parallelism: ParallelismConfig) -> OperatorGraph:
        return dlrm.build_dlrm_graph(cfg, batch_size, parallelism)

    def build_table(batch_size: int, parallelism: ParallelismConfig) -> GraphTable:
        return dlrm.build_dlrm_table(cfg, batch_size, parallelism)

    def memory(parallelism: ParallelismConfig, batch_size: int) -> float:
        return dlrm.memory_per_chip_bytes(cfg, parallelism, batch_size)

    def pick(num_chips: int, hbm_bytes: float) -> ParallelismConfig:
        return flat_data_parallelism(num_chips)

    return WorkloadSpec(
        name=f"{model}-inference",
        model=model,
        phase=WorkloadPhase.INFERENCE,
        family="dlrm",
        default_batch_size=batch,
        default_num_chips=chips,
        builder=build,
        parallelism_fn=pick,
        memory_fn=memory,
        table_builder=build_table,
    )


def _diffusion_spec(model: str, batch: int, chips: int) -> WorkloadSpec:
    if model == "dit-xl":
        def build(batch_size: int, parallelism: ParallelismConfig) -> OperatorGraph:
            return diffusion.build_dit_graph(batch_size, parallelism)

        def build_table(batch_size: int, parallelism: ParallelismConfig) -> GraphTable:
            return diffusion.build_dit_table(batch_size, parallelism)
    else:
        def build(batch_size: int, parallelism: ParallelismConfig) -> OperatorGraph:
            return diffusion.build_gligen_graph(batch_size, parallelism)

        def build_table(batch_size: int, parallelism: ParallelismConfig) -> GraphTable:
            return diffusion.build_gligen_table(batch_size, parallelism)

    def memory(parallelism: ParallelismConfig, batch_size: int) -> float:
        # Diffusion models have small weights (< 4 GB); activations per
        # locally processed image dominate.
        local_batch = max(1, batch_size // parallelism.num_chips)
        return 4e9 + local_batch * 64e6

    def pick(num_chips: int, hbm_bytes: float) -> ParallelismConfig:
        return flat_data_parallelism(num_chips)

    return WorkloadSpec(
        name=f"{model}-inference",
        model=model,
        phase=WorkloadPhase.INFERENCE,
        family="diffusion",
        default_batch_size=batch,
        default_num_chips=chips,
        builder=build,
        parallelism_fn=pick,
        memory_fn=memory,
        table_builder=build_table,
    )


# Default chip counts and batch sizes (NPU-D pods), in the spirit of
# Table 4 of the paper.  The Table 4 benchmark regenerates these choices
# with the SLO search in :mod:`repro.core.slo`.
_SPECS: dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    _SPECS[spec.name] = spec


for _model, _train, _prefill, _decode in (
    # (model, (chips, batch) training, prefill, decode)
    ("llama3-8b", (4, 32), (1, 4), (1, 8)),
    ("llama2-13b", (4, 32), (1, 4), (1, 4)),
    ("llama3-70b", (8, 32), (4, 8), (8, 256)),
    ("llama3.1-405b", (16, 32), (16, 16), (16, 256)),
):
    _register(_llm_spec(_model, WorkloadPhase.TRAINING, _train[1], _train[0]))
    _register(_llm_spec(_model, WorkloadPhase.PREFILL, _prefill[1], _prefill[0]))
    _register(_llm_spec(_model, WorkloadPhase.DECODE, _decode[1], _decode[0]))

for _model in ("dlrm-s", "dlrm-m", "dlrm-l"):
    _register(_dlrm_spec(_model, batch=4096, chips=8))

_register(_diffusion_spec("dit-xl", batch=8192, chips=64))
_register(_diffusion_spec("gligen", batch=256, chips=64))


_ALIASES = {
    "llama3-8b-inference-prefill": "llama3-8b-prefill",
    "llama3-8b-inference-decode": "llama3-8b-decode",
    "dlrm-s": "dlrm-s-inference",
    "dlrm-m": "dlrm-m-inference",
    "dlrm-l": "dlrm-l-inference",
    "dit-xl": "dit-xl-inference",
    "gligen": "gligen-inference",
}


def list_workloads() -> list[str]:
    """Names of all registered workloads."""
    return list(_SPECS)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by name (case-insensitive, alias-aware)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _SPECS:
        raise KeyError(f"unknown workload {name!r}; available: {', '.join(_SPECS)}")
    return _SPECS[key]


def workloads_by_family(family: str) -> list[WorkloadSpec]:
    """All workloads of one family ('llm', 'dlrm' or 'diffusion')."""
    return [spec for spec in _SPECS.values() if spec.family == family]


__all__ = [
    "WorkloadSpec",
    "flat_data_parallelism",
    "get_workload",
    "list_workloads",
    "llm_parallelism",
    "workloads_by_family",
]
