"""Stable-diffusion workload generators (DiT-XL and GLIGEN).

The paper evaluates two text/label-to-image models at 512x512 resolution
(Table 1):

* **DiT-XL** — a pure transformer over latent patches.  Its attention
  head size (72) is smaller than the systolic array width (128), which is
  the paper's example of SA *spatial* underutilization (Figure 5).
* **GLIGEN** — a U-Net based model whose image size and attention head
  size shrink in deeper layers, again underutilizing the SA.

Both graphs cover the full denoising loop, so one iteration produces a
complete batch of images.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.workloads.base import (
    CollectiveKind,
    Operator,
    OperatorGraph,
    OpKind,
    ParallelismConfig,
    WorkloadPhase,
    collective_op,
    elementwise_op,
    matmul_op,
)
from repro.workloads.table import GraphTable, GraphTableBuilder


@dataclass(frozen=True)
class DiTConfig:
    """Diffusion-transformer hyper-parameters (DiT-XL/2 at 512x512)."""

    name: str = "dit-xl"
    image_size: int = 512
    latent_downsample: int = 8
    patch_size: int = 2
    hidden_dim: int = 1152
    num_layers: int = 28
    num_heads: int = 16
    mlp_ratio: float = 4.0
    denoising_steps: int = 50

    @property
    def latent_size(self) -> int:
        return self.image_size // self.latent_downsample

    @property
    def num_tokens(self) -> int:
        return (self.latent_size // self.patch_size) ** 2

    @property
    def head_dim(self) -> int:
        return self.hidden_dim // self.num_heads

    @property
    def ffn_dim(self) -> int:
        return int(self.hidden_dim * self.mlp_ratio)


@dataclass(frozen=True)
class UNetStage:
    """One resolution level of a U-Net."""

    channels: int
    spatial: int
    num_resblocks: int
    has_attention: bool
    num_heads: int = 8


@dataclass(frozen=True)
class GLIGENConfig:
    """GLIGEN (Stable-Diffusion U-Net with gated attention) parameters."""

    name: str = "gligen"
    image_size: int = 512
    latent_downsample: int = 8
    context_len: int = 77
    context_dim: int = 768
    denoising_steps: int = 50
    stages: tuple[UNetStage, ...] = (
        UNetStage(channels=320, spatial=64, num_resblocks=2, has_attention=True),
        UNetStage(channels=640, spatial=32, num_resblocks=2, has_attention=True),
        UNetStage(channels=1280, spatial=16, num_resblocks=2, has_attention=True),
        UNetStage(channels=1280, spatial=8, num_resblocks=2, has_attention=False),
    )


DIT_XL = DiTConfig()
GLIGEN = GLIGENConfig()


def _attention_ops(
    prefix: str,
    batch: int,
    tokens: int,
    hidden: int,
    num_heads: int,
    kv_tokens: int | None = None,
    kv_dim: int | None = None,
    count: int = 1,
) -> list[Operator]:
    """Self- or cross-attention block operators (per chip)."""
    kv_tokens = kv_tokens if kv_tokens is not None else tokens
    kv_dim = kv_dim if kv_dim is not None else hidden
    head_dim = hidden // num_heads
    ops: list[Operator] = [
        matmul_op(f"{prefix}_q_proj", m=batch * tokens, k=hidden, n=hidden, count=count),
        matmul_op(
            f"{prefix}_kv_proj", m=batch * kv_tokens, k=kv_dim, n=2 * hidden, count=count
        ),
        matmul_op(
            f"{prefix}_scores",
            m=tokens,
            k=head_dim,
            n=kv_tokens,
            count=count * batch * num_heads,
            read_weights=False,
            read_activations=False,
            write_output=False,
            vu_postprocess_flops_per_output=0.0,
            kind=OpKind.ATTENTION,
        ),
        elementwise_op(
            f"{prefix}_softmax",
            tokens * kv_tokens,
            flops_per_element=5.0,
            streams_hbm=False,
            kind=OpKind.SOFTMAX,
            count=count * batch * num_heads,
        ),
        matmul_op(
            f"{prefix}_av",
            m=tokens,
            k=kv_tokens,
            n=head_dim,
            count=count * batch * num_heads,
            read_weights=False,
            read_activations=False,
            write_output=False,
            vu_postprocess_flops_per_output=0.0,
            kind=OpKind.ATTENTION,
        ),
        matmul_op(f"{prefix}_out_proj", m=batch * tokens, k=hidden, n=hidden, count=count),
    ]
    return ops


def build_dit_graph(
    batch_size: int = 8192,
    parallelism: ParallelismConfig | None = None,
    config: DiTConfig = DIT_XL,
) -> OperatorGraph:
    """Operator graph for generating one batch of DiT-XL images (one chip)."""
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.num_chips)
    cfg = config
    tokens = cfg.num_tokens
    d = cfg.hidden_dim

    graph = OperatorGraph(
        name=f"{cfg.name}-inference",
        phase=WorkloadPhase.INFERENCE,
        parallelism=parallelism,
        iteration_unit="image",
        work_per_iteration=float(batch_size),
        model_name=cfg.name,
        batch_size=batch_size,
    )
    steps = cfg.denoising_steps
    graph.add(
        matmul_op(
            "patch_embed",
            m=local_batch * tokens,
            k=cfg.patch_size**2 * 4,
            n=d,
            count=steps,
        )
    )
    per_layer: list[Operator] = []
    per_layer.append(
        elementwise_op(
            "adaln_modulation", local_batch * tokens * d, flops_per_element=6.0,
            kind=OpKind.LAYERNORM,
        )
    )
    per_layer.extend(
        _attention_ops("dit_attn", local_batch, tokens, d, cfg.num_heads)
    )
    per_layer.append(
        matmul_op("dit_mlp_fc1", m=local_batch * tokens, k=d, n=cfg.ffn_dim)
    )
    per_layer.append(
        elementwise_op("dit_gelu", local_batch * tokens * cfg.ffn_dim,
                       flops_per_element=4.0, streams_hbm=False)
    )
    per_layer.append(
        matmul_op("dit_mlp_fc2", m=local_batch * tokens, k=cfg.ffn_dim, n=d)
    )
    for op in per_layer:
        graph.add(op.scaled_counts(cfg.num_layers * steps))
    graph.add(
        matmul_op(
            "final_linear",
            m=local_batch * tokens,
            k=d,
            n=cfg.patch_size**2 * 8,
            count=steps,
        )
    )
    graph.add(
        elementwise_op(
            "scheduler_step",
            local_batch * cfg.latent_size**2 * 4,
            flops_per_element=8.0,
            count=steps,
        )
    )
    graph.validate()
    return graph


def build_gligen_graph(
    batch_size: int = 256,
    parallelism: ParallelismConfig | None = None,
    config: GLIGENConfig = GLIGEN,
) -> OperatorGraph:
    """Operator graph for generating one batch of GLIGEN images (one chip)."""
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.num_chips)
    cfg = config

    graph = OperatorGraph(
        name=f"{cfg.name}-inference",
        phase=WorkloadPhase.INFERENCE,
        parallelism=parallelism,
        iteration_unit="image",
        work_per_iteration=float(batch_size),
        model_name=cfg.name,
        batch_size=batch_size,
    )
    steps = cfg.denoising_steps
    # The U-Net is traversed down and up: each stage is visited twice.
    for direction in ("down", "up"):
        for stage_index, stage in enumerate(cfg.stages):
            prefix = f"{direction}{stage_index}"
            tokens = stage.spatial**2
            channels = stage.channels
            for block in range(stage.num_resblocks):
                # ResNet block: two 3x3 convolutions lowered to matmuls
                # (im2col), plus group norm and SiLU on the vector units.
                graph.add(
                    elementwise_op(
                        f"{prefix}_groupnorm{block}",
                        local_batch * tokens * channels,
                        flops_per_element=8.0,
                        kind=OpKind.LAYERNORM,
                        count=steps,
                    )
                )
                for conv in range(2):
                    graph.add(
                        matmul_op(
                            f"{prefix}_resblock{block}_conv{conv}",
                            m=local_batch * tokens,
                            k=channels * 9,
                            n=channels,
                            count=steps,
                            kind=OpKind.CONV,
                        )
                    )
                graph.add(
                    elementwise_op(
                        f"{prefix}_silu{block}",
                        local_batch * tokens * channels,
                        flops_per_element=4.0,
                        streams_hbm=False,
                        count=steps,
                    )
                )
            if stage.has_attention:
                for op in _attention_ops(
                    f"{prefix}_selfattn",
                    local_batch,
                    tokens,
                    channels,
                    stage.num_heads,
                    count=steps,
                ):
                    graph.add(op)
                for op in _attention_ops(
                    f"{prefix}_crossattn",
                    local_batch,
                    tokens,
                    channels,
                    stage.num_heads,
                    kv_tokens=cfg.context_len,
                    kv_dim=cfg.context_dim,
                    count=steps,
                ):
                    graph.add(op)
                # GLIGEN's gated self-attention over grounding tokens.
                for op in _attention_ops(
                    f"{prefix}_gatedattn",
                    local_batch,
                    tokens,
                    channels,
                    stage.num_heads,
                    kv_tokens=30,
                    kv_dim=channels,
                    count=steps,
                ):
                    graph.add(op)
    graph.add(
        elementwise_op(
            "scheduler_step",
            local_batch * (cfg.image_size // cfg.latent_downsample) ** 2 * 4,
            flops_per_element=8.0,
            count=steps,
        )
    )
    graph.validate()
    return graph


# ---------------------------------------------------------------------- #
# Columnar (GraphTable) builders
# ---------------------------------------------------------------------- #
def _attention_rows(
    builder: GraphTableBuilder,
    prefix: str,
    batch: int,
    tokens: int,
    hidden: int,
    num_heads: int,
    kv_tokens: int | None = None,
    kv_dim: int | None = None,
    count: int = 1,
) -> None:
    """Row counterpart of :func:`_attention_ops`."""
    kv_tokens = kv_tokens if kv_tokens is not None else tokens
    kv_dim = kv_dim if kv_dim is not None else hidden
    head_dim = hidden // num_heads
    builder.matmul(
        f"{prefix}_q_proj", m=batch * tokens, k=hidden, n=hidden, count=count
    )
    builder.matmul(
        f"{prefix}_kv_proj", m=batch * kv_tokens, k=kv_dim, n=2 * hidden, count=count
    )
    builder.matmul(
        f"{prefix}_scores",
        m=tokens,
        k=head_dim,
        n=kv_tokens,
        count=count * batch * num_heads,
        read_weights=False,
        read_activations=False,
        write_output=False,
        vu_postprocess_flops_per_output=0.0,
        kind=OpKind.ATTENTION,
    )
    builder.elementwise(
        f"{prefix}_softmax",
        tokens * kv_tokens,
        flops_per_element=5.0,
        streams_hbm=False,
        kind=OpKind.SOFTMAX,
        count=count * batch * num_heads,
    )
    builder.matmul(
        f"{prefix}_av",
        m=tokens,
        k=kv_tokens,
        n=head_dim,
        count=count * batch * num_heads,
        read_weights=False,
        read_activations=False,
        write_output=False,
        vu_postprocess_flops_per_output=0.0,
        kind=OpKind.ATTENTION,
    )
    builder.matmul(
        f"{prefix}_out_proj", m=batch * tokens, k=hidden, n=hidden, count=count
    )


def build_dit_table(
    batch_size: int = 8192,
    parallelism: ParallelismConfig | None = None,
    config: DiTConfig = DIT_XL,
) -> GraphTable:
    """Columnar counterpart of :func:`build_dit_graph`.

    The per-layer block is built once and expanded to the whole
    ``num_layers x denoising_steps`` stack with one vectorized count
    multiply.
    """
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.num_chips)
    cfg = config
    tokens = cfg.num_tokens
    d = cfg.hidden_dim
    steps = cfg.denoising_steps

    prologue = GraphTableBuilder("prologue", WorkloadPhase.INFERENCE)
    prologue.matmul(
        "patch_embed",
        m=local_batch * tokens,
        k=cfg.patch_size**2 * 4,
        n=d,
        count=steps,
    )
    layer = GraphTableBuilder("layer", WorkloadPhase.INFERENCE)
    layer.elementwise(
        "adaln_modulation",
        local_batch * tokens * d,
        flops_per_element=6.0,
        kind=OpKind.LAYERNORM,
    )
    _attention_rows(layer, "dit_attn", local_batch, tokens, d, cfg.num_heads)
    layer.matmul("dit_mlp_fc1", m=local_batch * tokens, k=d, n=cfg.ffn_dim)
    layer.elementwise(
        "dit_gelu",
        local_batch * tokens * cfg.ffn_dim,
        flops_per_element=4.0,
        streams_hbm=False,
    )
    layer.matmul("dit_mlp_fc2", m=local_batch * tokens, k=cfg.ffn_dim, n=d)
    epilogue = GraphTableBuilder("epilogue", WorkloadPhase.INFERENCE)
    epilogue.matmul(
        "final_linear",
        m=local_batch * tokens,
        k=d,
        n=cfg.patch_size**2 * 8,
        count=steps,
    )
    epilogue.elementwise(
        "scheduler_step",
        local_batch * cfg.latent_size**2 * 4,
        flops_per_element=8.0,
        count=steps,
    )
    table = GraphTable.concat(
        [
            prologue.build(),
            layer.build().scaled_counts(cfg.num_layers * steps),
            epilogue.build(),
        ],
        name=f"{cfg.name}-inference",
        phase=WorkloadPhase.INFERENCE,
        parallelism=parallelism,
        iteration_unit="image",
        work_per_iteration=float(batch_size),
        model_name=cfg.name,
        batch_size=batch_size,
    )
    table.validate()
    return table


def build_gligen_table(
    batch_size: int = 256,
    parallelism: ParallelismConfig | None = None,
    config: GLIGENConfig = GLIGEN,
) -> GraphTable:
    """Columnar counterpart of :func:`build_gligen_graph`.

    Each U-Net stage is built once as a per-step segment (count 1) and
    expanded to the full denoising loop with one vectorized count
    multiply; the "up" traversal reuses the "down" stage arrays with
    renamed rows instead of recomputing them.
    """
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.num_chips)
    cfg = config
    steps = cfg.denoising_steps

    def stage_segment(prefix: str, stage: UNetStage) -> GraphTable:
        seg = GraphTableBuilder(prefix, WorkloadPhase.INFERENCE)
        tokens = stage.spatial**2
        channels = stage.channels
        for block in range(stage.num_resblocks):
            seg.elementwise(
                f"{prefix}_groupnorm{block}",
                local_batch * tokens * channels,
                flops_per_element=8.0,
                kind=OpKind.LAYERNORM,
            )
            for conv in range(2):
                seg.matmul(
                    f"{prefix}_resblock{block}_conv{conv}",
                    m=local_batch * tokens,
                    k=channels * 9,
                    n=channels,
                    kind=OpKind.CONV,
                )
            seg.elementwise(
                f"{prefix}_silu{block}",
                local_batch * tokens * channels,
                flops_per_element=4.0,
                streams_hbm=False,
            )
        if stage.has_attention:
            _attention_rows(
                seg, f"{prefix}_selfattn", local_batch, tokens, channels,
                stage.num_heads,
            )
            _attention_rows(
                seg, f"{prefix}_crossattn", local_batch, tokens, channels,
                stage.num_heads, kv_tokens=cfg.context_len, kv_dim=cfg.context_dim,
            )
            _attention_rows(
                seg, f"{prefix}_gatedattn", local_batch, tokens, channels,
                stage.num_heads, kv_tokens=30, kv_dim=channels,
            )
        return seg.build()

    # The U-Net is traversed down and up: each stage is visited twice
    # with identical numeric columns and direction-prefixed names.
    segments: list[GraphTable] = []
    down_segments = [
        stage_segment(f"down{index}", stage) for index, stage in enumerate(cfg.stages)
    ]
    segments.extend(down_segments)
    for index, down in enumerate(down_segments):
        up_prefix = f"up{index}"
        down_prefix = f"down{index}"
        segments.append(
            down.replace(
                names=[up_prefix + name[len(down_prefix):] for name in down.names]
            )
        )
    epilogue = GraphTableBuilder("epilogue", WorkloadPhase.INFERENCE)
    epilogue.elementwise(
        "scheduler_step",
        local_batch * (cfg.image_size // cfg.latent_downsample) ** 2 * 4,
        flops_per_element=8.0,
    )
    segments.append(epilogue.build())
    table = GraphTable.concat(
        [segment.scaled_counts(steps) for segment in segments],
        name=f"{cfg.name}-inference",
        phase=WorkloadPhase.INFERENCE,
        parallelism=parallelism,
        iteration_unit="image",
        work_per_iteration=float(batch_size),
        model_name=cfg.name,
        batch_size=batch_size,
    )
    table.validate()
    return table


__all__ = [
    "DIT_XL",
    "DiTConfig",
    "GLIGEN",
    "GLIGENConfig",
    "UNetStage",
    "build_dit_graph",
    "build_dit_table",
    "build_gligen_graph",
    "build_gligen_table",
]
