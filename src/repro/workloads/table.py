"""Columnar (structure-of-arrays) operator-graph IR.

:class:`GraphTable` is the array-native counterpart of
:class:`~repro.workloads.base.OperatorGraph`: one aligned ``float64``
array per operator quantity (FLOPs, HBM/ICI traffic, matmul dimensions,
repeat counts) plus small integer code columns for the operator kind and
collective pattern.  The workload builders emit it directly — a layer
stack is one small segment whose ``count`` column is scaled by the
number of layers in a single vectorized multiply, and a backward pass is
an array transform of the forward segment — so the compiler frontend
(fusion, tiling, batch simulation) never materializes per-operator
Python objects on the fast path.

**Bit-for-bit equivalence with the object builders is a hard
contract** (the same contract :mod:`repro.simulator.columnar` upholds
against the object-path simulator): the scalar expressions of
:func:`~repro.workloads.base.matmul_op`,
:func:`~repro.workloads.base.elementwise_op` and
:func:`~repro.workloads.base.collective_op` are mirrored
operation-for-operation by :class:`GraphTableBuilder`'s row helpers, and
``tests/test_graph_table.py`` asserts exact column equality against
``GraphTable.from_graph(<object builder output>)`` for every registry
workload.

The object path remains fully supported: :meth:`GraphTable.to_graph`
materializes the equivalent :class:`OperatorGraph` eagerly, and
:meth:`GraphTable.lazy_graph` defers operator construction until
somebody actually walks ``graph.operators`` (the oracle/compat path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.base import (
    CollectiveKind,
    MatmulDims,
    Operator,
    OperatorGraph,
    OpKind,
    ParallelismConfig,
    WorkloadPhase,
)

#: Stable integer codes for the enum-valued columns.
KIND_LIST: tuple[OpKind, ...] = tuple(OpKind)
KIND_CODE: dict[OpKind, int] = {kind: code for code, kind in enumerate(KIND_LIST)}
COLLECTIVE_LIST: tuple[CollectiveKind, ...] = tuple(CollectiveKind)
COLLECTIVE_CODE: dict[CollectiveKind, int] = {
    kind: code for code, kind in enumerate(COLLECTIVE_LIST)
}
#: ``collective`` column value for operators without a collective kind.
NO_COLLECTIVE = -1

_USES_SA_CODES = tuple(KIND_CODE[k] for k in KIND_LIST if k.uses_sa)
_COLLECTIVE_KIND_CODE = KIND_CODE[OpKind.COLLECTIVE]
_PTP_CODES = (
    COLLECTIVE_CODE[CollectiveKind.ALL_TO_ALL],
    COLLECTIVE_CODE[CollectiveKind.SEND_RECV],
)


class LazyList(list):
    """A list whose contents are produced by a builder on first access.

    Used for the compat surfaces of the columnar frontend (operator
    lists, operator-profile lists): the cold fast path never touches
    them, so their construction is deferred until somebody does.
    Materialization yields exactly the objects the eager path would have
    built.
    """

    __slots__ = ("_builder",)

    def __init__(self, builder=None):
        super().__init__()
        self._builder = builder

    @property
    def pending(self) -> bool:
        """Whether the list is still an unmaterialized placeholder."""
        return self._builder is not None

    def _materialize(self) -> None:
        builder, self._builder = self._builder, None
        if builder is not None:
            super().extend(builder())

    def __reduce__(self):
        # The builder is a process-local closure, so pickling
        # materializes and ships a plain list: the receiving process
        # gets exactly the items the eager path would have built (the
        # shared-cache profile store relies on this).
        return (list, (list(self),))

    def _make_accessor(name):  # noqa: N805 - class-body helper
        def accessor(self, *args, **kwargs):
            self._materialize()
            return getattr(super(LazyList, self), name)(*args, **kwargs)

        accessor.__name__ = name
        return accessor

    for _name in (
        "__len__", "__iter__", "__getitem__", "__setitem__", "__delitem__",
        "__contains__", "__reversed__", "__eq__", "__ne__", "__add__",
        "__iadd__", "__mul__", "__imul__", "__repr__", "append", "extend",
        "insert", "remove", "pop", "clear", "index", "count", "copy",
        "sort", "reverse",
    ):
        locals()[_name] = _make_accessor(_name)
    del _name, _make_accessor


def _as_float(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


@dataclass(eq=False)
class GraphTable:
    """Aligned per-operator arrays of one workload graph.

    All numeric columns are ``float64`` (counts and matmul dimensions
    are integer-valued but stay exact well past any realistic graph
    size); ``kind`` and ``collective`` hold the enum codes from
    :data:`KIND_CODE` / :data:`COLLECTIVE_CODE`
    (:data:`NO_COLLECTIVE` marks non-collective operators).  Operators
    without matmul dimensions hold the object path's ``1`` placeholder
    in ``dims_*`` with ``has_dims`` False.
    """

    name: str
    phase: WorkloadPhase
    names: list[str]
    kind: np.ndarray
    sa_flops: np.ndarray
    vu_flops: np.ndarray
    hbm_read_bytes: np.ndarray
    hbm_write_bytes: np.ndarray
    ici_bytes: np.ndarray
    collective: np.ndarray
    dims_m: np.ndarray
    dims_k: np.ndarray
    dims_n: np.ndarray
    has_dims: np.ndarray
    count: np.ndarray
    fusable: np.ndarray
    dtype_bytes: np.ndarray
    parallelism: ParallelismConfig = field(default_factory=ParallelismConfig)
    iteration_unit: str = "iteration"
    work_per_iteration: float = 1.0
    model_name: str = ""
    batch_size: int = 1

    # -- shape / metadata ------------------------------------------------ #
    @property
    def n_ops(self) -> int:
        return len(self.names)

    def __len__(self) -> int:
        return self.n_ops

    @property
    def num_chips(self) -> int:
        return self.parallelism.num_chips

    # -- derived masks (cached) ------------------------------------------ #
    @property
    def uses_sa(self) -> np.ndarray:
        """Mask of operators whose kind can map onto the systolic arrays."""
        cached = self.__dict__.get("_uses_sa")
        if cached is None:
            kind = self.kind
            cached = kind == _USES_SA_CODES[0]
            for code in _USES_SA_CODES[1:]:
                cached = cached | (kind == code)
            self.__dict__["_uses_sa"] = cached
        return cached

    @property
    def is_collective(self) -> np.ndarray:
        cached = self.__dict__.get("_is_collective")
        if cached is None:
            cached = self.kind == _COLLECTIVE_KIND_CODE
            self.__dict__["_is_collective"] = cached
        return cached

    @property
    def is_ptp(self) -> np.ndarray:
        """Point-to-point collectives (all-to-all, send/recv)."""
        cached = self.__dict__.get("_is_ptp")
        if cached is None:
            cached = (self.collective == _PTP_CODES[0]) | (
                self.collective == _PTP_CODES[1]
            )
            self.__dict__["_is_ptp"] = cached
        return cached

    @property
    def hbm_bytes(self) -> np.ndarray:
        """Per-operator ``read + write`` HBM traffic (cached)."""
        cached = self.__dict__.get("_hbm_bytes")
        if cached is None:
            cached = self.hbm_read_bytes + self.hbm_write_bytes
            self.__dict__["_hbm_bytes"] = cached
        return cached

    # -- aggregate conveniences (mirror OperatorGraph's totals) ---------- #
    @property
    def total_sa_flops(self) -> float:
        return float((self.sa_flops * self.count).cumsum()[-1]) if self.n_ops else 0.0

    @property
    def total_vu_flops(self) -> float:
        return float((self.vu_flops * self.count).cumsum()[-1]) if self.n_ops else 0.0

    @property
    def total_hbm_bytes(self) -> float:
        return float((self.hbm_bytes * self.count).cumsum()[-1]) if self.n_ops else 0.0

    @property
    def total_ici_bytes(self) -> float:
        return float((self.ici_bytes * self.count).cumsum()[-1]) if self.n_ops else 0.0

    @property
    def num_operator_invocations(self) -> int:
        return int(self.count.sum()) if self.n_ops else 0

    def validate(self) -> None:
        """Raise ``ValueError`` on the same structural errors as the graph."""
        if not self.n_ops:
            raise ValueError(f"graph {self.name!r} has no operators")
        if self.work_per_iteration <= 0:
            raise ValueError(f"graph {self.name!r} has non-positive work per iteration")

    # -- constructors ----------------------------------------------------- #
    @classmethod
    def from_graph(cls, graph: OperatorGraph) -> "GraphTable":
        """Extract the columns of an object-path :class:`OperatorGraph`."""
        ops = graph.operators
        raw = np.array(
            [
                (
                    op.count,
                    op.sa_flops,
                    op.vu_flops,
                    op.hbm_read_bytes,
                    op.hbm_write_bytes,
                    op.ici_bytes,
                    op.dtype_bytes,
                    op.fusable,
                    op.dims is not None,
                    1 if op.dims is None else op.dims.m,
                    1 if op.dims is None else op.dims.k,
                    1 if op.dims is None else op.dims.n,
                )
                for op in ops
            ],
            dtype=np.float64,
        ).reshape(len(ops), 12)
        kind = np.fromiter(
            (KIND_CODE[op.kind] for op in ops), dtype=np.int64, count=len(ops)
        )
        collective = np.fromiter(
            (
                NO_COLLECTIVE if op.collective is None else COLLECTIVE_CODE[op.collective]
                for op in ops
            ),
            dtype=np.int64,
            count=len(ops),
        )
        return cls(
            name=graph.name,
            phase=graph.phase,
            names=[op.name for op in ops],
            kind=kind,
            sa_flops=raw[:, 1],
            vu_flops=raw[:, 2],
            hbm_read_bytes=raw[:, 3],
            hbm_write_bytes=raw[:, 4],
            ici_bytes=raw[:, 5],
            collective=collective,
            dims_m=raw[:, 9],
            dims_k=raw[:, 10],
            dims_n=raw[:, 11],
            has_dims=raw[:, 8] != 0.0,
            count=raw[:, 0],
            fusable=raw[:, 7] != 0.0,
            dtype_bytes=raw[:, 6],
            parallelism=graph.parallelism,
            iteration_unit=graph.iteration_unit,
            work_per_iteration=graph.work_per_iteration,
            model_name=graph.model_name,
            batch_size=graph.batch_size,
        )

    # -- materialization -------------------------------------------------- #
    def to_operators(self) -> list[Operator]:
        """Materialize the equivalent object-path operator list."""
        kind = self.kind.tolist()
        collective = self.collective.tolist()
        sa = self.sa_flops.tolist()
        vu = self.vu_flops.tolist()
        read = self.hbm_read_bytes.tolist()
        write = self.hbm_write_bytes.tolist()
        ici = self.ici_bytes.tolist()
        m = self.dims_m.tolist()
        k = self.dims_k.tolist()
        n = self.dims_n.tolist()
        has_dims = self.has_dims.tolist()
        count = self.count.tolist()
        fusable = self.fusable.tolist()
        dtype_bytes = self.dtype_bytes.tolist()
        return [
            Operator(
                name=self.names[i],
                kind=KIND_LIST[kind[i]],
                sa_flops=sa[i],
                vu_flops=vu[i],
                hbm_read_bytes=read[i],
                hbm_write_bytes=write[i],
                ici_bytes=ici[i],
                collective=(
                    None
                    if collective[i] == NO_COLLECTIVE
                    else COLLECTIVE_LIST[collective[i]]
                ),
                dims=(
                    MatmulDims(m=int(m[i]), k=int(k[i]), n=int(n[i]))
                    if has_dims[i]
                    else None
                ),
                count=int(count[i]),
                fusable=fusable[i],
                dtype_bytes=int(dtype_bytes[i]),
            )
            for i in range(self.n_ops)
        ]

    def _graph_shell(self, operators: list) -> OperatorGraph:
        return OperatorGraph(
            name=self.name,
            phase=self.phase,
            operators=operators,
            parallelism=self.parallelism,
            iteration_unit=self.iteration_unit,
            work_per_iteration=self.work_per_iteration,
            model_name=self.model_name,
            batch_size=self.batch_size,
        )

    def to_graph(self) -> OperatorGraph:
        """Materialize the equivalent :class:`OperatorGraph` eagerly."""
        return self._graph_shell(self.to_operators())

    def lazy_graph(self) -> OperatorGraph:
        """An :class:`OperatorGraph` whose operator list materializes lazily.

        The graph's metadata (name, phase, parallelism, work accounting)
        is populated immediately; the per-operator objects are only
        built when ``graph.operators`` is actually walked.
        """
        return self._graph_shell(LazyList(self.to_operators))

    # -- vectorized stacking transforms ----------------------------------- #
    def scaled_counts(self, factor: int) -> "GraphTable":
        """A copy with every count multiplied by ``factor`` (layer stacking).

        The columnar analogue of calling
        :meth:`~repro.workloads.base.Operator.scaled_counts` on every
        operator of a layer segment: one vectorized multiply expands a
        per-layer segment to the whole stack.
        """
        table = GraphTable(**{**self._column_dict(), "count": self.count * factor})
        return table

    def _column_dict(self) -> dict:
        return {
            "name": self.name,
            "phase": self.phase,
            "names": self.names,
            "kind": self.kind,
            "sa_flops": self.sa_flops,
            "vu_flops": self.vu_flops,
            "hbm_read_bytes": self.hbm_read_bytes,
            "hbm_write_bytes": self.hbm_write_bytes,
            "ici_bytes": self.ici_bytes,
            "collective": self.collective,
            "dims_m": self.dims_m,
            "dims_k": self.dims_k,
            "dims_n": self.dims_n,
            "has_dims": self.has_dims,
            "count": self.count,
            "fusable": self.fusable,
            "dtype_bytes": self.dtype_bytes,
            "parallelism": self.parallelism,
            "iteration_unit": self.iteration_unit,
            "work_per_iteration": self.work_per_iteration,
            "model_name": self.model_name,
            "batch_size": self.batch_size,
        }

    def replace(self, **overrides) -> "GraphTable":
        """A copy with selected columns/metadata replaced."""
        return GraphTable(**{**self._column_dict(), **overrides})

    @classmethod
    def concat(cls, segments: list["GraphTable"], **metadata) -> "GraphTable":
        """Concatenate segments into one table (metadata from ``metadata``).

        Each segment contributes its rows in order; graph-level metadata
        (name, phase, parallelism, ...) comes from the keyword arguments
        with the first segment's values as defaults.
        """
        if not segments:
            raise ValueError("concat needs at least one segment")
        first = segments[0]
        columns = {
            "names": [name for seg in segments for name in seg.names],
            "kind": np.concatenate([seg.kind for seg in segments]),
            "sa_flops": np.concatenate([seg.sa_flops for seg in segments]),
            "vu_flops": np.concatenate([seg.vu_flops for seg in segments]),
            "hbm_read_bytes": np.concatenate(
                [seg.hbm_read_bytes for seg in segments]
            ),
            "hbm_write_bytes": np.concatenate(
                [seg.hbm_write_bytes for seg in segments]
            ),
            "ici_bytes": np.concatenate([seg.ici_bytes for seg in segments]),
            "collective": np.concatenate([seg.collective for seg in segments]),
            "dims_m": np.concatenate([seg.dims_m for seg in segments]),
            "dims_k": np.concatenate([seg.dims_k for seg in segments]),
            "dims_n": np.concatenate([seg.dims_n for seg in segments]),
            "has_dims": np.concatenate([seg.has_dims for seg in segments]),
            "count": np.concatenate([seg.count for seg in segments]),
            "fusable": np.concatenate([seg.fusable for seg in segments]),
            "dtype_bytes": np.concatenate([seg.dtype_bytes for seg in segments]),
        }
        meta = {
            "name": first.name,
            "phase": first.phase,
            "parallelism": first.parallelism,
            "iteration_unit": first.iteration_unit,
            "work_per_iteration": first.work_per_iteration,
            "model_name": first.model_name,
            "batch_size": first.batch_size,
        }
        meta.update(metadata)
        return cls(**columns, **meta)

    def columns_equal(self, other: "GraphTable") -> bool:
        """Exact (bit-for-bit) column and metadata equality."""
        return (
            self.names == other.names
            and bool(np.array_equal(self.kind, other.kind))
            and bool(np.array_equal(self.sa_flops, other.sa_flops))
            and bool(np.array_equal(self.vu_flops, other.vu_flops))
            and bool(np.array_equal(self.hbm_read_bytes, other.hbm_read_bytes))
            and bool(np.array_equal(self.hbm_write_bytes, other.hbm_write_bytes))
            and bool(np.array_equal(self.ici_bytes, other.ici_bytes))
            and bool(np.array_equal(self.collective, other.collective))
            and bool(np.array_equal(self.dims_m, other.dims_m))
            and bool(np.array_equal(self.dims_k, other.dims_k))
            and bool(np.array_equal(self.dims_n, other.dims_n))
            and bool(np.array_equal(self.has_dims, other.has_dims))
            and bool(np.array_equal(self.count, other.count))
            and bool(np.array_equal(self.fusable, other.fusable))
            and bool(np.array_equal(self.dtype_bytes, other.dtype_bytes))
            and self.name == other.name
            and self.phase == other.phase
            and self.parallelism == other.parallelism
            and self.iteration_unit == other.iteration_unit
            and self.work_per_iteration == other.work_per_iteration
            and self.model_name == other.model_name
            and self.batch_size == other.batch_size
        )


class GraphTableBuilder:
    """Row-append builder for :class:`GraphTable` segments.

    The ``matmul``/``elementwise``/``collective`` helpers replicate the
    scalar field expressions of the corresponding operator factories in
    :mod:`repro.workloads.base` **verbatim** — the equivalence suite
    holds the two implementations bit-identical.  Rows are buffered in
    plain Python lists (no per-operator objects, no dataclass
    validation) and converted to aligned arrays once by :meth:`build`.
    """

    def __init__(
        self,
        name: str,
        phase: WorkloadPhase,
        parallelism: ParallelismConfig | None = None,
        iteration_unit: str = "iteration",
        work_per_iteration: float = 1.0,
        model_name: str = "",
        batch_size: int = 1,
    ):
        self.name = name
        self.phase = phase
        self.parallelism = parallelism or ParallelismConfig()
        self.iteration_unit = iteration_unit
        self.work_per_iteration = work_per_iteration
        self.model_name = model_name
        self.batch_size = batch_size
        # One buffered list per row (transposed into columns by build());
        # field order: name, kind, sa, vu, read, write, ici, collective,
        # m, k, n, has_dims, count, fusable, dtype_bytes.
        self._rows: list[list] = []

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------ #
    def operator(
        self,
        name: str,
        kind: OpKind,
        sa_flops: float = 0.0,
        vu_flops: float = 0.0,
        hbm_read_bytes: float = 0.0,
        hbm_write_bytes: float = 0.0,
        ici_bytes: float = 0.0,
        collective: CollectiveKind | None = None,
        dims: tuple[int, int, int] | None = None,
        count: int = 1,
        fusable: bool = True,
        dtype_bytes: int = 2,
    ) -> int:
        """Append one raw operator row (mirrors ``Operator(...)``).

        Returns the row index (for :meth:`override`).  Performs the same
        validation as ``Operator.__post_init__``.
        """
        if count < 1:
            raise ValueError(f"operator {name!r} has count < 1")
        if (
            sa_flops < 0
            or vu_flops < 0
            or hbm_read_bytes < 0
            or hbm_write_bytes < 0
            or ici_bytes < 0
        ):
            for attr, value in (
                ("sa_flops", sa_flops),
                ("vu_flops", vu_flops),
                ("hbm_read_bytes", hbm_read_bytes),
                ("hbm_write_bytes", hbm_write_bytes),
                ("ici_bytes", ici_bytes),
            ):
                if value < 0:
                    raise ValueError(f"operator {name!r} has negative {attr}")
        if kind is OpKind.COLLECTIVE and collective is None:
            raise ValueError(f"collective operator {name!r} needs a CollectiveKind")
        if dims is None:
            m, k, n, has_dims = 1, 1, 1, False
        else:
            m, k, n = dims
            has_dims = True
        self._rows.append(
            [
                name,
                KIND_CODE[kind],
                sa_flops,
                vu_flops,
                hbm_read_bytes,
                hbm_write_bytes,
                ici_bytes,
                NO_COLLECTIVE if collective is None else COLLECTIVE_CODE[collective],
                m,
                k,
                n,
                has_dims,
                count,
                fusable,
                dtype_bytes,
            ]
        )
        return len(self._rows) - 1

    def matmul(
        self,
        name: str,
        m: int,
        k: int,
        n: int,
        dtype_bytes: int = 2,
        count: int = 1,
        read_weights: bool = True,
        read_activations: bool = True,
        write_output: bool = True,
        vu_postprocess_flops_per_output: float = 2.0,
        kind: OpKind = OpKind.MATMUL,
    ) -> int:
        """Row equivalent of :func:`repro.workloads.base.matmul_op`."""
        hbm_read = 0.0
        if read_activations:
            hbm_read += m * k * dtype_bytes
        if read_weights:
            hbm_read += k * n * dtype_bytes
        hbm_write = m * n * dtype_bytes if write_output else 0.0
        return self.operator(
            name=name,
            kind=kind,
            sa_flops=2.0 * m * k * n,
            vu_flops=vu_postprocess_flops_per_output * (m * n),
            hbm_read_bytes=hbm_read,
            hbm_write_bytes=hbm_write,
            dims=(m, k, n),
            count=count,
            dtype_bytes=dtype_bytes,
        )

    def elementwise(
        self,
        name: str,
        elements: float,
        flops_per_element: float = 1.0,
        read_factor: float = 1.0,
        write_factor: float = 1.0,
        dtype_bytes: int = 2,
        count: int = 1,
        kind: OpKind = OpKind.ELEMENTWISE,
        streams_hbm: bool = True,
    ) -> int:
        """Row equivalent of :func:`repro.workloads.base.elementwise_op`."""
        hbm_read = elements * dtype_bytes * read_factor if streams_hbm else 0.0
        hbm_write = elements * dtype_bytes * write_factor if streams_hbm else 0.0
        return self.operator(
            name=name,
            kind=kind,
            vu_flops=elements * flops_per_element,
            hbm_read_bytes=hbm_read,
            hbm_write_bytes=hbm_write,
            count=count,
            dtype_bytes=dtype_bytes,
        )

    def collective(
        self,
        name: str,
        kind: CollectiveKind,
        payload_bytes: float,
        num_chips: int,
        count: int = 1,
    ) -> int:
        """Row equivalent of :func:`repro.workloads.base.collective_op`."""
        if num_chips <= 1:
            wire_bytes = 0.0
        elif kind is CollectiveKind.ALL_REDUCE:
            wire_bytes = 2.0 * payload_bytes * (num_chips - 1) / num_chips
        elif kind in (CollectiveKind.ALL_GATHER, CollectiveKind.REDUCE_SCATTER):
            wire_bytes = payload_bytes * (num_chips - 1) / num_chips
        elif kind is CollectiveKind.ALL_TO_ALL:
            wire_bytes = payload_bytes * (num_chips - 1) / num_chips
        else:  # SEND_RECV
            wire_bytes = payload_bytes
        return self.operator(
            name=name,
            kind=OpKind.COLLECTIVE,
            collective=kind,
            ici_bytes=wire_bytes,
            hbm_read_bytes=payload_bytes,
            hbm_write_bytes=payload_bytes,
            vu_flops=payload_bytes / 2.0 if kind is CollectiveKind.ALL_REDUCE else 0.0,
            count=count,
        )

    #: Buffered-row offsets of the fields :meth:`override` may rewrite.
    _FIELD_OFFSETS = {
        "sa_flops": 2,
        "vu_flops": 3,
        "hbm_read_bytes": 4,
        "hbm_write_bytes": 5,
        "ici_bytes": 6,
        "count": 12,
    }

    def override(self, index: int, **fields) -> None:
        """Overwrite numeric fields of a buffered row (post-build edits).

        Mirrors the object builders assigning e.g.
        ``scores.hbm_read_bytes = ...`` after construction.
        """
        row = self._rows[index]
        for key, value in fields.items():
            row[self._FIELD_OFFSETS[key]] = value

    # ------------------------------------------------------------------ #
    def build(self) -> GraphTable:
        """Freeze the buffered rows into a :class:`GraphTable`."""
        (
            names, kind, sa_flops, vu_flops, hbm_read, hbm_write, ici,
            collective, dims_m, dims_k, dims_n, has_dims, count, fusable,
            dtype_bytes,
        ) = zip(*self._rows) if self._rows else ((),) * 15
        numeric = np.array(
            [sa_flops, vu_flops, hbm_read, hbm_write, ici,
             dims_m, dims_k, dims_n, count, dtype_bytes],
            dtype=np.float64,
        )
        return GraphTable(
            name=self.name,
            phase=self.phase,
            names=list(names),
            kind=np.asarray(kind, dtype=np.int64),
            sa_flops=numeric[0],
            vu_flops=numeric[1],
            hbm_read_bytes=numeric[2],
            hbm_write_bytes=numeric[3],
            ici_bytes=numeric[4],
            collective=np.asarray(collective, dtype=np.int64),
            dims_m=numeric[5],
            dims_k=numeric[6],
            dims_n=numeric[7],
            has_dims=np.asarray(has_dims, dtype=bool),
            count=numeric[8],
            fusable=np.asarray(fusable, dtype=bool),
            dtype_bytes=numeric[9],
            parallelism=self.parallelism,
            iteration_unit=self.iteration_unit,
            work_per_iteration=self.work_per_iteration,
            model_name=self.model_name,
            batch_size=self.batch_size,
        )


__all__ = [
    "COLLECTIVE_CODE",
    "COLLECTIVE_LIST",
    "GraphTable",
    "GraphTableBuilder",
    "KIND_CODE",
    "KIND_LIST",
    "LazyList",
    "NO_COLLECTIVE",
]
