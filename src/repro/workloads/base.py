"""Operator-level intermediate representation for NPU workloads.

A workload (one LLM layer stack, one DLRM request batch, one diffusion
denoising loop) is lowered into a flat sequence of :class:`Operator`
objects — the same tile-level granularity the paper's production
simulator uses.  Each operator records how much work it places on each
chip component: matrix FLOPs (systolic arrays), vector FLOPs (vector
units), HBM traffic, and ICI traffic for collectives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum


class OpKind(str, Enum):
    """Coarse classification of tensor operators."""

    MATMUL = "matmul"
    CONV = "conv"
    ATTENTION = "attention"
    ELEMENTWISE = "elementwise"
    SOFTMAX = "softmax"
    LAYERNORM = "layernorm"
    EMBEDDING = "embedding"
    OPTIMIZER = "optimizer"
    COLLECTIVE = "collective"
    DMA = "dma"

    @property
    def is_collective(self) -> bool:
        return self is OpKind.COLLECTIVE

    @property
    def uses_sa(self) -> bool:
        """Whether the operator class can be mapped onto systolic arrays."""
        return self in (OpKind.MATMUL, OpKind.CONV, OpKind.ATTENTION)


class CollectiveKind(str, Enum):
    """Inter-chip collective communication patterns."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_TO_ALL = "all_to_all"
    SEND_RECV = "send_recv"


class WorkloadPhase(str, Enum):
    """Execution phase of a workload (affects graph structure)."""

    TRAINING = "training"
    PREFILL = "prefill"
    DECODE = "decode"
    INFERENCE = "inference"


@dataclass(frozen=True)
class MatmulDims:
    """Logical dimensions of a matrix multiplication [M,K]x[K,N]->[M,N]."""

    m: int
    k: int
    n: int

    @property
    def flops(self) -> float:
        """FLOPs of the matmul (multiply + add counted separately)."""
        return 2.0 * self.m * self.k * self.n

    @property
    def output_elements(self) -> int:
        return self.m * self.n

    def scaled(self, m: float = 1.0, k: float = 1.0, n: float = 1.0) -> "MatmulDims":
        """Return a copy with dimensions scaled (used for sharding)."""
        return MatmulDims(
            m=max(1, int(round(self.m * m))),
            k=max(1, int(round(self.k * k))),
            n=max(1, int(round(self.n * n))),
        )


@dataclass(frozen=True)
class ParallelismConfig:
    """How a workload is partitioned across an NPU pod.

    ``data * tensor * pipeline`` must equal the number of chips.
    """

    data: int = 1
    tensor: int = 1
    pipeline: int = 1

    @property
    def num_chips(self) -> int:
        return self.data * self.tensor * self.pipeline

    def __post_init__(self) -> None:
        if self.data < 1 or self.tensor < 1 or self.pipeline < 1:
            raise ValueError("parallelism degrees must be >= 1")

    def describe(self) -> str:
        return f"dp={self.data} tp={self.tensor} pp={self.pipeline}"


@dataclass
class Operator:
    """One tensor operator executed on a single NPU chip.

    The quantities are *per chip, per invocation*; ``count`` tells the
    simulator how many times the operator repeats in one workload
    iteration (e.g. once per transformer layer or per denoising step).
    """

    name: str
    kind: OpKind
    sa_flops: float = 0.0
    vu_flops: float = 0.0
    hbm_read_bytes: float = 0.0
    hbm_write_bytes: float = 0.0
    ici_bytes: float = 0.0
    collective: CollectiveKind | None = None
    dims: MatmulDims | None = None
    count: int = 1
    fusable: bool = True
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"operator {self.name!r} has count < 1")
        for attr in ("sa_flops", "vu_flops", "hbm_read_bytes", "hbm_write_bytes", "ici_bytes"):
            if getattr(self, attr) < 0:
                raise ValueError(f"operator {self.name!r} has negative {attr}")
        if self.kind is OpKind.COLLECTIVE and self.collective is None:
            raise ValueError(f"collective operator {self.name!r} needs a CollectiveKind")

    # ------------------------------------------------------------------ #
    @property
    def hbm_bytes(self) -> float:
        """Total HBM traffic (read + write) of one invocation."""
        return self.hbm_read_bytes + self.hbm_write_bytes

    @property
    def total_flops(self) -> float:
        """Total FLOPs (matrix + vector) of one invocation."""
        return self.sa_flops + self.vu_flops

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of HBM traffic (infinity if no HBM traffic)."""
        if self.hbm_bytes == 0:
            return math.inf
        return self.total_flops / self.hbm_bytes

    def scaled_counts(self, factor: int) -> "Operator":
        """Return a copy whose ``count`` is multiplied by ``factor``."""
        clone = Operator(**{**self.__dict__})
        clone.count = self.count * factor
        return clone


@dataclass
class OperatorGraph:
    """A per-chip sequence of operators making up one workload iteration.

    ``iteration_unit`` names what one pass through the graph produces
    (one training step, one prefill request, one decoded token, ...);
    ``work_per_iteration`` quantifies it (e.g. tokens, images, requests)
    so energy-efficiency metrics can be expressed per unit of work.
    """

    name: str
    phase: WorkloadPhase
    operators: list[Operator] = field(default_factory=list)
    parallelism: ParallelismConfig = field(default_factory=ParallelismConfig)
    iteration_unit: str = "iteration"
    work_per_iteration: float = 1.0
    model_name: str = ""
    batch_size: int = 1

    def add(self, operator: Operator) -> None:
        """Append an operator to the graph."""
        self.operators.append(operator)

    def extend(self, operators: list[Operator]) -> None:
        """Append several operators to the graph."""
        self.operators.extend(operators)

    # ------------------------------------------------------------------ #
    @property
    def num_chips(self) -> int:
        return self.parallelism.num_chips

    @property
    def total_sa_flops(self) -> float:
        """Total matrix FLOPs per chip per iteration."""
        return sum(op.sa_flops * op.count for op in self.operators)

    @property
    def total_vu_flops(self) -> float:
        """Total vector FLOPs per chip per iteration."""
        return sum(op.vu_flops * op.count for op in self.operators)

    @property
    def total_hbm_bytes(self) -> float:
        """Total HBM traffic per chip per iteration."""
        return sum(op.hbm_bytes * op.count for op in self.operators)

    @property
    def total_ici_bytes(self) -> float:
        """Total ICI traffic per chip per iteration."""
        return sum(op.ici_bytes * op.count for op in self.operators)

    @property
    def num_operator_invocations(self) -> int:
        """Total number of operator executions per iteration."""
        return sum(op.count for op in self.operators)

    def collectives(self) -> list[Operator]:
        """All collective operators in the graph."""
        return [op for op in self.operators if op.kind is OpKind.COLLECTIVE]

    def validate(self) -> None:
        """Raise ``ValueError`` if the graph is structurally inconsistent."""
        if not self.operators:
            raise ValueError(f"graph {self.name!r} has no operators")
        if self.work_per_iteration <= 0:
            raise ValueError(f"graph {self.name!r} has non-positive work per iteration")


def elementwise_op(
    name: str,
    elements: float,
    flops_per_element: float = 1.0,
    read_factor: float = 1.0,
    write_factor: float = 1.0,
    dtype_bytes: int = 2,
    count: int = 1,
    kind: OpKind = OpKind.ELEMENTWISE,
    streams_hbm: bool = True,
) -> Operator:
    """Build a memory-streaming vector operator (activation, norm, ...).

    ``streams_hbm`` is False for operators fused into a producer whose
    output already lives in SRAM (no extra HBM traffic).
    """
    hbm_read = elements * dtype_bytes * read_factor if streams_hbm else 0.0
    hbm_write = elements * dtype_bytes * write_factor if streams_hbm else 0.0
    return Operator(
        name=name,
        kind=kind,
        vu_flops=elements * flops_per_element,
        hbm_read_bytes=hbm_read,
        hbm_write_bytes=hbm_write,
        count=count,
        dtype_bytes=dtype_bytes,
    )


def matmul_op(
    name: str,
    m: int,
    k: int,
    n: int,
    dtype_bytes: int = 2,
    count: int = 1,
    read_weights: bool = True,
    read_activations: bool = True,
    write_output: bool = True,
    vu_postprocess_flops_per_output: float = 2.0,
    kind: OpKind = OpKind.MATMUL,
) -> Operator:
    """Build a matrix-multiplication operator [M,K]x[K,N]->[M,N].

    HBM traffic assumes each tensor is moved once between HBM and SRAM
    (the tiling pass chooses tile sizes that achieve this reuse); the
    vector units post-process the SA output (bias add, activation).
    """
    dims = MatmulDims(m=m, k=k, n=n)
    hbm_read = 0.0
    if read_activations:
        hbm_read += m * k * dtype_bytes
    if read_weights:
        hbm_read += k * n * dtype_bytes
    hbm_write = m * n * dtype_bytes if write_output else 0.0
    return Operator(
        name=name,
        kind=kind,
        sa_flops=dims.flops,
        vu_flops=vu_postprocess_flops_per_output * dims.output_elements,
        hbm_read_bytes=hbm_read,
        hbm_write_bytes=hbm_write,
        dims=dims,
        count=count,
        dtype_bytes=dtype_bytes,
    )


def collective_op(
    name: str,
    kind: CollectiveKind,
    payload_bytes: float,
    num_chips: int,
    count: int = 1,
) -> Operator:
    """Build a collective operator with ring-algorithm traffic volume.

    ``payload_bytes`` is the logical tensor size per chip; the wire
    traffic per chip follows the standard ring formulas.
    """
    if num_chips <= 1:
        wire_bytes = 0.0
    elif kind is CollectiveKind.ALL_REDUCE:
        wire_bytes = 2.0 * payload_bytes * (num_chips - 1) / num_chips
    elif kind in (CollectiveKind.ALL_GATHER, CollectiveKind.REDUCE_SCATTER):
        wire_bytes = payload_bytes * (num_chips - 1) / num_chips
    elif kind is CollectiveKind.ALL_TO_ALL:
        wire_bytes = payload_bytes * (num_chips - 1) / num_chips
    else:  # SEND_RECV
        wire_bytes = payload_bytes
    # Collectives also touch HBM/SRAM to stage the payload.
    return Operator(
        name=name,
        kind=OpKind.COLLECTIVE,
        collective=kind,
        ici_bytes=wire_bytes,
        hbm_read_bytes=payload_bytes,
        hbm_write_bytes=payload_bytes,
        vu_flops=payload_bytes / 2.0 if kind is CollectiveKind.ALL_REDUCE else 0.0,
        count=count,
    )


__all__ = [
    "CollectiveKind",
    "MatmulDims",
    "Operator",
    "OperatorGraph",
    "OpKind",
    "ParallelismConfig",
    "WorkloadPhase",
    "collective_op",
    "elementwise_op",
    "matmul_op",
]
