"""Large language model workload generators (Llama family).

Builds per-chip operator graphs for the three LLM phases the paper
evaluates: training, inference prefill and inference decode (Table 1).
The generator applies the parallelism configuration (data / tensor /
pipeline) directly, emitting the corresponding collectives, which mirrors
how the paper's trace generator shards model graphs across an NPU pod.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.workloads.base import (
    CollectiveKind,
    Operator,
    OperatorGraph,
    OpKind,
    ParallelismConfig,
    WorkloadPhase,
    collective_op,
    elementwise_op,
    matmul_op,
)
from repro.workloads.table import GraphTable, GraphTableBuilder


@dataclass(frozen=True)
class LlamaConfig:
    """Architectural hyper-parameters of a Llama-style transformer."""

    name: str
    num_layers: int
    hidden_dim: int
    num_heads: int
    num_kv_heads: int
    head_dim: int
    ffn_dim: int
    vocab_size: int

    @property
    def attention_params(self) -> int:
        """Parameters of the attention projections in one layer."""
        qkv = self.hidden_dim * (self.num_heads + 2 * self.num_kv_heads) * self.head_dim
        out = self.num_heads * self.head_dim * self.hidden_dim
        return qkv + out

    @property
    def mlp_params(self) -> int:
        """Parameters of the gated MLP in one layer."""
        return 3 * self.hidden_dim * self.ffn_dim

    @property
    def params_per_layer(self) -> int:
        return self.attention_params + self.mlp_params

    @property
    def total_params(self) -> int:
        """Total parameter count (layers + embeddings/LM head)."""
        embeddings = 2 * self.vocab_size * self.hidden_dim
        return self.num_layers * self.params_per_layer + embeddings

    def kv_cache_bytes_per_token(self, dtype_bytes: int = 2) -> int:
        """KV-cache bytes stored per token across all layers."""
        return 2 * self.num_layers * self.num_kv_heads * self.head_dim * dtype_bytes


LLAMA_CONFIGS: dict[str, LlamaConfig] = {
    "llama3-8b": LlamaConfig("llama3-8b", 32, 4096, 32, 8, 128, 14336, 128256),
    "llama2-13b": LlamaConfig("llama2-13b", 40, 5120, 40, 40, 128, 13824, 32000),
    "llama3-70b": LlamaConfig("llama3-70b", 80, 8192, 64, 8, 128, 28672, 128256),
    "llama3.1-405b": LlamaConfig("llama3.1-405b", 126, 16384, 128, 8, 128, 53248, 128256),
}


def get_llama_config(name: str) -> LlamaConfig:
    """Look up a Llama configuration by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in LLAMA_CONFIGS:
        raise KeyError(f"unknown LLM {name!r}; available: {', '.join(LLAMA_CONFIGS)}")
    return LLAMA_CONFIGS[key]


# ---------------------------------------------------------------------- #
# Memory footprint (used by the parallelism search to prune configs)
# ---------------------------------------------------------------------- #
def weights_per_chip_bytes(
    cfg: LlamaConfig, parallelism: ParallelismConfig, dtype_bytes: int = 2
) -> float:
    """Model weight bytes resident on one chip."""
    layers_local = math.ceil(cfg.num_layers / parallelism.pipeline)
    layer_bytes = cfg.params_per_layer * dtype_bytes / parallelism.tensor
    embed_bytes = 2 * cfg.vocab_size * cfg.hidden_dim * dtype_bytes / parallelism.tensor
    return layers_local * layer_bytes + embed_bytes


def memory_per_chip_bytes(
    cfg: LlamaConfig,
    phase: WorkloadPhase,
    parallelism: ParallelismConfig,
    batch_size: int,
    seq_len: int,
    dtype_bytes: int = 2,
) -> float:
    """Total HBM footprint per chip (weights, optimizer state, activations, KV)."""
    weights = weights_per_chip_bytes(cfg, parallelism, dtype_bytes)
    local_batch = max(1, batch_size // parallelism.data)
    layers_local = math.ceil(cfg.num_layers / parallelism.pipeline)
    if phase is WorkloadPhase.TRAINING:
        # Training state assumes the memory optimizations any production
        # stack applies at these pod sizes (the paper's Table 4 trains
        # Llama3.1-405B on 16 chips): optimizer moments sharded across the
        # pod (ZeRO-style), gradients materialized layer-by-layer, and
        # activation checkpointing (roughly half of the layer inputs kept).
        gradients = 0.25 * weights
        optimizer = weights * 4.0 / max(1, parallelism.num_chips)
        activations = (
            0.5
            * local_batch
            * seq_len
            * cfg.hidden_dim
            * dtype_bytes
            * layers_local
            / parallelism.tensor
        )
        return weights + gradients + optimizer + activations
    kv_tokens = local_batch * seq_len
    kv_cache = (
        kv_tokens
        * cfg.kv_cache_bytes_per_token(dtype_bytes)
        * layers_local
        / cfg.num_layers
        / parallelism.tensor
    )
    if phase is WorkloadPhase.DECODE:
        # Decode activations are per generated token (a handful of
        # hidden-state buffers), not per context token.
        activations = local_batch * cfg.hidden_dim * dtype_bytes * 8
    else:
        activations = local_batch * seq_len * cfg.hidden_dim * dtype_bytes * 2
    return weights + kv_cache + activations


# ---------------------------------------------------------------------- #
# Graph builders
# ---------------------------------------------------------------------- #
def _transformer_layer_ops(
    cfg: LlamaConfig,
    tokens: int,
    kv_len: int,
    sequences: int,
    parallelism: ParallelismConfig,
    decode: bool,
    dtype_bytes: int = 2,
) -> list[Operator]:
    """Operators of one transformer layer on one chip.

    ``tokens`` is the number of query tokens processed on this chip,
    ``kv_len`` the key/value sequence length attended to, ``sequences``
    the number of independent sequences (for per-sequence attention).
    """
    tp = parallelism.tensor
    heads_local = max(1, cfg.num_heads // tp)
    kv_heads_local = max(1, cfg.num_kv_heads // tp)
    dh = cfg.head_dim
    d = cfg.hidden_dim
    f_local = max(1, cfg.ffn_dim // tp)
    qkv_out = (heads_local + 2 * kv_heads_local) * dh

    ops: list[Operator] = []
    ops.append(
        elementwise_op("attn_rmsnorm", tokens * d, flops_per_element=16.0, kind=OpKind.LAYERNORM)
    )
    ops.append(matmul_op("qkv_proj", m=tokens, k=d, n=qkv_out, dtype_bytes=dtype_bytes))
    ops.append(
        elementwise_op(
            "rope",
            tokens * (heads_local + kv_heads_local) * dh,
            flops_per_element=12.0,
            streams_hbm=False,
        )
    )
    if decode:
        # Append new K/V to the cache, then read the whole cache back.
        kv_write = tokens * 2 * kv_heads_local * dh * dtype_bytes
        kv_read = sequences * kv_len * 2 * kv_heads_local * dh * dtype_bytes
        ops.append(
            Operator(
                name="kv_cache_update",
                kind=OpKind.DMA,
                hbm_write_bytes=kv_write,
                count=1,
            )
        )
    else:
        kv_read = 0.0
    per_seq_tokens = max(1, tokens // max(1, sequences))
    # Attention scores and attention-weighted values.  Query heads that
    # share a KV head (grouped-query attention) are packed into the M
    # dimension of a single matmul, which is how production kernels keep
    # the systolic array from degenerating to one row per decode step.
    gqa_group = max(1, heads_local // kv_heads_local)
    attn_count = sequences * kv_heads_local
    attn_m = per_seq_tokens * gqa_group
    scores = matmul_op(
        "attn_scores",
        m=attn_m,
        k=dh,
        n=kv_len,
        dtype_bytes=dtype_bytes,
        count=attn_count,
        read_weights=False,
        read_activations=False,
        write_output=False,
        vu_postprocess_flops_per_output=0.0,
        kind=OpKind.ATTENTION,
    )
    if decode:
        scores.hbm_read_bytes = kv_read / (2.0 * attn_count)
    ops.append(scores)
    ops.append(
        elementwise_op(
            "attn_softmax",
            attn_m * kv_len,
            flops_per_element=10.0,
            streams_hbm=False,
            kind=OpKind.SOFTMAX,
            count=attn_count,
        )
    )
    av = matmul_op(
        "attn_av",
        m=attn_m,
        k=kv_len,
        n=dh,
        dtype_bytes=dtype_bytes,
        count=attn_count,
        read_weights=False,
        read_activations=False,
        write_output=False,
        vu_postprocess_flops_per_output=0.0,
        kind=OpKind.ATTENTION,
    )
    if decode:
        av.hbm_read_bytes = kv_read / (2.0 * attn_count)
    ops.append(av)
    ops.append(matmul_op("out_proj", m=tokens, k=heads_local * dh, n=d, dtype_bytes=dtype_bytes))
    if tp > 1:
        ops.append(
            collective_op(
                "attn_allreduce",
                CollectiveKind.ALL_REDUCE,
                payload_bytes=tokens * d * dtype_bytes,
                num_chips=tp,
            )
        )
    ops.append(elementwise_op("attn_residual", tokens * d, flops_per_element=2.0))
    ops.append(
        elementwise_op("mlp_rmsnorm", tokens * d, flops_per_element=16.0, kind=OpKind.LAYERNORM)
    )
    ops.append(matmul_op("gate_up_proj", m=tokens, k=d, n=2 * f_local, dtype_bytes=dtype_bytes))
    ops.append(
        elementwise_op("silu_mul", tokens * f_local, flops_per_element=8.0, streams_hbm=False)
    )
    ops.append(matmul_op("down_proj", m=tokens, k=f_local, n=d, dtype_bytes=dtype_bytes))
    if tp > 1:
        ops.append(
            collective_op(
                "mlp_allreduce",
                CollectiveKind.ALL_REDUCE,
                payload_bytes=tokens * d * dtype_bytes,
                num_chips=tp,
            )
        )
    ops.append(elementwise_op("mlp_residual", tokens * d, flops_per_element=2.0))
    return ops


def build_prefill_graph(
    model: str | LlamaConfig,
    batch_size: int = 1,
    seq_len: int = 4096,
    parallelism: ParallelismConfig | None = None,
) -> OperatorGraph:
    """Operator graph for one prefill pass (all layers, one chip)."""
    cfg = model if isinstance(model, LlamaConfig) else get_llama_config(model)
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.data)
    layers_local = math.ceil(cfg.num_layers / parallelism.pipeline)
    tokens = local_batch * seq_len

    graph = OperatorGraph(
        name=f"{cfg.name}-prefill",
        phase=WorkloadPhase.PREFILL,
        parallelism=parallelism,
        iteration_unit="token",
        work_per_iteration=float(batch_size * seq_len),
        model_name=cfg.name,
        batch_size=batch_size,
    )
    graph.add(
        Operator(
            name="embedding_lookup",
            kind=OpKind.EMBEDDING,
            hbm_read_bytes=tokens * cfg.hidden_dim * 2,
            hbm_write_bytes=tokens * cfg.hidden_dim * 2,
            vu_flops=tokens * cfg.hidden_dim,
        )
    )
    layer_ops = _transformer_layer_ops(
        cfg, tokens, seq_len, local_batch, parallelism, decode=False
    )
    for op in layer_ops:
        graph.add(op.scaled_counts(layers_local))
    if parallelism.pipeline > 1:
        graph.add(
            collective_op(
                "pipeline_send_recv",
                CollectiveKind.SEND_RECV,
                payload_bytes=tokens * cfg.hidden_dim * 2,
                num_chips=parallelism.pipeline,
                count=2,
            )
        )
    graph.add(
        matmul_op(
            "lm_head",
            m=local_batch,
            k=cfg.hidden_dim,
            n=max(1, cfg.vocab_size // parallelism.tensor),
        )
    )
    graph.validate()
    return graph


def build_decode_graph(
    model: str | LlamaConfig,
    batch_size: int = 1,
    context_len: int = 4096,
    output_len: int = 512,
    parallelism: ParallelismConfig | None = None,
) -> OperatorGraph:
    """Operator graph for decoding one token per sequence (one chip)."""
    cfg = model if isinstance(model, LlamaConfig) else get_llama_config(model)
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.data)
    layers_local = math.ceil(cfg.num_layers / parallelism.pipeline)
    # Average KV length over the generation of ``output_len`` tokens.
    kv_len = context_len + output_len // 2

    graph = OperatorGraph(
        name=f"{cfg.name}-decode",
        phase=WorkloadPhase.DECODE,
        parallelism=parallelism,
        iteration_unit="token",
        work_per_iteration=float(batch_size),
        model_name=cfg.name,
        batch_size=batch_size,
    )
    graph.add(
        Operator(
            name="embedding_lookup",
            kind=OpKind.EMBEDDING,
            hbm_read_bytes=local_batch * cfg.hidden_dim * 2,
            hbm_write_bytes=local_batch * cfg.hidden_dim * 2,
            vu_flops=local_batch * cfg.hidden_dim,
        )
    )
    layer_ops = _transformer_layer_ops(
        cfg, local_batch, kv_len, local_batch, parallelism, decode=True
    )
    for op in layer_ops:
        graph.add(op.scaled_counts(layers_local))
    if parallelism.pipeline > 1:
        graph.add(
            collective_op(
                "pipeline_send_recv",
                CollectiveKind.SEND_RECV,
                payload_bytes=local_batch * cfg.hidden_dim * 2,
                num_chips=parallelism.pipeline,
                count=2,
            )
        )
    graph.add(
        matmul_op(
            "lm_head",
            m=local_batch,
            k=cfg.hidden_dim,
            n=max(1, cfg.vocab_size // parallelism.tensor),
        )
    )
    graph.validate()
    return graph


def build_training_graph(
    model: str | LlamaConfig,
    batch_size: int = 32,
    seq_len: int = 4096,
    parallelism: ParallelismConfig | None = None,
) -> OperatorGraph:
    """Operator graph for one training step (forward + backward + update)."""
    cfg = model if isinstance(model, LlamaConfig) else get_llama_config(model)
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.data)
    layers_local = math.ceil(cfg.num_layers / parallelism.pipeline)
    tokens = local_batch * seq_len

    graph = OperatorGraph(
        name=f"{cfg.name}-training",
        phase=WorkloadPhase.TRAINING,
        parallelism=parallelism,
        iteration_unit="step",
        work_per_iteration=1.0,
        model_name=cfg.name,
        batch_size=batch_size,
    )
    forward_ops = _transformer_layer_ops(
        cfg, tokens, seq_len, local_batch, parallelism, decode=False
    )
    for op in forward_ops:
        graph.add(op.scaled_counts(layers_local))
    # Backward pass: activation gradients + weight gradients roughly double
    # the matmul work of the forward pass; vector work also doubles.
    for op in forward_ops:
        backward = Operator(
            name=f"{op.name}_bwd",
            kind=op.kind,
            sa_flops=2.0 * op.sa_flops,
            vu_flops=2.0 * op.vu_flops,
            hbm_read_bytes=2.0 * op.hbm_read_bytes,
            hbm_write_bytes=2.0 * op.hbm_write_bytes,
            ici_bytes=op.ici_bytes,
            collective=op.collective,
            dims=op.dims,
            count=op.count * layers_local,
            dtype_bytes=op.dtype_bytes,
        )
        graph.add(backward)
    params_local = (
        cfg.params_per_layer * layers_local / parallelism.tensor
        + 2 * cfg.vocab_size * cfg.hidden_dim / parallelism.tensor
    )
    if parallelism.data > 1:
        graph.add(
            collective_op(
                "grad_allreduce",
                CollectiveKind.ALL_REDUCE,
                payload_bytes=params_local * 2,
                num_chips=parallelism.data,
            )
        )
    if parallelism.pipeline > 1:
        graph.add(
            collective_op(
                "pipeline_send_recv",
                CollectiveKind.SEND_RECV,
                payload_bytes=tokens * cfg.hidden_dim * 2,
                num_chips=parallelism.pipeline,
                count=4,
            )
        )
    graph.add(
        Operator(
            name="optimizer_update",
            kind=OpKind.OPTIMIZER,
            vu_flops=params_local * 12.0,
            hbm_read_bytes=params_local * 14.0,
            hbm_write_bytes=params_local * 14.0,
        )
    )
    graph.validate()
    return graph


# ---------------------------------------------------------------------- #
# Columnar (GraphTable) builders
# ---------------------------------------------------------------------- #
# The table builders mirror the object builders above row for row: one
# transformer layer is built once as a small segment and expanded to the
# whole stack with a single vectorized count multiply, and the training
# backward pass is an array transform of the forward segment.  The
# equivalence suite asserts exact column equality against
# ``GraphTable.from_graph(<object builder output>)``.
def _transformer_layer_segment(
    cfg: LlamaConfig,
    tokens: int,
    kv_len: int,
    sequences: int,
    parallelism: ParallelismConfig,
    decode: bool,
    dtype_bytes: int = 2,
) -> GraphTable:
    """Columnar counterpart of :func:`_transformer_layer_ops`."""
    tp = parallelism.tensor
    heads_local = max(1, cfg.num_heads // tp)
    kv_heads_local = max(1, cfg.num_kv_heads // tp)
    dh = cfg.head_dim
    d = cfg.hidden_dim
    f_local = max(1, cfg.ffn_dim // tp)
    qkv_out = (heads_local + 2 * kv_heads_local) * dh

    seg = GraphTableBuilder("layer", WorkloadPhase.DECODE if decode else WorkloadPhase.PREFILL)
    seg.elementwise(
        "attn_rmsnorm", tokens * d, flops_per_element=16.0, kind=OpKind.LAYERNORM
    )
    seg.matmul("qkv_proj", m=tokens, k=d, n=qkv_out, dtype_bytes=dtype_bytes)
    seg.elementwise(
        "rope",
        tokens * (heads_local + kv_heads_local) * dh,
        flops_per_element=12.0,
        streams_hbm=False,
    )
    if decode:
        # Append new K/V to the cache, then read the whole cache back.
        kv_write = tokens * 2 * kv_heads_local * dh * dtype_bytes
        kv_read = sequences * kv_len * 2 * kv_heads_local * dh * dtype_bytes
        seg.operator(
            "kv_cache_update", OpKind.DMA, hbm_write_bytes=kv_write, count=1
        )
    else:
        kv_read = 0.0
    per_seq_tokens = max(1, tokens // max(1, sequences))
    gqa_group = max(1, heads_local // kv_heads_local)
    attn_count = sequences * kv_heads_local
    attn_m = per_seq_tokens * gqa_group
    scores = seg.matmul(
        "attn_scores",
        m=attn_m,
        k=dh,
        n=kv_len,
        dtype_bytes=dtype_bytes,
        count=attn_count,
        read_weights=False,
        read_activations=False,
        write_output=False,
        vu_postprocess_flops_per_output=0.0,
        kind=OpKind.ATTENTION,
    )
    if decode:
        seg.override(scores, hbm_read_bytes=kv_read / (2.0 * attn_count))
    seg.elementwise(
        "attn_softmax",
        attn_m * kv_len,
        flops_per_element=10.0,
        streams_hbm=False,
        kind=OpKind.SOFTMAX,
        count=attn_count,
    )
    av = seg.matmul(
        "attn_av",
        m=attn_m,
        k=kv_len,
        n=dh,
        dtype_bytes=dtype_bytes,
        count=attn_count,
        read_weights=False,
        read_activations=False,
        write_output=False,
        vu_postprocess_flops_per_output=0.0,
        kind=OpKind.ATTENTION,
    )
    if decode:
        seg.override(av, hbm_read_bytes=kv_read / (2.0 * attn_count))
    seg.matmul("out_proj", m=tokens, k=heads_local * dh, n=d, dtype_bytes=dtype_bytes)
    if tp > 1:
        seg.collective(
            "attn_allreduce",
            CollectiveKind.ALL_REDUCE,
            payload_bytes=tokens * d * dtype_bytes,
            num_chips=tp,
        )
    seg.elementwise("attn_residual", tokens * d, flops_per_element=2.0)
    seg.elementwise(
        "mlp_rmsnorm", tokens * d, flops_per_element=16.0, kind=OpKind.LAYERNORM
    )
    seg.matmul("gate_up_proj", m=tokens, k=d, n=2 * f_local, dtype_bytes=dtype_bytes)
    seg.elementwise(
        "silu_mul", tokens * f_local, flops_per_element=8.0, streams_hbm=False
    )
    seg.matmul("down_proj", m=tokens, k=f_local, n=d, dtype_bytes=dtype_bytes)
    if tp > 1:
        seg.collective(
            "mlp_allreduce",
            CollectiveKind.ALL_REDUCE,
            payload_bytes=tokens * d * dtype_bytes,
            num_chips=tp,
        )
    seg.elementwise("mlp_residual", tokens * d, flops_per_element=2.0)
    return seg.build()


def _backward_segment(forward: GraphTable, count_factor: int) -> GraphTable:
    """Array transform of a forward segment into its backward pass.

    Mirrors the object builder's per-operator loop (``2.0 *`` the
    compute and HBM traffic, counts scaled by the layer stack) as five
    vectorized multiplies.
    """
    return forward.replace(
        names=[f"{name}_bwd" for name in forward.names],
        sa_flops=2.0 * forward.sa_flops,
        vu_flops=2.0 * forward.vu_flops,
        hbm_read_bytes=2.0 * forward.hbm_read_bytes,
        hbm_write_bytes=2.0 * forward.hbm_write_bytes,
        count=forward.count * count_factor,
        # The object builder constructs backward operators without the
        # fusable flag, so they default to fusable.
        fusable=np.ones(forward.n_ops, dtype=bool),
    )


def build_prefill_table(
    model: str | LlamaConfig,
    batch_size: int = 1,
    seq_len: int = 4096,
    parallelism: ParallelismConfig | None = None,
) -> GraphTable:
    """Columnar counterpart of :func:`build_prefill_graph`."""
    cfg = model if isinstance(model, LlamaConfig) else get_llama_config(model)
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.data)
    layers_local = math.ceil(cfg.num_layers / parallelism.pipeline)
    tokens = local_batch * seq_len

    prologue = GraphTableBuilder("prologue", WorkloadPhase.PREFILL)
    prologue.operator(
        "embedding_lookup",
        OpKind.EMBEDDING,
        hbm_read_bytes=tokens * cfg.hidden_dim * 2,
        hbm_write_bytes=tokens * cfg.hidden_dim * 2,
        vu_flops=tokens * cfg.hidden_dim,
    )
    layer = _transformer_layer_segment(
        cfg, tokens, seq_len, local_batch, parallelism, decode=False
    )
    epilogue = GraphTableBuilder("epilogue", WorkloadPhase.PREFILL)
    if parallelism.pipeline > 1:
        epilogue.collective(
            "pipeline_send_recv",
            CollectiveKind.SEND_RECV,
            payload_bytes=tokens * cfg.hidden_dim * 2,
            num_chips=parallelism.pipeline,
            count=2,
        )
    epilogue.matmul(
        "lm_head",
        m=local_batch,
        k=cfg.hidden_dim,
        n=max(1, cfg.vocab_size // parallelism.tensor),
    )
    table = GraphTable.concat(
        [prologue.build(), layer.scaled_counts(layers_local), epilogue.build()],
        name=f"{cfg.name}-prefill",
        phase=WorkloadPhase.PREFILL,
        parallelism=parallelism,
        iteration_unit="token",
        work_per_iteration=float(batch_size * seq_len),
        model_name=cfg.name,
        batch_size=batch_size,
    )
    table.validate()
    return table


def build_decode_table(
    model: str | LlamaConfig,
    batch_size: int = 1,
    context_len: int = 4096,
    output_len: int = 512,
    parallelism: ParallelismConfig | None = None,
) -> GraphTable:
    """Columnar counterpart of :func:`build_decode_graph`."""
    cfg = model if isinstance(model, LlamaConfig) else get_llama_config(model)
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.data)
    layers_local = math.ceil(cfg.num_layers / parallelism.pipeline)
    kv_len = context_len + output_len // 2

    prologue = GraphTableBuilder("prologue", WorkloadPhase.DECODE)
    prologue.operator(
        "embedding_lookup",
        OpKind.EMBEDDING,
        hbm_read_bytes=local_batch * cfg.hidden_dim * 2,
        hbm_write_bytes=local_batch * cfg.hidden_dim * 2,
        vu_flops=local_batch * cfg.hidden_dim,
    )
    layer = _transformer_layer_segment(
        cfg, local_batch, kv_len, local_batch, parallelism, decode=True
    )
    epilogue = GraphTableBuilder("epilogue", WorkloadPhase.DECODE)
    if parallelism.pipeline > 1:
        epilogue.collective(
            "pipeline_send_recv",
            CollectiveKind.SEND_RECV,
            payload_bytes=local_batch * cfg.hidden_dim * 2,
            num_chips=parallelism.pipeline,
            count=2,
        )
    epilogue.matmul(
        "lm_head",
        m=local_batch,
        k=cfg.hidden_dim,
        n=max(1, cfg.vocab_size // parallelism.tensor),
    )
    table = GraphTable.concat(
        [prologue.build(), layer.scaled_counts(layers_local), epilogue.build()],
        name=f"{cfg.name}-decode",
        phase=WorkloadPhase.DECODE,
        parallelism=parallelism,
        iteration_unit="token",
        work_per_iteration=float(batch_size),
        model_name=cfg.name,
        batch_size=batch_size,
    )
    table.validate()
    return table


def build_training_table(
    model: str | LlamaConfig,
    batch_size: int = 32,
    seq_len: int = 4096,
    parallelism: ParallelismConfig | None = None,
) -> GraphTable:
    """Columnar counterpart of :func:`build_training_graph`."""
    cfg = model if isinstance(model, LlamaConfig) else get_llama_config(model)
    parallelism = parallelism or ParallelismConfig()
    local_batch = max(1, batch_size // parallelism.data)
    layers_local = math.ceil(cfg.num_layers / parallelism.pipeline)
    tokens = local_batch * seq_len

    forward = _transformer_layer_segment(
        cfg, tokens, seq_len, local_batch, parallelism, decode=False
    )
    epilogue = GraphTableBuilder("epilogue", WorkloadPhase.TRAINING)
    params_local = (
        cfg.params_per_layer * layers_local / parallelism.tensor
        + 2 * cfg.vocab_size * cfg.hidden_dim / parallelism.tensor
    )
    if parallelism.data > 1:
        epilogue.collective(
            "grad_allreduce",
            CollectiveKind.ALL_REDUCE,
            payload_bytes=params_local * 2,
            num_chips=parallelism.data,
        )
    if parallelism.pipeline > 1:
        epilogue.collective(
            "pipeline_send_recv",
            CollectiveKind.SEND_RECV,
            payload_bytes=tokens * cfg.hidden_dim * 2,
            num_chips=parallelism.pipeline,
            count=4,
        )
    epilogue.operator(
        "optimizer_update",
        OpKind.OPTIMIZER,
        vu_flops=params_local * 12.0,
        hbm_read_bytes=params_local * 14.0,
        hbm_write_bytes=params_local * 14.0,
    )
    table = GraphTable.concat(
        [
            forward.scaled_counts(layers_local),
            _backward_segment(forward, layers_local),
            epilogue.build(),
        ],
        name=f"{cfg.name}-training",
        phase=WorkloadPhase.TRAINING,
        parallelism=parallelism,
        iteration_unit="step",
        work_per_iteration=1.0,
        model_name=cfg.name,
        batch_size=batch_size,
    )
    table.validate()
    return table


__all__ = [
    "LLAMA_CONFIGS",
    "LlamaConfig",
    "build_decode_graph",
    "build_decode_table",
    "build_prefill_graph",
    "build_prefill_table",
    "build_training_graph",
    "build_training_table",
    "get_llama_config",
    "memory_per_chip_bytes",
    "weights_per_chip_bytes",
]
