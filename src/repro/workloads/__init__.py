"""Workload graph generators for the ML models evaluated in the paper.

Table 1 of the paper lists the benchmark workloads: LLM training and
inference (Llama3-8B, Llama2-13B, Llama3-70B, Llama3.1-405B),
recommendation models (DLRM-S/M/L) and stable diffusion models (DiT-XL,
GLIGEN).  Each generator lowers a model into a per-chip
:class:`~repro.workloads.base.OperatorGraph` given a batch size and a
parallelism configuration.
"""

from repro.workloads.base import (
    CollectiveKind,
    MatmulDims,
    Operator,
    OperatorGraph,
    OpKind,
    ParallelismConfig,
    WorkloadPhase,
)
from repro.workloads.registry import WorkloadSpec, get_workload, list_workloads
from repro.workloads.table import GraphTable, GraphTableBuilder

__all__ = [
    "CollectiveKind",
    "GraphTable",
    "GraphTableBuilder",
    "MatmulDims",
    "Operator",
    "OperatorGraph",
    "OpKind",
    "ParallelismConfig",
    "WorkloadPhase",
    "WorkloadSpec",
    "get_workload",
    "list_workloads",
]
