"""DLRM (deep learning recommendation model) workload generator.

The paper evaluates three DLRM variants (DLRM-S/M/L) distinguished by
their embedding table sizes (20 / 45 / 98 GB) with a request batch size
of 1024 (Table 1).  DLRM inference is dominated by random embedding
lookups (HBM-bound) and small MLPs, with the embedding tables sharded
across chips (model parallel) and the pooled embeddings exchanged via an
all-to-all collective — which is why the paper's ICI utilization for DLRM
is near 100% (Figure 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.workloads.base import (
    CollectiveKind,
    Operator,
    OperatorGraph,
    OpKind,
    ParallelismConfig,
    WorkloadPhase,
    collective_op,
    elementwise_op,
    matmul_op,
)
from repro.workloads.table import GraphTable, GraphTableBuilder


@dataclass(frozen=True)
class DLRMConfig:
    """Hyper-parameters of a DLRM variant."""

    name: str
    num_tables: int
    embedding_dim: int
    table_size_gb: float
    pooling_factor: int
    dense_features: int
    bottom_mlp: tuple[int, ...]
    top_mlp: tuple[int, ...]

    @property
    def table_size_bytes(self) -> float:
        return self.table_size_gb * 1e9

    @property
    def interaction_features(self) -> int:
        """Feature count after the pairwise dot-product interaction."""
        n = self.num_tables + 1
        return self.embedding_dim + n * (n - 1) // 2


DLRM_CONFIGS: dict[str, DLRMConfig] = {
    "dlrm-s": DLRMConfig(
        name="dlrm-s",
        num_tables=26,
        embedding_dim=128,
        table_size_gb=20.0,
        pooling_factor=2,
        dense_features=13,
        bottom_mlp=(512, 256, 128),
        top_mlp=(1024, 1024, 512, 256, 1),
    ),
    "dlrm-m": DLRMConfig(
        name="dlrm-m",
        num_tables=50,
        embedding_dim=128,
        table_size_gb=45.0,
        pooling_factor=2,
        dense_features=13,
        bottom_mlp=(512, 256, 128),
        top_mlp=(1024, 1024, 512, 256, 1),
    ),
    "dlrm-l": DLRMConfig(
        name="dlrm-l",
        num_tables=100,
        embedding_dim=128,
        table_size_gb=98.0,
        pooling_factor=2,
        dense_features=13,
        bottom_mlp=(512, 256, 128),
        top_mlp=(1024, 1024, 512, 256, 1),
    ),
}


def get_dlrm_config(name: str) -> DLRMConfig:
    """Look up a DLRM configuration by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in DLRM_CONFIGS:
        raise KeyError(f"unknown DLRM {name!r}; available: {', '.join(DLRM_CONFIGS)}")
    return DLRM_CONFIGS[key]


def memory_per_chip_bytes(
    cfg: DLRMConfig, parallelism: ParallelismConfig, batch_size: int = 1024
) -> float:
    """Per-chip HBM footprint: sharded embedding tables plus MLP weights."""
    tables = cfg.table_size_bytes / parallelism.num_chips
    mlp_params = 0
    prev = cfg.dense_features
    for width in cfg.bottom_mlp:
        mlp_params += prev * width
        prev = width
    prev = cfg.interaction_features
    for width in cfg.top_mlp:
        mlp_params += prev * width
        prev = width
    activations = batch_size * cfg.interaction_features * 4 * 2
    return tables + mlp_params * 4 + activations


def _mlp_ops(
    name: str, batch: int, input_dim: int, widths: tuple[int, ...]
) -> list[Operator]:
    """Matmul + activation operators of a dense MLP stack."""
    ops: list[Operator] = []
    prev = input_dim
    for index, width in enumerate(widths):
        ops.append(
            matmul_op(
                f"{name}_fc{index}",
                m=batch,
                k=prev,
                n=width,
                dtype_bytes=4,
                vu_postprocess_flops_per_output=3.0,  # bias + ReLU
            )
        )
        prev = width
    return ops


def build_dlrm_graph(
    model: str | DLRMConfig,
    batch_size: int = 1024,
    parallelism: ParallelismConfig | None = None,
) -> OperatorGraph:
    """Operator graph for one DLRM inference request batch (one chip).

    Embedding tables are sharded table-wise across the pod (model
    parallelism); the MLPs run data-parallel on the local slice of the
    batch after an all-to-all exchanges pooled embeddings.
    """
    cfg = model if isinstance(model, DLRMConfig) else get_dlrm_config(model)
    parallelism = parallelism or ParallelismConfig()
    num_chips = parallelism.num_chips
    local_batch = max(1, batch_size // num_chips)
    tables_local = max(1, math.ceil(cfg.num_tables / num_chips))

    graph = OperatorGraph(
        name=f"{cfg.name}-inference",
        phase=WorkloadPhase.INFERENCE,
        parallelism=parallelism,
        iteration_unit="request",
        work_per_iteration=float(batch_size),
        model_name=cfg.name,
        batch_size=batch_size,
    )

    # Embedding lookups: each chip gathers rows from its local tables for
    # the *global* batch (model-parallel tables), pools them, and
    # exchanges the pooled vectors with an all-to-all.
    lookup_bytes = batch_size * tables_local * cfg.pooling_factor * cfg.embedding_dim * 4.0
    pooled_bytes = batch_size * tables_local * cfg.embedding_dim * 4.0
    graph.add(
        Operator(
            name="embedding_gather",
            kind=OpKind.EMBEDDING,
            hbm_read_bytes=lookup_bytes,
            hbm_write_bytes=pooled_bytes,
            vu_flops=batch_size * tables_local * cfg.pooling_factor * cfg.embedding_dim,
        )
    )
    if num_chips > 1:
        graph.add(
            collective_op(
                "embedding_alltoall",
                CollectiveKind.ALL_TO_ALL,
                payload_bytes=pooled_bytes,
                num_chips=num_chips,
            )
        )

    for op in _mlp_ops("bottom_mlp", local_batch, cfg.dense_features, cfg.bottom_mlp):
        graph.add(op)

    # Pairwise feature interaction: batched small matmuls between the
    # (num_tables+1) x embedding_dim feature matrix and its transpose.
    n_feat = cfg.num_tables + 1
    graph.add(
        matmul_op(
            "feature_interaction",
            m=n_feat,
            k=cfg.embedding_dim,
            n=n_feat,
            dtype_bytes=4,
            count=local_batch,
            read_weights=False,
            vu_postprocess_flops_per_output=1.0,
        )
    )
    for op in _mlp_ops("top_mlp", local_batch, cfg.interaction_features, cfg.top_mlp):
        graph.add(op)
    graph.add(
        elementwise_op("sigmoid", local_batch, flops_per_element=4.0, dtype_bytes=4)
    )
    graph.validate()
    return graph


# ---------------------------------------------------------------------- #
# Columnar (GraphTable) builder
# ---------------------------------------------------------------------- #
def _mlp_rows(
    builder: GraphTableBuilder,
    name: str,
    batch: int,
    input_dim: int,
    widths: tuple[int, ...],
) -> None:
    """Row counterpart of :func:`_mlp_ops`."""
    prev = input_dim
    for index, width in enumerate(widths):
        builder.matmul(
            f"{name}_fc{index}",
            m=batch,
            k=prev,
            n=width,
            dtype_bytes=4,
            vu_postprocess_flops_per_output=3.0,  # bias + ReLU
        )
        prev = width


def build_dlrm_table(
    model: str | DLRMConfig,
    batch_size: int = 1024,
    parallelism: ParallelismConfig | None = None,
) -> GraphTable:
    """Columnar counterpart of :func:`build_dlrm_graph`."""
    cfg = model if isinstance(model, DLRMConfig) else get_dlrm_config(model)
    parallelism = parallelism or ParallelismConfig()
    num_chips = parallelism.num_chips
    local_batch = max(1, batch_size // num_chips)
    tables_local = max(1, math.ceil(cfg.num_tables / num_chips))

    builder = GraphTableBuilder(
        name=f"{cfg.name}-inference",
        phase=WorkloadPhase.INFERENCE,
        parallelism=parallelism,
        iteration_unit="request",
        work_per_iteration=float(batch_size),
        model_name=cfg.name,
        batch_size=batch_size,
    )
    lookup_bytes = batch_size * tables_local * cfg.pooling_factor * cfg.embedding_dim * 4.0
    pooled_bytes = batch_size * tables_local * cfg.embedding_dim * 4.0
    builder.operator(
        "embedding_gather",
        OpKind.EMBEDDING,
        hbm_read_bytes=lookup_bytes,
        hbm_write_bytes=pooled_bytes,
        vu_flops=batch_size * tables_local * cfg.pooling_factor * cfg.embedding_dim,
    )
    if num_chips > 1:
        builder.collective(
            "embedding_alltoall",
            CollectiveKind.ALL_TO_ALL,
            payload_bytes=pooled_bytes,
            num_chips=num_chips,
        )
    _mlp_rows(builder, "bottom_mlp", local_batch, cfg.dense_features, cfg.bottom_mlp)
    n_feat = cfg.num_tables + 1
    builder.matmul(
        "feature_interaction",
        m=n_feat,
        k=cfg.embedding_dim,
        n=n_feat,
        dtype_bytes=4,
        count=local_batch,
        read_weights=False,
        vu_postprocess_flops_per_output=1.0,
    )
    _mlp_rows(builder, "top_mlp", local_batch, cfg.interaction_features, cfg.top_mlp)
    builder.elementwise("sigmoid", local_batch, flops_per_element=4.0, dtype_bytes=4)
    table = builder.build()
    table.validate()
    return table


__all__ = [
    "DLRM_CONFIGS",
    "DLRMConfig",
    "build_dlrm_graph",
    "build_dlrm_table",
    "get_dlrm_config",
    "memory_per_chip_bytes",
]
