"""Fault-tolerant shard scheduler: ``repro launch``.

PR 5/6 made sweeps shardable — deterministic :class:`ShardPlan`s,
``.repro-shard`` artifacts with an associative, idempotent,
byte-identical merge — but launching and merging the shards was still a
hand-driven loop: one hung worker or a killed process lost the run.
This module is the orchestration layer on top of that substrate.

:class:`LaunchScheduler` takes a :class:`~repro.experiments.spec.SweepSpec`
and a shard count, dispatches shards to a pluggable **worker backend**
(:class:`ThreadBackend` in-process, :class:`ProcessBackend` one
subprocess per shard so a worker can be SIGKILLed without taking the
scheduler down), and drives every shard through a typed lifecycle::

    PENDING ──dispatch──▶ RUNNING ──artifact validated──▶ LANDED
                             │
                             ├─ worker exited nonzero / corrupt artifact
                             │        └─▶ FAILED ── retries left? ─▶ PENDING
                             └─ heartbeat stale / shard timeout
                                      └─▶ ORPHANED ─ retries left? ─▶ PENDING

Robustness mechanisms, each independently switchable:

* **Retries with exponential backoff + deterministic jitter**
  (:class:`RetryPolicy`): a failed or orphaned shard is re-dispatched up
  to ``max_attempts`` times, waiting ``base * backoff**(n-1)`` (capped,
  jittered) between attempts.
* **Heartbeat liveness**: every worker touches a per-attempt heartbeat
  file; a worker whose heartbeat goes stale past ``heartbeat_timeout``
  is declared dead (``ORPHANED``), killed, and its shard re-dispatched.
  This catches *silent* failures — a hung worker never exits.
* **Straggler speculation**: once more than ``speculation_threshold``
  (default 80%) of shards have landed, the slowest still-running shard
  is speculatively re-issued; the first attempt to land an artifact
  wins.  Safe because every attempt writes to its own staging directory
  and shard artifacts are deterministic — the merge is idempotent.
* **Incremental streaming re-merge**: landed artifacts are merged into
  a running partial artifact (``merged.repro-shard``) as they arrive,
  reusing :func:`~repro.experiments.sharding.merge_artifacts`'
  associativity — a killed run leaves a usable partial merge behind.
* **Crash-safe journal** (``journal.jsonl``): every lifecycle event is
  appended as one fsync'd JSON line.  The reader tolerates a torn tail
  (a line cut short by a crash is skipped), so
  ``LaunchScheduler(..., resume=True)`` — ``repro launch --resume`` —
  restores landed shards from their validated on-disk artifacts,
  restores attempt counters from the journal, and continues the run
  after the *scheduler itself* was killed.
* **Graceful degradation**: when a shard exhausts its retries the rest
  of the grid still finishes; the scheduler emits the partial merge
  plus a machine-readable ``failure-report.json`` and exits with a
  distinct code (:data:`EXIT_COMPLETE` 0 / :data:`EXIT_PARTIAL` 3).
* **Reproducible fault injection** (:class:`FaultInjector`, env-driven
  via ``REPRO_FAULT_SPEC=crash:0.3,hang:0.1,corrupt:0.1``): worker
  crashes, hangs and corrupt-artifact writes are drawn deterministically
  per (shard, attempt), so chaos tests and the CI chaos-smoke job replay
  exactly.

The end-to-end guarantee is inherited from the sharding substrate and
asserted by ``tests/test_scheduler.py`` and the CI chaos job: whatever
faults are injected, a run that completes produces a merged CSV
**byte-identical** to the monolithic
:class:`~repro.experiments.runner.SweepRunner` run.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pickle
import random
import shutil
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, IO, Mapping

from repro import __version__
from repro.experiments.cache import SharedCacheDir, SimulationCache
from repro.experiments.catalog import ExperimentCatalog
from repro.experiments.sharding import (
    MANIFEST_NAME,
    NUMERIC_NAME,
    SHARD_SUFFIX,
    Shard,
    ShardArtifact,
    ShardError,
    ShardPlan,
    ShardRunner,
    merge_artifacts,
    spec_digest,
    verify_artifact_files,
)
from repro.experiments.spec import SweepSpec

_LOG = logging.getLogger(__name__)

#: Scheduler exit codes (``repro launch`` exits with these).
EXIT_COMPLETE = 0
#: Some shards exhausted their retries; the partial merge and a
#: failure report were still written.
EXIT_PARTIAL = 3
#: Worker self-exit code of an injected crash (distinguishable from a
#: real bug's traceback exit 1 in the journal).
EXIT_INJECTED_CRASH = 70
#: Worker exit code when an injected hang was interrupted by a kill.
EXIT_KILLED = 71

#: Environment variable holding the fault-injection spec.
FAULT_ENV = "REPRO_FAULT_SPEC"

SPEC_FILENAME = "spec.pkl"
JOURNAL_FILENAME = "journal.jsonl"
SNAPSHOT_FILENAME = "journal-snapshot.json"
ARCHIVE_FILENAME = "journal-archive.jsonl"
MERGED_NAME = "merged" + SHARD_SUFFIX
FAILURE_REPORT_FILENAME = "failure-report.json"


class LaunchError(RuntimeError):
    """The launch directory or arguments are unusable (not a shard fault)."""


# ---------------------------------------------------------------------- #
# Lifecycle, retry policy, fault injection
# ---------------------------------------------------------------------- #
class ShardState(str, Enum):
    """Typed lifecycle of one shard inside a launch."""

    PENDING = "pending"
    RUNNING = "running"
    LANDED = "landed"
    FAILED = "failed"
    ORPHANED = "orphaned"

    @property
    def terminal(self) -> bool:
        return self in (ShardState.LANDED, ShardState.FAILED)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``max_attempts`` counts *dispatches consuming retry budget* per
    shard and per scheduler process (speculative duplicates are free).
    The jitter is drawn from a :class:`random.Random` seeded by the
    shard token and attempt number, so two runs of the same plan wait
    the same amount — reproducibility extends to the retry schedule.
    """

    max_attempts: int = 6
    base_delay_s: float = 0.25
    backoff: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay_s(self, failures: int, token: str = "") -> float:
        """Seconds to wait before the dispatch following ``failures`` failures."""
        base = min(
            self.base_delay_s * self.backoff ** max(0, failures - 1),
            self.max_delay_s,
        )
        if not self.jitter:
            return base
        rng = random.Random(f"repro-retry:{token}:{failures}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault mix, e.g. ``crash:0.3,hang:0.1,corrupt:0.1``.

    Two independent fault categories share the spec:

    * **worker faults** (``crash``, ``hang``, ``corrupt``) — drawn once
      per shard attempt inside the worker body;
    * **network faults** (``drop``, ``stall``, ``tear``) — drawn per
      remote transport operation (stage/run/fetch) by the remote
      backends: a *drop* makes the operation fail immediately, a
      *stall* parks it until cancelled (modelling a dead connection the
      liveness relay must catch), and a *tear* lets a fetch complete
      with corrupted bytes (caught by the artifact's content digests).

    ``until`` restricts injection to the first N attempts of each shard
    (``until:1`` makes every first attempt eligible and every retry
    clean — handy for deterministic CI chaos steps); ``seed`` varies
    the deterministic draw stream.
    """

    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    drop: float = 0.0
    stall: float = 0.0
    tear: float = 0.0
    seed: int = 0
    until: int | None = None

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        fields: dict[str, Any] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                name, value = part.split(":", 1)
            except ValueError:
                raise LaunchError(
                    f"bad fault spec entry {part!r} (expected name:value)"
                ) from None
            name = name.strip()
            if name in ("crash", "hang", "corrupt", "drop", "stall", "tear"):
                fields[name] = float(value)
            elif name in ("seed", "until"):
                fields[name] = int(value)
            else:
                raise LaunchError(
                    f"unknown fault kind {name!r} "
                    "(have crash, hang, corrupt, drop, stall, tear, "
                    "seed, until)"
                )
        spec = cls(**fields)
        if not 0.0 <= spec.crash + spec.hang + spec.corrupt <= 1.0:
            raise LaunchError(
                "worker fault probabilities must sum to a value in [0, 1], "
                f"got {spec.crash + spec.hang + spec.corrupt}"
            )
        if not 0.0 <= spec.drop + spec.stall + spec.tear <= 1.0:
            raise LaunchError(
                "network fault probabilities must sum to a value in [0, 1], "
                f"got {spec.drop + spec.stall + spec.tear}"
            )
        return spec

    def describe(self) -> str:
        parts = [
            f"{name}:{value}"
            for name, value in (
                ("crash", self.crash),
                ("hang", self.hang),
                ("corrupt", self.corrupt),
                ("drop", self.drop),
                ("stall", self.stall),
                ("tear", self.tear),
            )
            if value
        ]
        if self.seed:
            parts.append(f"seed:{self.seed}")
        if self.until is not None:
            parts.append(f"until:{self.until}")
        return ",".join(parts) or "none"


class FaultInjector:
    """Draws a fault (or none) deterministically per (shard, attempt).

    The draw depends only on ``(spec.seed, shard_index, attempt)`` — not
    on scheduling order, machine, or process — so a chaos run replays
    identically: the same attempts crash, hang or corrupt every time.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec

    @classmethod
    def from_env(
        cls, env: Mapping[str, str] | None = None
    ) -> "FaultInjector | None":
        env = os.environ if env is None else env
        text = env.get(FAULT_ENV)
        if not text:
            return None
        return cls(FaultSpec.parse(text))

    def draw(self, shard_index: int, attempt: int) -> str | None:
        """``"crash"`` / ``"hang"`` / ``"corrupt"`` / ``None`` for one attempt."""
        spec = self.spec
        if spec.until is not None and attempt > spec.until:
            return None
        rng = random.Random(f"repro-fault:{spec.seed}:{shard_index}:{attempt}")
        roll = rng.random()
        for name, probability in (
            ("crash", spec.crash),
            ("hang", spec.hang),
            ("corrupt", spec.corrupt),
        ):
            if roll < probability:
                return name
            roll -= probability
        return None

    def draw_network(
        self, shard_index: int, attempt: int, op: str, try_number: int = 1
    ) -> str | None:
        """``"drop"`` / ``"stall"`` / ``"tear"`` / ``None`` for one
        transport operation.

        Like :meth:`draw`, a pure function of the identifying tuple —
        here ``(seed, shard, attempt, op, try)`` where ``op`` names the
        network step (``"stage"``, ``"run"``, ``"fetch"``) and ``try``
        counts the transport-level retries of that step — so a chaos
        run's network weather replays exactly, and a dropped operation
        may deterministically clear on its next retry.
        """
        spec = self.spec
        if spec.until is not None and attempt > spec.until:
            return None
        rng = random.Random(
            f"repro-netfault:{spec.seed}:{shard_index}:{attempt}:{op}:{try_number}"
        )
        roll = rng.random()
        for name, probability in (
            ("drop", spec.drop),
            ("stall", spec.stall),
            ("tear", spec.tear),
        ):
            if roll < probability:
                return name
            roll -= probability
        return None


# ---------------------------------------------------------------------- #
# The append-only journal
# ---------------------------------------------------------------------- #
class Journal:
    """Crash-safe append-only event log (``journal.jsonl``).

    Each event is one JSON line written with ``O_APPEND`` + flush +
    ``fsync`` — on POSIX a single short append is atomic, and the
    fsync bounds what a power cut can lose to the final line.  The
    reader (:meth:`read_events`) skips any line that does not parse,
    so a tail torn by a crashed scheduler degrades to one lost event,
    never an unreadable journal.  (Artifacts — the expensive state —
    are published by atomic rename exactly like the shard writer; the
    journal only has to *survive* crashes, not replace them.)

    Left alone, the log grows without bound across retries and resume
    cycles, so every graceful exit **compacts** it (:meth:`compact`):
    the state a resume needs — attempt high-water marks, landed/failed
    shards — is folded into an atomically published
    ``journal-snapshot.json`` and the log restarts near-empty.  Readers
    replay snapshot *plus* tail; a crash between the two writes leaves
    either the old log or the new snapshot + fresh log, never neither.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    @property
    def snapshot_path(self) -> Path:
        return self.path.with_name(SNAPSHOT_FILENAME)

    def append(self, event: str, **fields: Any) -> dict[str, Any]:
        entry = {"ts": time.time(), "event": event, **fields}
        line = json.dumps(entry) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        return entry

    @classmethod
    def read_events(cls, path: str | Path) -> list[dict[str, Any]]:
        try:
            text = Path(path).read_text(encoding="utf-8", errors="replace")
        except OSError:
            return []
        events: list[dict[str, Any]] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail from a crashed writer
            if isinstance(entry, dict):
                events.append(entry)
        return events

    @property
    def archive_path(self) -> Path:
        return self.path.with_name(ARCHIVE_FILENAME)

    def compact(self, state: Mapping[str, Any]) -> Path:
        """Fold the log into ``journal-snapshot.json`` and restart it.

        ``state`` is whatever a future resume needs (attempt counters,
        landed/failed shards); the snapshot also records how many events
        it folded.  The snapshot is published by atomic rename *before*
        the log is rotated, so a crash mid-compaction can only leave
        extra (still replayable) events behind, never lose state.  The
        raw event lines move to ``journal-archive.jsonl`` (previous
        generation only) for post-mortems; resume never replays them —
        it reads the snapshot plus whatever tail accrued afterwards.
        """
        folded = len(self.read_events(self.path))
        payload = {
            "kind": "repro-launch-journal-snapshot",
            "ts": time.time(),
            "folded_events": folded,
            **state,
        }
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        os.replace(tmp, self.snapshot_path)
        try:
            os.replace(self.path, self.archive_path)
        except OSError:
            pass  # nothing to archive (journal never written)
        self.append("compact", snapshot=SNAPSHOT_FILENAME, folded_events=folded)
        return self.snapshot_path

    @classmethod
    def read_snapshot(cls, path: str | Path) -> dict[str, Any] | None:
        """The compacted snapshot next to journal ``path``, if one exists."""
        snapshot_path = Path(path).with_name(SNAPSHOT_FILENAME)
        try:
            payload = json.loads(snapshot_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != "repro-launch-journal-snapshot"
        ):
            return None
        return payload


# ---------------------------------------------------------------------- #
# Worker execution (shared by the thread backend and repro.experiments.worker)
# ---------------------------------------------------------------------- #
class _HeartbeatWriter(threading.Thread):
    """Touches a heartbeat file every ``interval`` seconds until stopped."""

    def __init__(self, path: Path, interval: float):
        super().__init__(name=f"heartbeat:{path.name}", daemon=True)
        self.path = path
        self.interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        while True:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self.path.touch()
            except OSError:
                pass  # a vanished launch dir must not crash the worker
            if self._stop.wait(self.interval):
                return

    def stop(self) -> None:
        self._stop.set()


def _corrupt_artifact(path: Path) -> None:
    """Injected fault: scribble garbage over the artifact's column store
    (or its manifest for empty shards), modelling a worker that crashed
    mid-write on a filesystem without atomic publish."""
    numeric = path / NUMERIC_NAME
    target = numeric if numeric.exists() else path / MANIFEST_NAME
    target.write_bytes(b"\x00injected corrupt artifact write\x00")


def execute_shard_attempt(
    spec: SweepSpec,
    shard_index: int,
    shard_count: int,
    staging_path: Path,
    heartbeat_path: Path,
    heartbeat_interval: float,
    shared_cache: str | Path | None = None,
    fault: FaultInjector | None = None,
    attempt: int = 1,
    stop_event: threading.Event | None = None,
    hard_crash: bool = False,
) -> int:
    """One worker attempt: heartbeat, (injected faults,) run, write.

    The single worker body shared by :class:`ThreadBackend` (in-process)
    and :mod:`repro.experiments.worker` (subprocess).  Returns a worker
    exit code; ``hard_crash`` makes an injected crash ``os._exit`` so
    the subprocess dies without running any cleanup — the closest
    portable stand-in for a segfault.
    """
    stop_event = stop_event if stop_event is not None else threading.Event()
    heartbeat = _HeartbeatWriter(heartbeat_path, heartbeat_interval)
    heartbeat.start()
    try:
        mode = fault.draw(shard_index, attempt) if fault is not None else None
        if mode == "crash":
            if hard_crash:
                os._exit(EXIT_INJECTED_CRASH)
            return EXIT_INJECTED_CRASH
        if mode == "hang":
            # The silent-failure scenario: the worker stays alive but
            # stops pulsing; only the scheduler's liveness check (or a
            # kill) ends it.
            heartbeat.stop()
            while not stop_event.wait(0.1):
                pass
            return EXIT_KILLED
        cache = (
            SimulationCache(shared_dir=shared_cache)
            if shared_cache is not None
            else None
        )
        artifact = ShardRunner(spec, shard_count, cache=cache).run(shard_index)
        artifact.write(staging_path)
        # Write-side validation hook: prove the bytes on disk match the
        # manifest's content digests before the artifact is offered for
        # transfer.  Runs *before* the injected corruption below — that
        # fault models corruption the writer itself cannot see, and must
        # reach the scheduler's (or the transfer's) validation instead.
        verify_artifact_files(staging_path)
        if mode == "corrupt":
            _corrupt_artifact(staging_path)
        return 0
    finally:
        heartbeat.stop()


# ---------------------------------------------------------------------- #
# Worker backends
# ---------------------------------------------------------------------- #
@dataclass
class DispatchContext:
    """Everything a backend needs to start one shard attempt."""

    spec: SweepSpec
    spec_path: Path
    shard_index: int
    shard_count: int
    attempt: int
    staging_path: Path
    heartbeat_path: Path
    heartbeat_interval: float
    log_path: Path
    shared_cache: str | None
    fault_text: str | None
    speculative: bool


class WorkerHandle:
    """One in-flight attempt, pollable and killable by the scheduler."""

    def __init__(self, ctx: DispatchContext):
        self.shard_index = ctx.shard_index
        self.attempt = ctx.attempt
        self.staging_path = ctx.staging_path
        self.heartbeat_path = ctx.heartbeat_path
        self.speculative = ctx.speculative
        self.started = time.time()
        self.pid: int | None = None

    def poll(self) -> int | None:  # pragma: no cover - abstract
        raise NotImplementedError

    def kill(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _ThreadWorkerHandle(WorkerHandle):
    def __init__(self, ctx: DispatchContext, injector: FaultInjector | None):
        super().__init__(ctx)
        self._stop = threading.Event()
        self._result: list[int] = []

        def _body() -> None:
            try:
                code = execute_shard_attempt(
                    ctx.spec,
                    ctx.shard_index,
                    ctx.shard_count,
                    ctx.staging_path,
                    ctx.heartbeat_path,
                    ctx.heartbeat_interval,
                    shared_cache=ctx.shared_cache,
                    fault=injector,
                    attempt=ctx.attempt,
                    stop_event=self._stop,
                )
            except BaseException:  # noqa: BLE001 - worker crash == exit 1
                _LOG.exception(
                    "in-process worker for shard %d crashed", ctx.shard_index
                )
                code = 1
            self._result.append(code)

        self._thread = threading.Thread(
            target=_body,
            name=f"shard-worker:{ctx.shard_index}.{ctx.attempt}",
            daemon=True,
        )
        self._thread.start()

    def poll(self) -> int | None:
        if self._thread.is_alive():
            return None
        return self._result[0] if self._result else 1

    def kill(self) -> None:
        self._stop.set()


class _ProcessWorkerHandle(WorkerHandle):
    def __init__(self, ctx: DispatchContext, process: subprocess.Popen, log: IO):
        super().__init__(ctx)
        self._process = process
        self._log = log
        self.pid = process.pid

    def poll(self) -> int | None:
        code = self._process.poll()
        if code is not None and self._log is not None:
            self._log.close()
            self._log = None
        return code

    def kill(self) -> None:
        try:
            self._process.kill()
            self._process.wait(timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            pass
        if self._log is not None:
            self._log.close()
            self._log = None


class ThreadBackend:
    """Runs shard attempts on daemon threads inside the scheduler process.

    Cheap (no interpreter start per shard) but shares the scheduler's
    fate and GIL; a *hung* attempt can be abandoned (its thread parks on
    a stop event) but a thread stuck in native code cannot be killed.
    The default for tests and small grids.
    """

    name = "thread"

    def __init__(self, injector: FaultInjector | None = None):
        self._injector = injector

    def dispatch(self, ctx: DispatchContext) -> WorkerHandle:
        return _ThreadWorkerHandle(ctx, self._injector)


class ProcessBackend:
    """Runs each shard attempt as ``python -m repro.experiments.worker``.

    Full fault isolation: a worker can crash, leak, or be SIGKILLed
    without touching the scheduler, and the scheduler's kill is a real
    ``SIGKILL``.  Worker stdout/stderr go to per-attempt log files
    under ``logs/``.
    """

    name = "process"

    def dispatch(self, ctx: DispatchContext) -> WorkerHandle:
        argv = [
            sys.executable,
            "-m",
            "repro.experiments.worker",
            "--spec", str(ctx.spec_path),
            "--index", str(ctx.shard_index),
            "--count", str(ctx.shard_count),
            "--staging", str(ctx.staging_path),
            "--heartbeat", str(ctx.heartbeat_path),
            "--interval", str(ctx.heartbeat_interval),
            "--attempt", str(ctx.attempt),
        ]
        if ctx.shared_cache:
            argv += ["--shared-cache", str(ctx.shared_cache)]
        if ctx.fault_text:
            argv += ["--fault-spec", ctx.fault_text]
        env = dict(os.environ)
        # Faults travel by argv (attempt-numbered, scheduler-owned);
        # never let the env spec double-apply inside the worker.
        env.pop(FAULT_ENV, None)
        package_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        ctx.log_path.parent.mkdir(parents=True, exist_ok=True)
        log = open(ctx.log_path, "ab")
        process = subprocess.Popen(
            argv, stdout=log, stderr=subprocess.STDOUT, env=env
        )
        return _ProcessWorkerHandle(ctx, process, log)


BACKENDS = {"thread": ThreadBackend, "process": ProcessBackend}


# ---------------------------------------------------------------------- #
# The scheduler
# ---------------------------------------------------------------------- #
@dataclass
class _ShardTask:
    shard: Shard
    state: ShardState = ShardState.PENDING
    #: Dispatches so far (global attempt numbering — continues across
    #: resumes so fault draws and heartbeat paths never collide).
    attempt_counter: int = 0
    #: Dispatches that consumed retry budget *in this scheduler process*.
    budget_spent: int = 0
    failures: list[str] = field(default_factory=list)
    not_before: float = 0.0
    handles: list[WorkerHandle] = field(default_factory=list)
    speculated: bool = False
    restored: bool = False
    #: Landed without computing: copied from a prior run via the catalog.
    adopted: bool = False
    landed_attempt: int | None = None
    duration_s: float | None = None
    #: One record per dispatch — host, backend, exit code, failure
    #: cause, duration — the post-mortem trail ``failure-report.json``
    #: and the progress API expose.
    history: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class LaunchReport:
    """Machine-readable outcome of one :meth:`LaunchScheduler.run`."""

    digest: str
    shard_count: int
    backend: str
    exit_code: int
    landed: list[int]
    failed: list[int]
    restored: list[int]
    adopted: list[int]
    dispatches: int
    orphaned_events: int
    speculative_dispatches: int
    merged_path: Path | None
    csv_path: Path | None
    failure_report_path: Path | None
    duration_s: float
    artifact: ShardArtifact | None

    @property
    def complete(self) -> bool:
        return self.exit_code == EXIT_COMPLETE

    def describe(self) -> str:
        lines = [
            f"plan          : {self.digest} ({self.shard_count} shard(s), "
            f"backend={self.backend})",
            f"landed        : {len(self.landed)}/{self.shard_count}"
            + (f" ({len(self.restored)} restored on resume)" if self.restored else "")
            + (
                f" ({len(self.adopted)} adopted from catalog)"
                if self.adopted
                else ""
            ),
            f"dispatches    : {self.dispatches}"
            + (
                f" ({self.speculative_dispatches} speculative)"
                if self.speculative_dispatches
                else ""
            ),
        ]
        if self.orphaned_events:
            lines.append(
                f"orphaned      : {self.orphaned_events} dead-worker event(s)"
            )
        if self.merged_path is not None:
            lines.append(f"merged        : {self.merged_path}")
        if self.csv_path is not None:
            lines.append(f"csv written   : {self.csv_path}")
        if self.failed:
            lines.append(f"failed shards : {self.failed}")
        if self.failure_report_path is not None:
            lines.append(f"failure report: {self.failure_report_path}")
        lines.append(
            "exit          : "
            + ("complete (0)" if self.complete else f"partial ({self.exit_code})")
        )
        return "\n".join(lines)


class LaunchScheduler:
    """Drives a full sharded sweep to completion despite worker faults.

    Parameters
    ----------
    directory:
        The launch directory.  Everything the run needs to survive a
        scheduler crash lives here: ``spec.pkl``, ``journal.jsonl``,
        ``shards/`` (landed artifacts), ``staging/`` (per-attempt
        scratch), ``heartbeats/``, ``logs/`` and the incrementally
        updated ``merged.repro-shard``.
    spec, shard_count:
        The grid and its partition.  Optional with ``resume=True`` —
        both are then restored from the launch directory (and verified
        against it when given).
    backend:
        ``"process"`` (default; one killable subprocess per attempt) or
        ``"thread"``, or a backend instance with a ``dispatch`` method.
    max_workers:
        Concurrent attempts (default: ``min(shard_count, cpu_count, 8)``).
    retry, heartbeat_interval, heartbeat_timeout, shard_timeout:
        Robustness knobs; ``shard_timeout`` (wall-clock cap per attempt)
        is off by default.
    speculate / speculation_threshold / speculation_factor:
        Straggler re-issue: once ``threshold`` of shards have landed, a
        lone attempt running longer than ``factor ×`` the median landed
        duration is duplicated; first artifact wins.
    injector:
        A :class:`FaultInjector` (defaults to ``REPRO_FAULT_SPEC`` from
        the environment; pass ``injector=None, use_env_faults=False``
        to force clean runs).
    shared_cache, gc_max_age_days, gc_max_bytes:
        Workers share a :class:`~repro.experiments.cache.SharedCacheDir`;
        teardown garbage-collects it when either GC knob is set.
    catalog:
        An :class:`~repro.experiments.catalog.ExperimentCatalog` (or its
        database path) — ``repro launch --catalog``.  Every landed and
        merged artifact is registered at promotion time, and before
        dispatching, shards a *prior* run already landed anywhere are
        adopted (copied, digest-verified, re-validated against this
        plan) instead of recomputed.  Byte-identical by construction:
        shard artifacts are deterministic functions of their plan slice.
    """

    def __init__(
        self,
        directory: str | Path,
        spec: SweepSpec | None = None,
        shard_count: int | None = None,
        *,
        backend: str | Any = "process",
        max_workers: int | None = None,
        retry: RetryPolicy | None = None,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 30.0,
        shard_timeout: float | None = None,
        speculate: bool = True,
        speculation_threshold: float = 0.8,
        speculation_factor: float = 2.0,
        poll_interval: float = 0.05,
        injector: FaultInjector | None = None,
        use_env_faults: bool = True,
        shared_cache: str | Path | None = None,
        gc_max_age_days: float | None = None,
        gc_max_bytes: int | None = None,
        csv_path: str | Path | None = None,
        resume: bool = False,
        serve: str | None = None,
        catalog: str | Path | ExperimentCatalog | None = None,
    ):
        self.directory = Path(directory)
        self.retry = retry if retry is not None else RetryPolicy()
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.shard_timeout = shard_timeout
        self.speculate = speculate
        self.speculation_threshold = speculation_threshold
        self.speculation_factor = speculation_factor
        self.poll_interval = poll_interval
        self.shared_cache = Path(shared_cache) if shared_cache else None
        self.gc_max_age_days = gc_max_age_days
        self.gc_max_bytes = gc_max_bytes
        self.resume = resume
        self.serve = serve
        # The cross-run experiment catalog (``repro launch --catalog``):
        # landed artifacts are registered at promotion, and shards some
        # prior run already landed are adopted instead of re-dispatched.
        self.catalog: ExperimentCatalog | None = (
            catalog
            if catalog is None or isinstance(catalog, ExperimentCatalog)
            else ExperimentCatalog(catalog)
        )
        #: The live progress HTTP server (``--serve``), set by :meth:`run`.
        self.status_server: Any = None
        self._started: float | None = None
        self._finished: float | None = None

        if injector is None and use_env_faults:
            injector = FaultInjector.from_env()
        self.injector = injector

        spec, shard_count = self._resolve_spec(spec, shard_count)
        self.spec = spec
        self.plan = ShardPlan(spec, shard_count)
        if max_workers is None:
            max_workers = min(shard_count, os.cpu_count() or 1, 8)
        self.max_workers = max(1, max_workers)

        if isinstance(backend, str):
            try:
                backend_cls = BACKENDS[backend]
            except KeyError:
                raise LaunchError(
                    f"unknown backend {backend!r} (have {sorted(BACKENDS)})"
                ) from None
            backend = (
                backend_cls(injector=self.injector)
                if backend_cls is ThreadBackend
                else backend_cls()
            )
        self.backend = backend

        self.journal = Journal(self.journal_path)
        self.csv_path = Path(csv_path) if csv_path else None
        self._tasks: dict[int, _ShardTask] = {
            shard.index: _ShardTask(shard) for shard in self.plan
        }
        self._merged: ShardArtifact | None = None
        self._dispatches = 0
        self._speculative_dispatches = 0
        self._orphaned_events = 0

    # -- paths ---------------------------------------------------------- #
    @property
    def spec_path(self) -> Path:
        return self.directory / SPEC_FILENAME

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_FILENAME

    @property
    def shards_dir(self) -> Path:
        return self.directory / "shards"

    @property
    def staging_dir(self) -> Path:
        return self.directory / "staging"

    @property
    def heartbeats_dir(self) -> Path:
        return self.directory / "heartbeats"

    @property
    def logs_dir(self) -> Path:
        return self.directory / "logs"

    @property
    def merged_path(self) -> Path:
        return self.directory / MERGED_NAME

    @property
    def failure_report_path(self) -> Path:
        return self.directory / FAILURE_REPORT_FILENAME

    # -- setup ---------------------------------------------------------- #
    def _resolve_spec(
        self, spec: SweepSpec | None, shard_count: int | None
    ) -> tuple[SweepSpec, int]:
        spec_path = Path(self.directory) / SPEC_FILENAME
        if spec is None or shard_count is None:
            if not self.resume:
                raise LaunchError(
                    "spec and shard_count are required unless resume=True"
                )
            try:
                payload = pickle.loads(spec_path.read_bytes())
            except (OSError, pickle.UnpicklingError, EOFError) as error:
                raise LaunchError(
                    f"cannot resume from {self.directory}: unreadable "
                    f"{SPEC_FILENAME} ({error})"
                ) from error
            stored_spec, stored_count = payload
            if spec is not None and spec_digest(spec) != spec_digest(stored_spec):
                raise LaunchError(
                    f"--resume grid does not match {spec_path}: digests "
                    f"{spec_digest(spec)} vs {spec_digest(stored_spec)}"
                )
            if shard_count is not None and shard_count != stored_count:
                raise LaunchError(
                    f"--resume shard count {shard_count} does not match the "
                    f"launch directory's {stored_count}"
                )
            return stored_spec, stored_count
        if self.resume and spec_path.exists():
            stored_spec, stored_count = pickle.loads(spec_path.read_bytes())
            if spec_digest(stored_spec) != spec_digest(spec):
                raise LaunchError(
                    f"--resume grid does not match {spec_path}: digests "
                    f"{spec_digest(spec)} vs {spec_digest(stored_spec)}"
                )
            if stored_count != shard_count:
                raise LaunchError(
                    f"--resume shard count {shard_count} does not match the "
                    f"launch directory's {stored_count}"
                )
        return spec, shard_count

    def _prepare(self) -> None:
        for path in (
            self.directory,
            self.shards_dir,
            self.staging_dir,
            self.heartbeats_dir,
            self.logs_dir,
        ):
            path.mkdir(parents=True, exist_ok=True)
        if not self.resume:
            # A compacted run's landed shards live in the snapshot, not
            # the (truncated) log — check both before clobbering.
            snapshot = Journal.read_snapshot(self.journal_path)
            landed = bool(snapshot and snapshot.get("landed")) or any(
                event.get("event") in ("land", "restore")
                for event in Journal.read_events(self.journal_path)
            )
            if landed:
                raise LaunchError(
                    f"{self.directory} already holds a journal with landed "
                    "shards; pass resume=True (repro launch --resume) to "
                    "continue it, or use a fresh directory"
                )
        if not self.spec_path.exists():
            self.spec_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.spec_path.with_suffix(".pkl.tmp")
            tmp.write_bytes(
                pickle.dumps((self.spec, self.plan.count), pickle.HIGHEST_PROTOCOL)
            )
            os.replace(tmp, self.spec_path)
        self.journal.append(
            "resume" if self.resume else "launch",
            digest=self.plan.digest,
            shard_count=self.plan.count,
            backend=getattr(self.backend, "name", type(self.backend).__name__),
            version=__version__,
            max_workers=self.max_workers,
            retry=dataclasses.asdict(self.retry),
            faults=self.injector.spec.describe() if self.injector else None,
        )
        # Remote backends journal their own events (host quarantine and
        # recovery) through this sink; local backends have none to emit.
        sink = getattr(self.backend, "set_event_sink", None)
        if sink is not None:
            sink(self.journal.append)

    def _restore(self) -> None:
        """Rebuild state from the launch directory (crash-safe resume).

        Landed shards are restored from their *validated* on-disk
        artifacts — the artifact, not the journal, is the ground truth
        (the journal may have lost its final line to the crash).  An
        artifact that fails validation (a half-written directory from a
        killed worker predating staging promotion, or bit rot) is
        removed and its shard re-run.  Attempt counters continue from
        the journal's high-water mark so heartbeat/staging names and
        fault draws never collide with the previous run's.
        """
        attempts_seen: dict[int, int] = {}
        # Replay = snapshot (compacted history) + tail (events since):
        # the snapshot holds the attempt high-water marks of everything
        # the last graceful exit folded away.
        snapshot = Journal.read_snapshot(self.journal_path)
        if snapshot:
            for shard_text, attempt in (snapshot.get("attempts") or {}).items():
                try:
                    attempts_seen[int(shard_text)] = int(attempt)
                except (TypeError, ValueError):
                    continue
        for event in Journal.read_events(self.journal_path):
            shard = event.get("shard")
            attempt = event.get("attempt")
            if isinstance(shard, int) and isinstance(attempt, int):
                attempts_seen[shard] = max(attempts_seen.get(shard, 0), attempt)
        for task in self._tasks.values():
            task.attempt_counter = attempts_seen.get(task.shard.index, 0)
            final = self.shards_dir / task.shard.artifact_name
            if not (final / MANIFEST_NAME).exists():
                if final.exists():
                    shutil.rmtree(final, ignore_errors=True)
                continue
            try:
                artifact = self._validated_artifact(final, task.shard)
            except ShardError as error:
                _LOG.warning(
                    "discarding invalid landed artifact %s: %s", final, error
                )
                shutil.rmtree(final, ignore_errors=True)
                continue
            task.state = ShardState.LANDED
            task.restored = True
            task.landed_attempt = task.attempt_counter or None
            self._merge_in(artifact)
            self._register_artifact(final)
            self.journal.append(
                "restore", shard=task.shard.index, rows=artifact.row_count
            )

    # -- lifecycle steps ------------------------------------------------ #
    def _validated_artifact(self, path: Path, shard: Shard) -> ShardArtifact:
        artifact = ShardArtifact.read(path)
        if artifact.spec_digest != self.plan.digest:
            raise ShardError(
                f"{path}: foreign spec digest {artifact.spec_digest} "
                f"(plan is {self.plan.digest})"
            )
        if artifact.shard_count != self.plan.count:
            raise ShardError(
                f"{path}: planned for {artifact.shard_count} shard(s), "
                f"expected {self.plan.count}"
            )
        if artifact.shard_indices != (shard.index,):
            raise ShardError(
                f"{path}: covers shards {artifact.shard_indices}, "
                f"expected ({shard.index},)"
            )
        return artifact

    def _merge_in(self, artifact: ShardArtifact) -> None:
        """Incremental streaming re-merge: fold one landed artifact into
        the running partial merge and republish ``merged.repro-shard``.
        Associativity of :func:`merge_artifacts` makes the left fold
        equal to the one-shot merge of everything at the end."""
        self._merged = (
            artifact
            if self._merged is None
            else merge_artifacts([self._merged, artifact])
        )
        self._merged.write(self.merged_path)

    def _register_artifact(self, path: Path, kind: str | None = None) -> None:
        """Index one promoted artifact in the cross-run catalog.

        Best-effort by design: the artifact on disk is the ground truth
        and a lost registration only costs a future cache miss, so a
        catalog hiccup (contended database on a dying disk, say) is
        logged and the run continues.
        """
        if self.catalog is None:
            return
        try:
            entry = self.catalog.register(path, kind=kind)
        except Exception:  # noqa: BLE001 - cataloging must never kill a run
            _LOG.exception("catalog registration failed for %s", path)
            return
        self.journal.append(
            "catalog-register",
            shard_key=entry.shard_key,
            kind=entry.kind,
            path=str(entry.path),
        )

    def _adopt_from_catalog(self) -> None:
        """Land pending shards some prior run already computed.

        For every still-pending shard, the catalog is asked for an
        ``ok``-status artifact under the shard's content-addressed key
        (which covers spec digest, shard count, index sets and code
        version, so foreign specs and stale versions cannot answer).
        A hit is copied into staging, its per-file digests re-verified,
        re-validated against *this* plan, and promoted exactly like a
        worker-produced artifact — so a rotten catalog entry degrades
        to a normal dispatch, never a wrong merge.
        """
        if self.catalog is None:
            return
        for task in sorted(self._tasks.values(), key=lambda t: t.shard.index):
            if task.state is not ShardState.PENDING:
                continue
            try:
                entry = self.catalog.lookup(task.shard.key)
            except Exception:  # noqa: BLE001 - catalog loss != launch loss
                _LOG.exception("catalog lookup failed; dispatching normally")
                return
            if entry is None:
                continue
            final = self.shards_dir / task.shard.artifact_name
            staging = (
                self.staging_dir
                / f"adopt-{task.shard.index:04d}{SHARD_SUFFIX}"
            )
            shutil.rmtree(staging, ignore_errors=True)
            try:
                shutil.copytree(entry.path, staging)
                verify_artifact_files(staging)
                artifact = self._validated_artifact(staging, task.shard)
            except (OSError, ShardError) as error:
                _LOG.warning(
                    "refusing catalog entry %s for shard %d: %s",
                    entry.path,
                    task.shard.index,
                    error,
                )
                shutil.rmtree(staging, ignore_errors=True)
                self.journal.append(
                    "adopt-reject",
                    shard=task.shard.index,
                    source=str(entry.path),
                    reason=str(error),
                )
                continue
            if final.exists():
                shutil.rmtree(final, ignore_errors=True)
            os.replace(staging, final)
            task.state = ShardState.LANDED
            task.adopted = True
            self._merge_in(artifact)
            self.journal.append(
                "adopt",
                shard=task.shard.index,
                source=str(entry.path),
                rows=artifact.row_count,
            )

    def _dispatch(self, task: _ShardTask, speculative: bool = False) -> None:
        task.attempt_counter += 1
        attempt = task.attempt_counter
        index = task.shard.index
        tag = f"shard-{index:04d}.attempt-{attempt:04d}"
        heartbeat_path = self.heartbeats_dir / f"{tag}.hb"
        heartbeat_path.parent.mkdir(parents=True, exist_ok=True)
        heartbeat_path.touch()  # dispatch counts as the first pulse
        ctx = DispatchContext(
            spec=self.spec,
            spec_path=self.spec_path,
            shard_index=index,
            shard_count=self.plan.count,
            attempt=attempt,
            staging_path=self.staging_dir / f"{tag}{SHARD_SUFFIX}",
            heartbeat_path=heartbeat_path,
            heartbeat_interval=self.heartbeat_interval,
            log_path=self.logs_dir / f"{tag}.log",
            shared_cache=str(self.shared_cache) if self.shared_cache else None,
            fault_text=self.injector.spec.describe() if self.injector else None,
            speculative=speculative,
        )
        handle = self.backend.dispatch(ctx)
        task.state = ShardState.RUNNING
        task.handles.append(handle)
        if speculative:
            task.speculated = True
            self._speculative_dispatches += 1
        else:
            task.budget_spent += 1
        self._dispatches += 1
        host = getattr(handle, "host", None)
        task.history.append(
            {
                "attempt": attempt,
                "host": host,
                "backend": getattr(
                    self.backend, "name", type(self.backend).__name__
                ),
                "speculative": speculative,
                "started": round(handle.started, 3),
            }
        )
        self.journal.append(
            "dispatch",
            shard=index,
            attempt=attempt,
            speculative=speculative,
            pid=handle.pid,
            host=host,
        )

    def _discard_staging(self, handle: WorkerHandle) -> None:
        shutil.rmtree(handle.staging_path, ignore_errors=True)

    def _record_outcome(
        self,
        task: _ShardTask,
        handle: WorkerHandle,
        outcome: str,
        cause: str | None = None,
        exit_code: int | None = None,
    ) -> None:
        """Close out the attempt-history record this handle opened."""
        for entry in reversed(task.history):
            if entry["attempt"] == handle.attempt:
                entry["outcome"] = outcome
                entry["duration_s"] = round(time.time() - handle.started, 6)
                if cause is not None:
                    entry["cause"] = cause
                if exit_code is not None:
                    entry["exit_code"] = exit_code
                break

    def _notify_backend(self, handle: WorkerHandle, ok: bool) -> None:
        """Feed per-host health tracking in backends that keep any."""
        record = getattr(self.backend, "record_attempt", None)
        if record is None:
            return
        try:
            record(handle, ok)
        except Exception:  # noqa: BLE001 - health tracking must not kill a run
            _LOG.exception("backend attempt-health callback failed")

    def _land(self, task: _ShardTask, handle: WorkerHandle, artifact: ShardArtifact) -> None:
        final = self.shards_dir / task.shard.artifact_name
        if (final / MANIFEST_NAME).exists():
            # A duplicate (speculative) attempt landed second; artifacts
            # are deterministic, so the copy is redundant, not a conflict.
            self._discard_staging(handle)
        else:
            if final.exists():
                shutil.rmtree(final, ignore_errors=True)
            os.replace(handle.staging_path, final)
        self._notify_backend(handle, ok=True)
        if task.state is ShardState.LANDED:
            return
        task.state = ShardState.LANDED
        task.landed_attempt = handle.attempt
        task.duration_s = time.time() - handle.started
        self._record_outcome(task, handle, "landed", exit_code=0)
        for other in task.handles:
            other.kill()
            self._discard_staging(other)
        task.handles.clear()
        self._merge_in(self._validated_artifact(final, task.shard))
        self._register_artifact(final)
        self.journal.append(
            "land",
            shard=task.shard.index,
            attempt=handle.attempt,
            rows=artifact.row_count,
            duration_s=round(task.duration_s, 6),
            speculative=handle.speculative,
            host=getattr(handle, "host", None),
        )

    def _attempt_failed(
        self,
        task: _ShardTask,
        handle: WorkerHandle,
        reason: str,
        orphaned: bool = False,
        cause: str | None = None,
        exit_code: int | None = None,
    ) -> None:
        self._discard_staging(handle)
        self._notify_backend(handle, ok=False)
        task.failures.append(f"attempt {handle.attempt}: {reason}")
        self._record_outcome(
            task,
            handle,
            "orphaned" if orphaned else "failed",
            cause=cause,
            exit_code=exit_code,
        )
        if orphaned:
            task.state = ShardState.ORPHANED
            self._orphaned_events += 1
        self.journal.append(
            "orphan" if orphaned else "fail",
            shard=task.shard.index,
            attempt=handle.attempt,
            reason=reason,
            cause=cause,
            speculative=handle.speculative,
            host=getattr(handle, "host", None),
        )
        if task.handles:
            # A duplicate attempt is still in flight; let it race on.
            task.state = ShardState.RUNNING
            return
        if task.budget_spent < self.retry.max_attempts:
            delay = self.retry.delay_s(
                task.budget_spent, token=f"{self.plan.digest}:{task.shard.index}"
            )
            task.not_before = time.monotonic() + delay
            task.state = ShardState.PENDING
            self.journal.append(
                "retry",
                shard=task.shard.index,
                next_attempt=task.attempt_counter + 1,
                delay_s=round(delay, 6),
            )
        else:
            task.state = ShardState.FAILED
            self.journal.append(
                "give-up",
                shard=task.shard.index,
                attempts=task.budget_spent,
                reasons=task.failures[-self.retry.max_attempts :],
            )

    def _reap(self) -> None:
        for task in self._tasks.values():
            for handle in list(task.handles):
                code = handle.poll()
                if code is None:
                    continue
                task.handles.remove(handle)
                if code == 0:
                    try:
                        artifact = self._validated_artifact(
                            handle.staging_path, task.shard
                        )
                    except ShardError as error:
                        self._attempt_failed(
                            task,
                            handle,
                            f"corrupt artifact: {error}",
                            cause="corrupt-artifact",
                            exit_code=code,
                        )
                        continue
                    self._land(task, handle, artifact)
                elif task.state is ShardState.LANDED:
                    self._discard_staging(handle)
                else:
                    detail = getattr(handle, "failure_detail", None)
                    reason = f"worker exited with code {code}"
                    if detail:
                        reason += f" ({detail})"
                    self._attempt_failed(
                        task,
                        handle,
                        reason,
                        cause=getattr(handle, "failure_cause", None) or "exit",
                        exit_code=code,
                    )

    def _check_liveness(self) -> None:
        now = time.time()
        for task in self._tasks.values():
            for handle in list(task.handles):
                try:
                    pulse = os.stat(handle.heartbeat_path).st_mtime
                except OSError:
                    pulse = handle.started
                stale = now - max(pulse, handle.started)
                reason = None
                cause = None
                if getattr(handle, "unreachable", False):
                    # Remote handles flag the host as unreachable after
                    # consecutive transport failures in their heartbeat
                    # relay — a distinct cause (the *network* died, not
                    # the worker), declared dead without waiting out the
                    # heartbeat timeout.
                    reason = (
                        f"host {getattr(handle, 'host', '?')} unreachable "
                        "(transport failures during heartbeat relay)"
                    )
                    cause = "unreachable"
                elif self.heartbeat_timeout and stale > self.heartbeat_timeout:
                    reason = (
                        f"heartbeat stale for {stale:.1f}s "
                        f"(timeout {self.heartbeat_timeout}s)"
                    )
                    cause = "heartbeat"
                elif (
                    self.shard_timeout
                    and now - handle.started > self.shard_timeout
                ):
                    reason = (
                        f"attempt exceeded shard timeout {self.shard_timeout}s"
                    )
                    cause = "timeout"
                if reason is None:
                    continue
                handle.kill()
                task.handles.remove(handle)
                self._attempt_failed(
                    task, handle, reason, orphaned=True, cause=cause
                )

    def _active_handles(self) -> int:
        return sum(len(task.handles) for task in self._tasks.values())

    def _dispatch_ready(self) -> None:
        free = self.max_workers - self._active_handles()
        if free <= 0:
            return
        now = time.monotonic()
        for task in sorted(self._tasks.values(), key=lambda t: t.shard.index):
            if free <= 0:
                break
            if task.state is not ShardState.PENDING or now < task.not_before:
                continue
            self._dispatch(task)
            free -= 1

    def _maybe_speculate(self) -> None:
        if not self.speculate:
            return
        free = self.max_workers - self._active_handles()
        if free <= 0:
            return
        landed = [t for t in self._tasks.values() if t.state is ShardState.LANDED]
        if len(landed) < self.speculation_threshold * self.plan.count:
            return
        if any(t.state is ShardState.PENDING for t in self._tasks.values()):
            return  # real work first
        durations = sorted(t.duration_s for t in landed if t.duration_s is not None)
        if not durations:
            return
        median = durations[len(durations) // 2]
        floor = max(median * self.speculation_factor, 4 * self.poll_interval)
        now = time.time()
        for task in self._tasks.values():
            if free <= 0:
                break
            if (
                task.state is not ShardState.RUNNING
                or task.speculated
                or len(task.handles) != 1
            ):
                continue
            if now - task.handles[0].started <= floor:
                continue
            self.journal.append("speculate", shard=task.shard.index)
            self._dispatch(task, speculative=True)
            free -= 1

    # -- teardown ------------------------------------------------------- #
    def _teardown_gc(self) -> None:
        if self.shared_cache is None:
            return
        if self.gc_max_age_days is None and self.gc_max_bytes is None:
            return
        report = SharedCacheDir(self.shared_cache).gc(
            max_age_days=self.gc_max_age_days, max_bytes=self.gc_max_bytes
        )
        self.journal.append(
            "cache-gc",
            removed_files=report.removed_files,
            removed_bytes=report.removed_bytes,
            kept_files=report.kept_files,
            kept_bytes=report.kept_bytes,
        )

    def _finalize(self, started: float) -> LaunchReport:
        landed = sorted(
            index
            for index, task in self._tasks.items()
            if task.state is ShardState.LANDED
        )
        failed = sorted(
            index
            for index, task in self._tasks.items()
            if task.state is ShardState.FAILED
        )
        restored = sorted(
            index for index, task in self._tasks.items() if task.restored
        )
        adopted = sorted(
            index for index, task in self._tasks.items() if task.adopted
        )
        exit_code = EXIT_COMPLETE if not failed else EXIT_PARTIAL
        failure_report_path = None
        if failed:
            points = self.spec.points()
            report_payload = {
                "kind": "repro-launch-failure-report",
                "version": __version__,
                "digest": self.plan.digest,
                "shard_count": self.plan.count,
                "landed_shards": landed,
                "failed_shards": [
                    {
                        "shard": index,
                        "attempts": self._tasks[index].budget_spent,
                        "reasons": self._tasks[index].failures,
                        # The full dispatch trail — which host ran each
                        # attempt, on which backend, how it ended and how
                        # long it took — so remote flakiness (one bad
                        # machine, a lossy link) is diagnosable from the
                        # report alone.
                        "attempt_history": self._tasks[index].history,
                        "point_indices": list(
                            self._tasks[index].shard.point_indices
                        ),
                        "point_cache_keys": [
                            points[i].cache_key
                            for i in self._tasks[index].shard.point_indices
                        ],
                        "relaunch": (
                            f"repro launch --resume --dir {self.directory}"
                        ),
                    }
                    for index in failed
                ],
            }
            describe_hosts = getattr(self.backend, "describe_hosts", None)
            if describe_hosts is not None:
                report_payload["hosts"] = describe_hosts()
            failure_report_path = self.failure_report_path
            tmp = failure_report_path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(report_payload, indent=2))
            os.replace(tmp, failure_report_path)
        csv_path = None
        if self._merged is not None and self.csv_path is not None:
            self._merged.result().write_csv(self.csv_path)
            csv_path = self.csv_path
        if self._merged is not None and not failed:
            # A complete merge is itself a reusable content-addressed
            # artifact (its shard key covers the full index union).
            self._register_artifact(self.merged_path, kind="merged")
        shutil.rmtree(self.staging_dir, ignore_errors=True)
        self._teardown_gc()
        # Graceful exit (complete or partial): fold the event log into a
        # snapshot so journals stay bounded across retry/resume cycles.
        # A later --resume replays snapshot + tail.
        self.journal.compact(
            {
                "digest": self.plan.digest,
                "shard_count": self.plan.count,
                "exit_code": exit_code,
                "attempts": {
                    str(index): task.attempt_counter
                    for index, task in sorted(self._tasks.items())
                    if task.attempt_counter
                },
                "landed": landed,
                "failed": failed,
            }
        )
        # Freeze the run clock: a finished run's /status payload must
        # report the final elapsed time, not keep counting wall-clock.
        self._finished = time.time()
        self.journal.append(
            "complete",
            exit_code=exit_code,
            landed=len(landed),
            failed=failed,
            duration_s=round(self._finished - started, 6),
        )
        return LaunchReport(
            digest=self.plan.digest,
            shard_count=self.plan.count,
            backend=getattr(self.backend, "name", type(self.backend).__name__),
            exit_code=exit_code,
            landed=landed,
            failed=failed,
            restored=restored,
            adopted=adopted,
            dispatches=self._dispatches,
            orphaned_events=self._orphaned_events,
            speculative_dispatches=self._speculative_dispatches,
            merged_path=self.merged_path if self._merged is not None else None,
            csv_path=csv_path,
            failure_report_path=failure_report_path,
            duration_s=self._finished - started,
            artifact=self._merged,
        )

    # -- live progress -------------------------------------------------- #
    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of the run for the progress API (read-only)."""
        shards = []
        counts: dict[str, int] = {state.value: 0 for state in ShardState}
        for index in sorted(self._tasks):
            task = self._tasks[index]
            counts[task.state.value] += 1
            last = task.history[-1] if task.history else {}
            shards.append(
                {
                    "index": index,
                    "state": task.state.value,
                    "attempts": task.attempt_counter,
                    "points": len(task.shard.point_indices),
                    "host": last.get("host"),
                    "speculated": task.speculated,
                    "restored": task.restored,
                    "adopted": task.adopted,
                    "duration_s": task.duration_s,
                }
            )
        merged = self._merged
        payload: dict[str, Any] = {
            "kind": "repro-launch-status",
            "version": __version__,
            "digest": self.plan.digest,
            "shard_count": self.plan.count,
            "backend": getattr(self.backend, "name", type(self.backend).__name__),
            "elapsed_s": (
                round((self._finished or time.time()) - self._started, 3)
                if self._started is not None
                else None
            ),
            "dispatches": self._dispatches,
            "speculative_dispatches": self._speculative_dispatches,
            "orphaned_events": self._orphaned_events,
            "states": counts,
            "shards": shards,
            "merge": (
                {
                    "covered_shards": list(merged.shard_indices),
                    "rows": merged.row_count,
                    "points": len(merged.points),
                }
                if merged is not None
                else None
            ),
        }
        describe_hosts = getattr(self.backend, "describe_hosts", None)
        if describe_hosts is not None:
            payload["hosts"] = describe_hosts()
        return payload

    # ------------------------------------------------------------------ #
    def run(self) -> LaunchReport:
        """Drive every shard to a terminal state and merge the results."""
        started = time.time()
        self._started = started
        self._prepare()
        if self.serve is not None:
            from repro.experiments.status import StatusServer

            self.status_server = StatusServer(
                self.snapshot,
                self.journal_path,
                address=self.serve,
                catalog=(
                    (lambda: self.catalog.summary(self.plan.digest))
                    if self.catalog is not None
                    else None
                ),
            )
            self.journal.append("serve", url=self.status_server.url)
        try:
            if self.resume:
                self._restore()
            self._adopt_from_catalog()
            while any(not task.state.terminal for task in self._tasks.values()):
                self._reap()
                self._check_liveness()
                self._dispatch_ready()
                self._maybe_speculate()
                if any(
                    not task.state.terminal for task in self._tasks.values()
                ):
                    time.sleep(self.poll_interval)
            self._reap()  # collect any attempt finished during the last sleep
            return self._finalize(started)
        finally:
            if self.status_server is not None:
                self.status_server.close()


def launch_sweep(
    spec: SweepSpec,
    shard_count: int,
    directory: str | Path,
    **kwargs: Any,
) -> LaunchReport:
    """Convenience wrapper: ``LaunchScheduler(directory, spec, count).run()``."""
    return LaunchScheduler(directory, spec, shard_count, **kwargs).run()


__all__ = [
    "BACKENDS",
    "EXIT_COMPLETE",
    "EXIT_INJECTED_CRASH",
    "EXIT_KILLED",
    "EXIT_PARTIAL",
    "FAULT_ENV",
    "FaultInjector",
    "FaultSpec",
    "Journal",
    "LaunchError",
    "LaunchReport",
    "LaunchScheduler",
    "ProcessBackend",
    "RetryPolicy",
    "ShardState",
    "ThreadBackend",
    "execute_shard_attempt",
    "launch_sweep",
]
