"""Subprocess entry point for :class:`~repro.experiments.scheduler.ProcessBackend`.

``python -m repro.experiments.worker --spec spec.pkl --index I --count N
--staging PATH --heartbeat PATH ...`` runs exactly one shard attempt via
:func:`~repro.experiments.scheduler.execute_shard_attempt` and exits
with the attempt's code (0 landed, 70 injected crash, nonzero failure).
Living in its own process means the scheduler can SIGKILL it, it can
``os._exit`` on an injected crash, and a hang in it never blocks the
scheduler loop.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from pathlib import Path

from repro.experiments.scheduler import (
    FaultInjector,
    FaultSpec,
    execute_shard_attempt,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.worker",
        description="Run one shard attempt for the repro launch scheduler.",
    )
    parser.add_argument("--spec", required=True, help="pickled (spec, count) file")
    parser.add_argument("--index", required=True, type=int)
    parser.add_argument("--count", required=True, type=int)
    parser.add_argument("--staging", required=True, help="artifact output path")
    parser.add_argument("--heartbeat", required=True, help="heartbeat file path")
    parser.add_argument("--interval", type=float, default=1.0)
    parser.add_argument("--attempt", type=int, default=1)
    parser.add_argument("--shared-cache", default=None)
    parser.add_argument("--fault-spec", default=None)
    return parser


#: Last log line of a worker that ran to an orderly exit.  Remote
#: backends use it to tell a worker's own exit status apart from the
#: transport's (``ssh`` reports 255 for connection failures *and*
#: forwards a worker's 255): transport codes never come with a sentinel.
EXIT_SENTINEL = "REPRO-WORKER-EXIT"


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    spec, stored_count = pickle.loads(Path(args.spec).read_bytes())
    if stored_count != args.count:
        raise SystemExit(
            f"spec file plans {stored_count} shard(s), worker asked for "
            f"{args.count}"
        )
    injector = (
        FaultInjector(FaultSpec.parse(args.fault_spec)) if args.fault_spec else None
    )
    code = execute_shard_attempt(
        spec,
        args.index,
        args.count,
        Path(args.staging),
        Path(args.heartbeat),
        args.interval,
        shared_cache=args.shared_cache,
        fault=injector,
        attempt=args.attempt,
        hard_crash=True,
    )
    # (An injected hard crash os._exit()s above and skips the sentinel —
    # exactly what a real segfault would do.)
    print(
        f"{EXIT_SENTINEL} code={code} shard={args.index} attempt={args.attempt}",
        flush=True,
    )
    return code


if __name__ == "__main__":
    sys.exit(main())
