"""Remote worker backends for :class:`~repro.experiments.scheduler.LaunchScheduler`.

The scheduler dispatches shard attempts through a *backend*; PR 7's
backends (thread, process) both run on the scheduler's machine.  This
module adds the network layer:

* a small **transport** interface (:class:`SshTransport`,
  :class:`LocalLoopbackTransport`) covering the five operations a remote
  attempt needs — stage a file, make a directory, start the worker,
  stat the remote heartbeat, fetch the artifact back;
* :class:`RemoteBackend` / :class:`SshBackend` / :class:`LoopbackBackend`
  which drive one shard attempt per remote host: stage ``spec.pkl``
  (once per host), run ``python -m repro.experiments.worker`` there,
  relay the remote heartbeat to the local file the scheduler watches,
  fetch the ``.repro-shard`` artifact, and verify it against the
  manifest's content digests before offering it for promotion;
* :class:`HostPool` per-host health tracking: a host is quarantined
  after ``quarantine_after`` consecutive failed attempts and its shards
  rebalance onto the surviving hosts through the scheduler's ordinary
  ORPHANED/FAILED → re-dispatch path (the merged output stays
  byte-identical — shard artifacts are deterministic, so it never
  matters *where* a shard ran).

Every network step is wrapped in :func:`with_retry` (capped-exponential
:class:`~repro.experiments.scheduler.RetryPolicy` at the transport
level) and is subject to the injected network faults
(``drop``/``stall``/``tear`` in ``REPRO_FAULT_SPEC``) so the whole
path is exercised hermetically over the loopback transport in tests and
CI — no real SSH required.

Failure taxonomy, mapped onto the scheduler's existing machinery:

==================  =====================================================
symptom             degradation
==================  =====================================================
dropped operation   transport retry; exhausted → attempt fails
                    (``EXIT_TRANSPORT``, cause ``transport``) →
                    shard re-dispatches
stalled operation   same, after a bounded ``stall_s`` wait
torn/corrupt fetch  content-digest verification fails → re-pull; a
                    persistently corrupt remote artifact exhausts the
                    retries (cause ``corrupt-transfer``) → re-dispatch
host unreachable    heartbeat relay fails ``unreachable_after`` times
                    in a row → ``handle.unreachable`` → scheduler
                    ORPHANs the attempt (cause ``unreachable``) and
                    re-dispatches; the host pool quarantines the host
                    after ``quarantine_after`` consecutive failures
==================  =====================================================
"""

from __future__ import annotations

import logging
import os
import shlex
import shutil
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Callable, Sequence

from repro.experiments.scheduler import (
    EXIT_KILLED,
    FAULT_ENV,
    DispatchContext,
    FaultInjector,
    LaunchError,
    RetryPolicy,
    WorkerHandle,
)
from repro.experiments.sharding import (
    MANIFEST_NAME,
    NUMERIC_NAME,
    ShardError,
    spec_digest,
    verify_artifact_files,
)

_LOG = logging.getLogger("repro.experiments.remote")

#: Attempt exit code: a transport operation failed after all retries.
EXIT_TRANSPORT = 72
#: Attempt exit code: the host stopped answering the heartbeat relay.
EXIT_UNREACHABLE = 73


class TransportError(RuntimeError):
    """A network/transport operation failed (retryable)."""


# ---------------------------------------------------------------------- #
# Transport-level retry
# ---------------------------------------------------------------------- #
def with_retry(
    policy: RetryPolicy,
    fn: Callable[[int], Any],
    *,
    token: str = "",
    cancel: threading.Event | None = None,
    description: str = "transport operation",
) -> Any:
    """Run ``fn(try_number)`` under ``policy``'s capped-exponential backoff.

    ``fn`` receives the 1-based try number (the injected-fault draw and
    the deterministic jitter both key on it).  Only
    :class:`TransportError` is retried — anything else is a bug and
    propagates.  ``cancel`` aborts both the waits and further tries.
    """
    last: TransportError | None = None
    for try_number in range(1, policy.max_attempts + 1):
        if cancel is not None and cancel.is_set():
            raise TransportError(f"{description} cancelled")
        try:
            return fn(try_number)
        except TransportError as error:
            last = error
            if try_number == policy.max_attempts:
                break
            delay = policy.delay_s(try_number, token)
            if cancel is not None:
                if cancel.wait(delay):
                    raise TransportError(f"{description} cancelled") from error
            else:
                time.sleep(delay)
    raise TransportError(
        f"{description} failed after {policy.max_attempts} tries: {last}"
    ) from last


# ---------------------------------------------------------------------- #
# Transports
# ---------------------------------------------------------------------- #
class SshTransport:
    """OpenSSH transport: ``scp`` for files, ``ssh`` for everything else.

    Non-interactive by construction (``BatchMode=yes`` — a host that
    would prompt for a password fails fast instead of hanging the
    fleet), with ``ConnectTimeout`` bounding every connection attempt
    and ``command_timeout`` bounding every helper command.  All
    failures surface as :class:`TransportError` so the caller's retry
    policy applies uniformly.
    """

    #: Shard workers cannot share an on-disk cache across machines.
    local_fs = False

    def __init__(
        self,
        host: str,
        *,
        connect_timeout: float = 10.0,
        command_timeout: float = 60.0,
        ssh_options: Sequence[str] = (),
    ):
        self.host = host
        self.connect_timeout = connect_timeout
        self.command_timeout = command_timeout
        self.ssh_options = tuple(ssh_options)

    def _base_options(self) -> list[str]:
        return [
            "-o",
            "BatchMode=yes",
            "-o",
            f"ConnectTimeout={int(self.connect_timeout)}",
            *self.ssh_options,
        ]

    def _check(self, argv: list[str], description: str) -> str:
        try:
            result = subprocess.run(
                argv,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                timeout=self.command_timeout,
                text=True,
            )
        except (OSError, subprocess.TimeoutExpired) as error:
            raise TransportError(f"{description} on {self.host}: {error}") from error
        if result.returncode != 0:
            detail = (result.stderr or result.stdout or "").strip()[-200:]
            raise TransportError(
                f"{description} on {self.host} exited "
                f"{result.returncode}: {detail}"
            )
        return result.stdout

    def resolve(self, remote: str) -> str:
        """The path as the *remote* process sees it (identity for SSH)."""
        return remote

    def ensure_dir(self, remote: str) -> None:
        self._check(
            ["ssh", *self._base_options(), self.host, f"mkdir -p {shlex.quote(remote)}"],
            f"mkdir -p {remote}",
        )

    def push(self, local: Path, remote: str) -> None:
        self._check(
            ["scp", *self._base_options(), "-r", "-q", str(local), f"{self.host}:{remote}"],
            f"push {local.name}",
        )

    def pull(self, remote: str, local: Path) -> None:
        local.parent.mkdir(parents=True, exist_ok=True)
        self._check(
            ["scp", *self._base_options(), "-r", "-q", f"{self.host}:{remote}", str(local)],
            f"pull {remote}",
        )

    def stat_mtime(self, remote: str) -> float | None:
        """Remote mtime in seconds, or ``None`` if the file is absent."""
        argv = [
            "ssh",
            *self._base_options(),
            self.host,
            f"stat -c %Y {shlex.quote(remote)} 2>&1 || echo REPRO-ENOENT",
        ]
        out = self._check(argv, f"stat {remote}").strip()
        if "REPRO-ENOENT" in out:
            return None
        try:
            return float(out.splitlines()[-1])
        except ValueError as error:
            raise TransportError(
                f"stat {remote} on {self.host}: unparsable {out!r}"
            ) from error

    def remove(self, remote: str) -> None:
        self._check(
            ["ssh", *self._base_options(), self.host, f"rm -rf {shlex.quote(remote)}"],
            f"rm -rf {remote}",
        )

    def run(
        self, argv: Sequence[str], log: IO, pythonpath: str | None = None
    ) -> subprocess.Popen:
        """Start the worker on the remote host; stdout/stderr → ``log``."""
        command = " ".join(shlex.quote(part) for part in argv)
        if pythonpath:
            command = f"PYTHONPATH={shlex.quote(pythonpath)} {command}"
        try:
            return subprocess.Popen(
                ["ssh", *self._base_options(), self.host, command],
                stdout=log,
                stderr=subprocess.STDOUT,
            )
        except OSError as error:
            raise TransportError(f"ssh spawn on {self.host}: {error}") from error


class LocalLoopbackTransport:
    """The transport interface over a local directory posing as a host.

    ``root`` is the fake remote filesystem; every remote path resolves
    under it.  Workers run as local subprocesses (same isolation as
    :class:`~repro.experiments.scheduler.ProcessBackend`), so the whole
    remote code path — stage → run → relay → fetch → digest-verify —
    is exercised hermetically in tests and CI without SSH.

    The transport can *die* (``die()``, or automatically after
    ``die_after_ops`` operations): every subsequent operation raises
    :class:`TransportError` and its running workers are killed —
    modelling a machine that drops off the network mid-run.
    """

    #: Same filesystem as the scheduler → shared cache passthrough is safe.
    local_fs = True

    def __init__(
        self, root: str | Path, *, name: str = "loopback", die_after_ops: int | None = None
    ):
        self.root = Path(root)
        self.name = name
        self.alive = True
        self.ops = 0
        self.die_after_ops = die_after_ops
        self._processes: list[subprocess.Popen] = []
        self._lock = threading.Lock()

    def die(self) -> None:
        """Simulate the host vanishing: fail all future ops, kill workers."""
        self.alive = False
        with self._lock:
            processes, self._processes = list(self._processes), []
        for process in processes:
            try:
                process.kill()
            except OSError:
                pass

    def _op(self) -> None:
        with self._lock:
            self.ops += 1
            if self.die_after_ops is not None and self.ops > self.die_after_ops:
                self.alive = False
        if not self.alive:
            self.die()
            raise TransportError(f"host {self.name} is unreachable (simulated)")

    def resolve(self, remote: str) -> str:
        return str(self.root / remote)

    def ensure_dir(self, remote: str) -> None:
        self._op()
        (self.root / remote).mkdir(parents=True, exist_ok=True)

    def push(self, local: Path, remote: str) -> None:
        self._op()
        target = self.root / remote
        target.parent.mkdir(parents=True, exist_ok=True)
        if Path(local).is_dir():
            if target.exists():
                shutil.rmtree(target)
            shutil.copytree(local, target)
        else:
            shutil.copy2(local, target)

    def pull(self, remote: str, local: Path) -> None:
        self._op()
        source = self.root / remote
        if not source.exists():
            raise TransportError(f"{self.name}: no such remote path {remote}")
        local.parent.mkdir(parents=True, exist_ok=True)
        if source.is_dir():
            if local.exists():
                shutil.rmtree(local)
            shutil.copytree(source, local)
        else:
            shutil.copy2(source, local)

    def stat_mtime(self, remote: str) -> float | None:
        self._op()
        try:
            return (self.root / remote).stat().st_mtime
        except FileNotFoundError:
            return None
        except OSError as error:
            raise TransportError(f"{self.name}: stat {remote}: {error}") from error

    def remove(self, remote: str) -> None:
        self._op()
        shutil.rmtree(self.root / remote, ignore_errors=True)

    def run(
        self, argv: Sequence[str], log: IO, pythonpath: str | None = None
    ) -> subprocess.Popen:
        self._op()
        env = dict(os.environ)
        env.pop(FAULT_ENV, None)  # faults travel by argv, as in ProcessBackend
        package_root = pythonpath or str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        try:
            process = subprocess.Popen(
                list(argv), stdout=log, stderr=subprocess.STDOUT, env=env
            )
        except OSError as error:
            raise TransportError(f"{self.name}: spawn failed: {error}") from error
        with self._lock:
            self._processes.append(process)
        return process


# ---------------------------------------------------------------------- #
# Host health
# ---------------------------------------------------------------------- #
@dataclass
class RemoteHost:
    """One machine in the fleet plus its health counters."""

    name: str
    transport: Any
    inflight: int = 0
    dispatches: int = 0
    landed: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "inflight": self.inflight,
            "dispatches": self.dispatches,
            "landed": self.landed,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "quarantined": self.quarantined,
        }


class HostPool:
    """Least-loaded host selection with quarantine on repeated failure.

    A host accumulating ``quarantine_after`` *consecutive* failed
    attempts stops receiving new dispatches; its shards rebalance onto
    the surviving hosts via the scheduler's normal re-dispatch path.  A
    later success (e.g. an attempt that was already in flight when the
    quarantine tripped) recovers the host.  If *every* host is
    quarantined the pool degrades to the least-bad host rather than
    deadlocking — a fully-partitioned fleet still makes progress
    attempts (and keeps failing fast) instead of hanging.
    """

    def __init__(
        self,
        hosts: Sequence[RemoteHost],
        *,
        quarantine_after: int = 3,
    ):
        if not hosts:
            raise LaunchError("remote backend needs at least one host")
        names = [host.name for host in hosts]
        if len(set(names)) != len(names):
            raise LaunchError(f"duplicate host names in fleet: {names}")
        self.hosts = {host.name: host for host in hosts}
        self.quarantine_after = quarantine_after
        self.event_sink: Callable[..., Any] | None = None

    def _emit(self, event: str, **fields: Any) -> None:
        if self.event_sink is not None:
            try:
                self.event_sink(event, **fields)
            except Exception:  # noqa: BLE001 - telemetry must not kill dispatch
                _LOG.exception("host event sink failed for %r", event)

    def pick(self) -> RemoteHost:
        healthy = [h for h in self.hosts.values() if not h.quarantined]
        if not healthy:
            healthy = list(self.hosts.values())
            self._emit(
                "host-pool-degraded",
                reason="all hosts quarantined; dispatching to least-bad host",
            )
        host = min(
            healthy,
            key=lambda h: (
                h.inflight,
                h.dispatches,
                h.consecutive_failures,
                h.name,
            ),
        )
        host.inflight += 1
        host.dispatches += 1
        return host

    def record(self, name: str, ok: bool) -> None:
        host = self.hosts.get(name)
        if host is None:
            return
        host.inflight = max(0, host.inflight - 1)
        if ok:
            host.landed += 1
            host.consecutive_failures = 0
            if host.quarantined:
                host.quarantined = False
                self._emit("host-recover", host=name)
        else:
            host.failures += 1
            host.consecutive_failures += 1
            if (
                not host.quarantined
                and host.consecutive_failures >= self.quarantine_after
            ):
                host.quarantined = True
                self._emit(
                    "host-quarantine",
                    host=name,
                    consecutive_failures=host.consecutive_failures,
                )

    def describe(self) -> list[dict[str, Any]]:
        return [self.hosts[name].describe() for name in sorted(self.hosts)]


# ---------------------------------------------------------------------- #
# The remote attempt
# ---------------------------------------------------------------------- #
def _tear_artifact(path: Path) -> None:
    """Injected ``tear`` fault: scribble over the fetched bytes, modelling
    a transfer that completed short/garbled without an error status."""
    numeric = path / NUMERIC_NAME
    target = numeric if numeric.exists() else path / MANIFEST_NAME
    if target.exists():
        target.write_bytes(b"\x00injected torn transfer\x00")


class _RemoteWorkerHandle(WorkerHandle):
    """One shard attempt on one remote host, driven by a local thread.

    The thread stages, runs, relays the heartbeat, fetches and
    verifies; the scheduler polls/kills the handle exactly like any
    local one.  Extra attributes the scheduler reads duck-typed:
    ``host``, ``unreachable``, ``failure_cause``, ``failure_detail``.
    """

    def __init__(self, backend: "RemoteBackend", host: RemoteHost, ctx: DispatchContext):
        super().__init__(ctx)
        self.host = host.name
        self.unreachable = False
        self.failure_cause: str | None = None
        self.failure_detail: str | None = None
        self._backend = backend
        self._host = host
        self._ctx = ctx
        self._stop = threading.Event()
        self._code: int | None = None
        self._process: subprocess.Popen | None = None
        self._log: IO | None = None
        self._tear_pending = False
        self._thread = threading.Thread(
            target=self._main,
            name=f"remote-shard:{ctx.shard_index}.{ctx.attempt}@{host.name}",
            daemon=True,
        )
        self._thread.start()

    # -- scheduler interface ------------------------------------------- #
    def poll(self) -> int | None:
        if self._thread.is_alive():
            return None
        return self._code if self._code is not None else 1

    def kill(self) -> None:
        self._stop.set()
        self._kill_process()

    def _kill_process(self) -> None:
        process = self._process
        if process is not None:
            try:
                process.kill()
                process.wait(timeout=10)
            except (OSError, subprocess.TimeoutExpired):
                pass

    # -- fault + retry plumbing ---------------------------------------- #
    def _network_fault(self, op: str, try_number: int) -> None:
        injector = self._backend.injector
        if injector is None:
            return
        mode = injector.draw_network(
            self.shard_index, self.attempt, op, try_number
        )
        if mode == "drop":
            raise TransportError(f"injected drop on {op} (try {try_number})")
        if mode == "stall":
            # A dead connection: no bytes move until the read timeout.
            if self._stop.wait(self._backend.stall_s):
                raise TransportError(f"{op} cancelled mid-stall")
            raise TransportError(
                f"injected stall on {op}: no data for {self._backend.stall_s}s"
            )
        if mode == "tear" and op == "fetch":
            # Only a transfer can tear; the draw is a no-op elsewhere.
            self._tear_pending = True

    def _transport_op(self, op: str, fn: Callable[[], Any]) -> Any:
        token = f"{self.host}:{self.shard_index}:{self.attempt}:{op}"

        def call(try_number: int) -> Any:
            self._network_fault(op, try_number)
            return fn()

        result = with_retry(
            self._backend.transport_retry,
            call,
            token=token,
            cancel=self._stop,
            description=f"{op} (shard {self.shard_index} on {self.host})",
        )
        # Transport liveness doubles as scheduler liveness while we are
        # between worker heartbeats (e.g. still staging).
        self._touch_local_heartbeat()
        return result

    def _touch_local_heartbeat(self) -> None:
        try:
            self.heartbeat_path.parent.mkdir(parents=True, exist_ok=True)
            self.heartbeat_path.touch()
        except OSError:
            pass

    # -- the attempt ---------------------------------------------------- #
    def _main(self) -> None:
        transport = self._host.transport
        attempt_dir = self._backend.attempt_dir(self._ctx)
        try:
            self._code = self._run_attempt(transport, attempt_dir)
        except TransportError as error:
            self.failure_cause = self.failure_cause or "transport"
            self.failure_detail = self.failure_detail or str(error)
            self._code = EXIT_TRANSPORT
        except Exception as error:  # noqa: BLE001 - attempt crash == exit 1
            _LOG.exception(
                "remote attempt for shard %d on %s crashed",
                self.shard_index,
                self.host,
            )
            self.failure_cause = "backend-crash"
            self.failure_detail = str(error)
            self._code = 1
        finally:
            self._kill_process()
            if self._log is not None:
                self._log.close()
                self._log = None
            if self._code == 0:
                # Only a landed attempt cleans up eagerly; failed
                # attempt dirs stay behind for post-mortems until the
                # host is reused for the same shard.
                try:
                    transport.remove(attempt_dir)
                except TransportError:
                    pass

    def _run_attempt(self, transport: Any, attempt_dir: str) -> int:
        ctx = self._ctx
        self._touch_local_heartbeat()
        self._backend.ensure_spec_staged(self._host, ctx, self)
        self._transport_op("stage", lambda: transport.ensure_dir(attempt_dir))

        artifact_remote = f"{attempt_dir}/artifact.repro-shard"
        heartbeat_remote = f"{attempt_dir}/heartbeat.hb"
        argv = self._backend.worker_argv(
            ctx, transport, artifact_remote, heartbeat_remote
        )
        ctx.log_path.parent.mkdir(parents=True, exist_ok=True)
        self._log = open(ctx.log_path, "ab")

        def _start() -> subprocess.Popen:
            return transport.run(
                argv, self._log, pythonpath=self._backend.pythonpath
            )

        self._process = self._transport_op("run", _start)
        self.pid = self._process.pid
        code = self._relay_until_exit(transport, heartbeat_remote)
        if code != 0:
            return code
        self._fetch_artifact(transport, artifact_remote)
        return 0

    def _relay_until_exit(self, transport: Any, heartbeat_remote: str) -> int:
        """Poll the worker while relaying its remote heartbeat locally.

        Consecutive relay failures (injected or real) mean the *host*
        has gone dark even though the worker may be fine — after
        ``unreachable_after`` of them the handle flags itself
        ``unreachable`` so the scheduler's liveness check ORPHANs the
        attempt and re-dispatches elsewhere.
        """
        last_mtime: float | None = None
        relay_failures = 0
        tick = 0
        while True:
            code = self._process.poll() if self._process is not None else 1
            if code is not None:
                return code
            if self._stop.wait(self._backend.relay_interval):
                self._kill_process()
                return EXIT_KILLED
            tick += 1
            try:
                self._network_fault("relay", tick)
                mtime = transport.stat_mtime(heartbeat_remote)
            except TransportError as error:
                relay_failures += 1
                if relay_failures >= self._backend.unreachable_after:
                    self.failure_cause = "unreachable"
                    self.failure_detail = (
                        f"{relay_failures} consecutive heartbeat-relay "
                        f"failures (last: {error})"
                    )
                    self._kill_process()
                    # Flag it and *park*: the scheduler's liveness check
                    # owns the UNREACHABLE → ORPHANED transition (so the
                    # re-dispatch takes the orphan path, not the plain
                    # failed-exit path) and kills this handle, which
                    # releases the wait below.
                    self.unreachable = True
                    self._stop.wait()
                    return EXIT_UNREACHABLE
                continue
            relay_failures = 0
            if mtime is not None and (last_mtime is None or mtime > last_mtime):
                last_mtime = mtime
                self._touch_local_heartbeat()

    def _fetch_artifact(self, transport: Any, artifact_remote: str) -> None:
        """Pull the artifact and verify it against its content digests.

        A torn transfer (injected or real) fails verification and is
        re-pulled under the transport retry policy; bytes that are
        corrupt *at the source* keep failing until the retries exhaust,
        which fails the attempt (cause ``corrupt-transfer``) and lets
        the scheduler re-dispatch the shard — exactly the degradation a
        local corrupt write gets.
        """

        def pull() -> None:
            if self.staging_path.exists():
                shutil.rmtree(self.staging_path)
            transport.pull(artifact_remote, self.staging_path)
            if self._tear_pending:
                self._tear_pending = False
                _tear_artifact(self.staging_path)
            try:
                verify_artifact_files(self.staging_path)
            except ShardError as error:
                self.failure_cause = "corrupt-transfer"
                raise TransportError(
                    f"fetched artifact failed digest verification: {error}"
                ) from error

        try:
            self._transport_op("fetch", pull)
        except TransportError:
            # Never leave a half-fetched artifact where the scheduler
            # could mistake it for a worker-produced one.
            shutil.rmtree(self.staging_path, ignore_errors=True)
            raise
        self.failure_cause = None  # verification retries that later passed


# ---------------------------------------------------------------------- #
# Backends
# ---------------------------------------------------------------------- #
class RemoteBackend:
    """Dispatches shard attempts to a fleet of hosts over a transport.

    The scheduler talks to it through the same duck-typed surface as
    the local backends (``dispatch`` → handle with ``poll``/``kill``)
    plus three optional hooks it already probes for:
    ``set_event_sink`` (journal access for host events),
    ``record_attempt`` (per-host health accounting) and
    ``describe_hosts`` (failure report / progress API).
    """

    name = "remote"

    def __init__(
        self,
        hosts: Sequence[RemoteHost],
        *,
        remote_root: str = ".repro-remote",
        python: str = "python3",
        pythonpath: str | None = None,
        transport_retry: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        quarantine_after: int = 3,
        relay_interval: float = 0.5,
        unreachable_after: int = 4,
        stall_s: float = 5.0,
    ):
        self.pool = HostPool(hosts, quarantine_after=quarantine_after)
        self.remote_root = remote_root.rstrip("/")
        self.python = python
        self.pythonpath = pythonpath
        self.transport_retry = (
            transport_retry
            if transport_retry is not None
            else RetryPolicy(max_attempts=3, base_delay_s=0.1, max_delay_s=2.0)
        )
        self.injector = injector
        self.relay_interval = relay_interval
        self.unreachable_after = unreachable_after
        self.stall_s = stall_s
        self._staged: set[tuple[str, str]] = set()
        self._stage_locks: dict[str, threading.Lock] = {}
        self._lock = threading.Lock()
        self._digest: str | None = None

    # -- scheduler hooks ------------------------------------------------ #
    def dispatch(self, ctx: DispatchContext) -> WorkerHandle:
        host = self.pool.pick()
        return _RemoteWorkerHandle(self, host, ctx)

    def record_attempt(self, handle: WorkerHandle, ok: bool) -> None:
        host = getattr(handle, "host", None)
        if host is not None:
            self.pool.record(host, ok)

    def set_event_sink(self, sink: Callable[..., Any]) -> None:
        self.pool.event_sink = sink

    def describe_hosts(self) -> list[dict[str, Any]]:
        return self.pool.describe()

    # -- remote layout --------------------------------------------------- #
    def _plan_digest(self, ctx: DispatchContext) -> str:
        with self._lock:
            if self._digest is None:
                self._digest = spec_digest(ctx.spec)
            return self._digest

    def remote_base(self, ctx: DispatchContext) -> str:
        return f"{self.remote_root}/{self._plan_digest(ctx)[:16]}"

    def attempt_dir(self, ctx: DispatchContext) -> str:
        return (
            f"{self.remote_base(ctx)}/"
            f"shard-{ctx.shard_index}.attempt-{ctx.attempt}"
        )

    def spec_remote(self, ctx: DispatchContext) -> str:
        return f"{self.remote_base(ctx)}/spec.pkl"

    def ensure_spec_staged(
        self, host: RemoteHost, ctx: DispatchContext, handle: _RemoteWorkerHandle
    ) -> None:
        """Stage ``spec.pkl`` once per (host, plan); concurrent attempts
        on the same host serialize on a per-host lock so only one pays."""
        key = (host.name, self._plan_digest(ctx))
        with self._lock:
            if key in self._staged:
                return
            lock = self._stage_locks.setdefault(host.name, threading.Lock())
        with lock:
            with self._lock:
                if key in self._staged:
                    return
            base = self.remote_base(ctx)

            def stage() -> None:
                host.transport.ensure_dir(base)
                host.transport.push(ctx.spec_path, self.spec_remote(ctx))

            handle._transport_op("stage", stage)
            with self._lock:
                self._staged.add(key)

    def worker_argv(
        self,
        ctx: DispatchContext,
        transport: Any,
        artifact_remote: str,
        heartbeat_remote: str,
    ) -> list[str]:
        argv = [
            self.python,
            "-m",
            "repro.experiments.worker",
            "--spec", transport.resolve(self.spec_remote(ctx)),
            "--index", str(ctx.shard_index),
            "--count", str(ctx.shard_count),
            "--staging", transport.resolve(artifact_remote),
            "--heartbeat", transport.resolve(heartbeat_remote),
            "--interval", str(ctx.heartbeat_interval),
            "--attempt", str(ctx.attempt),
        ]
        if ctx.shared_cache and getattr(transport, "local_fs", False):
            # A shared on-disk cache only makes sense when the "remote"
            # host really shares our filesystem (loopback).
            argv += ["--shared-cache", str(ctx.shared_cache)]
        if ctx.fault_text:
            argv += ["--fault-spec", ctx.fault_text]
        return argv


def parse_hosts(text: str) -> list[str]:
    """Hosts from ``a,b`` / one-per-line text; ``#`` starts a comment."""
    hosts: list[str] = []
    for chunk in text.replace(",", "\n").splitlines():
        entry = chunk.split("#", 1)[0].strip()
        if entry:
            hosts.append(entry)
    return hosts


class SshBackend(RemoteBackend):
    """Real fleet dispatch over OpenSSH.

    ``hosts`` accepts ``user@host`` strings (from ``--hosts`` or a
    hosts file via :func:`parse_hosts`).  The remote machines need a
    Python with ``repro`` importable — either installed, or a checkout
    whose ``src`` is passed as ``pythonpath`` (exported into the worker
    command's environment).
    """

    name = "ssh"

    def __init__(
        self,
        hosts: Sequence[str],
        *,
        connect_timeout: float = 10.0,
        command_timeout: float = 60.0,
        ssh_options: Sequence[str] = (),
        **kwargs: Any,
    ):
        entries = [
            RemoteHost(
                name=host,
                transport=SshTransport(
                    host,
                    connect_timeout=connect_timeout,
                    command_timeout=command_timeout,
                    ssh_options=ssh_options,
                ),
            )
            for host in hosts
        ]
        super().__init__(entries, **kwargs)


class LoopbackBackend(RemoteBackend):
    """A hermetic fleet of :class:`LocalLoopbackTransport` "hosts".

    Each named host gets its own fake remote filesystem under
    ``root/<name>`` and runs workers as local subprocesses.  Used by
    tests and the CI remote-smoke job to exercise the full remote path
    (including injected network faults and host death) with zero
    network dependencies.
    """

    name = "loopback"

    def __init__(
        self,
        root: str | Path,
        host_names: Sequence[str] = ("loop-a", "loop-b"),
        *,
        die_after_ops: dict[str, int] | None = None,
        **kwargs: Any,
    ):
        root = Path(root)
        kwargs.setdefault("python", sys.executable)
        entries = [
            RemoteHost(
                name=name,
                transport=LocalLoopbackTransport(
                    root / name,
                    name=name,
                    die_after_ops=(die_after_ops or {}).get(name),
                ),
            )
            for name in host_names
        ]
        super().__init__(entries, **kwargs)


__all__ = [
    "EXIT_TRANSPORT",
    "EXIT_UNREACHABLE",
    "HostPool",
    "LocalLoopbackTransport",
    "LoopbackBackend",
    "RemoteBackend",
    "RemoteHost",
    "SshBackend",
    "SshTransport",
    "TransportError",
    "parse_hosts",
    "with_retry",
]
