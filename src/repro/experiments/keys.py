"""Stable content-addressed keys for simulation memoization.

Every cacheable artifact (a :class:`~repro.simulator.engine.WorkloadProfile`,
a per-policy :class:`~repro.gating.report.EnergyReport`, a finished sweep
row) is addressed by a SHA-256 hash of a canonical JSON rendering of the
inputs that determine it.  Canonicalization recurses through dataclasses,
enums, mappings and sequences, so hashing a
:class:`~repro.core.config.SimulationConfig` (which nests chip specs,
gating parameters and policy tuples) is deterministic across processes
and Python invocations — a requirement for the on-disk cache and for the
parallel sweep runner, whose workers hash in separate interpreters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

from repro import __version__
from repro.core.config import SimulationConfig
from repro.gating.bet import GatingParameters
from repro.hardware.chips import NPUChipSpec
from repro.workloads.base import ParallelismConfig

#: Hex digest prefix length used as a key: 32 chars = 128 bits, which
#: makes accidental collisions negligible at any realistic cache size.
KEY_HEX_CHARS = 32

#: Stamped into every domain key.  The hash covers the *inputs* of a
#: simulation, not the simulator code; tying keys to the release version
#: at least invalidates on-disk caches across upgrades.  (Same-version
#: source edits still require deleting the cache file — see
#: docs/experiments.md.)
CACHE_SCHEMA_VERSION = __version__


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical structure.

    Dataclasses become ``{"__type__": name, fields...}`` so two different
    dataclass types with identical fields cannot collide; enums collapse
    to their value; mappings are key-sorted; sequences become lists.
    """
    if isinstance(value, Enum):
        # Checked before the plain types: the project's enums subclass str.
        return {"__enum__": type(value).__name__, "value": value.value}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() is the shortest round-trip representation; it keeps the
        # canonical form bit-faithful to the double.
        return repr(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        rendered: dict[str, Any] = {"__type__": type(value).__name__}
        for field in dataclasses.fields(value):
            rendered[field.name] = canonical(getattr(value, field.name))
        return rendered
    if isinstance(value, dict):
        return {str(key): canonical(val) for key, val in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical(item) for item in value)
    raise TypeError(f"cannot canonicalize {type(value).__name__!r} for hashing")


def stable_hash(value: Any) -> str:
    """Hex digest of the canonical JSON rendering of ``value``."""
    payload = json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:KEY_HEX_CHARS]


# ---------------------------------------------------------------------- #
# Domain-specific keys
# ---------------------------------------------------------------------- #
def profile_key(
    workload: str,
    chip: NPUChipSpec,
    batch_size: int,
    parallelism: ParallelismConfig,
    apply_fusion: bool,
) -> str:
    """Key of a :class:`WorkloadProfile` (independent of policies/gating)."""
    return stable_hash(
        {
            "kind": "profile",
            "version": CACHE_SCHEMA_VERSION,
            "workload": workload,
            "chip": chip,
            "batch_size": batch_size,
            "parallelism": parallelism,
            "apply_fusion": apply_fusion,
        }
    )


def report_key(profile: str, policy: str, parameters: GatingParameters) -> str:
    """Key of one policy's :class:`EnergyReport` on one profile."""
    return stable_hash(
        {
            "kind": "report",
            "version": CACHE_SCHEMA_VERSION,
            "profile": profile,
            "policy": policy,
            "parameters": parameters,
        }
    )


def point_key(workload: str, config: SimulationConfig) -> str:
    """Key of one fully-specified sweep point (workload + configuration).

    The chip is resolved through the registry first so that
    ``chip="NPU-D"`` and ``chip=get_chip("NPU-D")`` address the same
    cache entry.
    """
    return stable_hash(
        {
            "kind": "point",
            "version": CACHE_SCHEMA_VERSION,
            "workload": workload,
            "config": dataclasses.replace(config, chip=config.resolve_chip()),
        }
    )


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "KEY_HEX_CHARS",
    "canonical",
    "point_key",
    "profile_key",
    "report_key",
    "stable_hash",
]
