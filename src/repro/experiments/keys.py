"""Stable content-addressed keys for simulation memoization.

Every cacheable artifact (a :class:`~repro.simulator.engine.WorkloadProfile`,
a per-policy :class:`~repro.gating.report.EnergyReport`, a finished sweep
row) is addressed by a SHA-256 hash of a canonical JSON rendering of the
inputs that determine it.  Canonicalization recurses through dataclasses,
enums, mappings and sequences, so hashing a
:class:`~repro.core.config.SimulationConfig` (which nests chip specs,
gating parameters and policy tuples) is deterministic across processes
and Python invocations — a requirement for the on-disk cache and for the
parallel sweep runner, whose workers hash in separate interpreters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import weakref
from enum import Enum
from pathlib import Path
from typing import Any

from repro import __version__
from repro.core.config import SimulationConfig
from repro.gating.bet import GatingParameters
from repro.hardware.chips import NPUChipSpec
from repro.workloads.base import ParallelismConfig

#: Hex digest prefix length used as a key: 32 chars = 128 bits, which
#: makes accidental collisions negligible at any realistic cache size.
KEY_HEX_CHARS = 32

#: Stamped into every domain key.  The hash covers the *inputs* of a
#: simulation, not the simulator code; tying keys to the release version
#: at least invalidates on-disk caches across upgrades.  (Same-version
#: source edits still require deleting the cache file — see
#: docs/experiments.md.)
CACHE_SCHEMA_VERSION = __version__


#: Immutable spec types that appear, unchanged, in thousands of keys per
#: sweep (every point hashes the same chip spec and gating parameters).
#: They collapse to a content digest computed once per instance, so the
#: hot key path serializes a 32-char string instead of re-walking (and
#: re-JSON-encoding) a deeply nested dataclass.  Digests are themselves
#: canonical hashes, so they stay deterministic across processes — a
#: requirement for the parallel runner and the on-disk cache.
_DIGESTED_TYPES = (NPUChipSpec, GatingParameters)

#: id(instance) -> digest dict, evicted by weakref.finalize when the
#: instance is collected (before its id can be reused).
_DIGEST_MEMO: dict[int, dict[str, str]] = {}


def _digested(value: Any) -> dict[str, str]:
    key = id(value)
    hit = _DIGEST_MEMO.get(key)
    if hit is None:
        hit = {
            "__type__": type(value).__name__,
            "__digest__": stable_hash(_canonical_dataclass(value)),
        }
        _DIGEST_MEMO[key] = hit
        weakref.finalize(value, _DIGEST_MEMO.pop, key, None)
    return hit


def _canonical_dataclass(value: Any) -> dict[str, Any]:
    rendered: dict[str, Any] = {"__type__": type(value).__name__}
    for field in dataclasses.fields(value):
        rendered[field.name] = canonical(getattr(value, field.name))
    return rendered


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical structure.

    Dataclasses become ``{"__type__": name, fields...}`` so two different
    dataclass types with identical fields cannot collide; enums collapse
    to their value; mappings are key-sorted; sequences become lists.
    Shared immutable specs (chips, gating parameters) collapse to a
    memoized content digest — see :data:`_DIGESTED_TYPES`.
    """
    if isinstance(value, Enum):
        # Checked before the plain types: the project's enums subclass str.
        return {"__enum__": type(value).__name__, "value": value.value}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() is the shortest round-trip representation; it keeps the
        # canonical form bit-faithful to the double.
        return repr(value)
    if isinstance(value, _DIGESTED_TYPES):
        return _digested(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical_dataclass(value)
    if isinstance(value, dict):
        return {str(key): canonical(val) for key, val in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical(item) for item in value)
    raise TypeError(f"cannot canonicalize {type(value).__name__!r} for hashing")


def stable_hash(value: Any) -> str:
    """Hex digest of the canonical JSON rendering of ``value``."""
    payload = json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:KEY_HEX_CHARS]


def file_digest(path: str | Path) -> str:
    """Streaming SHA-256 of one file (``sha256:<hex>``), O(1) memory.

    The content digest recorded per column store in every shard
    manifest, re-checked by
    :func:`~repro.experiments.sharding.verify_artifact_files` and the
    experiment catalog's integrity pass.  Full-width (not truncated to
    :data:`KEY_HEX_CHARS`): these digests guard against corruption, not
    just collisions, and the on-disk format already shipped them at
    full width.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return f"sha256:{digest.hexdigest()}"


# ---------------------------------------------------------------------- #
# Domain-specific keys
# ---------------------------------------------------------------------- #
# Steady-state memo for the two hottest domain keys: a sweep hashes the
# same (workload, chip, ...) tuples on every run, and the shared chip /
# parameter instances make an identity-based lookup key cheap.  Values
# are full stable hashes, so the memo changes nothing content-wise.
# When an instance whose id anchors memo entries is collected, those
# entries are evicted before the id can be reused.
_DOMAIN_KEY_MEMO: dict[tuple, str] = {}
_DOMAIN_KEYS_BY_INSTANCE: dict[int, list[tuple]] = {}


def _evict_domain_keys_for(instance_id: int) -> None:
    for key in _DOMAIN_KEYS_BY_INSTANCE.pop(instance_id, ()):
        _DOMAIN_KEY_MEMO.pop(key, None)


def _remember_domain_key(anchor: Any, memo_key: tuple, value: str) -> None:
    _DOMAIN_KEY_MEMO[memo_key] = value
    anchor_id = id(anchor)
    keys = _DOMAIN_KEYS_BY_INSTANCE.get(anchor_id)
    if keys is None:
        keys = []
        _DOMAIN_KEYS_BY_INSTANCE[anchor_id] = keys
        weakref.finalize(anchor, _evict_domain_keys_for, anchor_id)
    keys.append(memo_key)


def profile_key(
    workload: str,
    chip: NPUChipSpec,
    batch_size: int,
    parallelism: ParallelismConfig,
    apply_fusion: bool,
) -> str:
    """Key of a :class:`WorkloadProfile` (independent of policies/gating)."""
    memo_key = ("profile", workload, id(chip), batch_size, parallelism, apply_fusion)
    cached = _DOMAIN_KEY_MEMO.get(memo_key)
    if cached is None:
        cached = stable_hash(
            {
                "kind": "profile",
                "version": CACHE_SCHEMA_VERSION,
                "workload": workload,
                "chip": chip,
                "batch_size": batch_size,
                "parallelism": parallelism,
                "apply_fusion": apply_fusion,
            }
        )
        _remember_domain_key(chip, memo_key, cached)
    return cached


def report_key(profile: str, policy: str, parameters: GatingParameters) -> str:
    """Key of one policy's :class:`EnergyReport` on one profile."""
    memo_key = ("report", profile, policy, id(parameters))
    cached = _DOMAIN_KEY_MEMO.get(memo_key)
    if cached is None:
        cached = stable_hash(
            {
                "kind": "report",
                "version": CACHE_SCHEMA_VERSION,
                "profile": profile,
                "policy": policy,
                "parameters": parameters,
            }
        )
        _remember_domain_key(parameters, memo_key, cached)
    return cached


def shard_key(
    spec_digest: str,
    shard_count: int,
    shard_indices: Any,
    point_indices: Any,
) -> str:
    """Key of one shard artifact (single shard or a merged union).

    Content-addressed over the spec digest, the plan's shard count and
    the covered shard/point index sets, so two artifacts carry the same
    key exactly when they cover the same slice of the same plan.  Order
    of the index sequences does not matter (they are sorted first).
    """
    return stable_hash(
        {
            "kind": "shard",
            "version": CACHE_SCHEMA_VERSION,
            "spec": spec_digest,
            "count": shard_count,
            "shards": sorted(shard_indices),
            "points": sorted(point_indices),
        }
    )


def point_key(workload: str, config: SimulationConfig) -> str:
    """Key of one fully-specified sweep point (workload + configuration).

    The chip is resolved through the registry first so that
    ``chip="NPU-D"`` and ``chip=get_chip("NPU-D")`` address the same
    cache entry.
    """
    return stable_hash(
        {
            "kind": "point",
            "version": CACHE_SCHEMA_VERSION,
            "workload": workload,
            "config": dataclasses.replace(config, chip=config.resolve_chip()),
        }
    )


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "KEY_HEX_CHARS",
    "canonical",
    "file_digest",
    "point_key",
    "profile_key",
    "report_key",
    "shard_key",
    "stable_hash",
]
