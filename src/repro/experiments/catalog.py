"""Content-addressed experiment catalog: durable, verified artifact reuse.

Sweep artifacts survive crashes, faults and flaky networks (the
scheduler, journal and digest-verified transport), but until now nothing
answered *"has any run, anywhere, already computed this?"* — a killed
fleet or a re-launched overlapping spec silently recomputed everything,
and a corrupted artifact was only discovered when a merge happened to
read it.  :class:`ExperimentCatalog` closes that gap: a SQLite-backed
index over ``.repro-shard`` artifacts keyed by the content digests the
artifacts already carry.

Design:

* **One row per artifact**, primary-keyed by the artifact's
  content-addressed :func:`~repro.experiments.keys.shard_key` — which
  covers the spec digest, the plan's shard count, the covered shard and
  point index sets *and* the cache-schema version.  Two artifacts share
  a key exactly when they are interchangeable; artifacts from another
  release or another grid can never answer a lookup, so stale-version
  and foreign-spec reuse is refused by construction (and re-checked
  explicitly from the recorded ``version`` column).
* **Registration is metadata-only**: the manifest the artifact writer
  already produced (spec digest, shard key, per-file SHA-256 digests,
  row accounting, code version) is copied into the row.  The catalog
  never re-hashes column stores on the hot path — that is what
  :meth:`verify` is for.
* **Crash-safe, multi-process-safe**: the database runs in WAL mode,
  every mutation is one transaction, and writers retry on lock
  contention with a deterministic backoff.  Concurrent schedulers
  registering the same (content-addressed) artifact are idempotent —
  last writer wins with identical content.
* **Self-healing**: :meth:`verify` re-checks every recorded digest
  against the bytes on disk and marks entries ``corrupt`` / ``missing``
  / ``outdated``; :meth:`repair` evicts the flagged entries and reports
  exactly which shards (and sweep points) need re-running.  Lookups
  only ever return ``ok`` entries, and the scheduler re-verifies an
  adopted artifact's digests before trusting it — a rotten entry
  degrades to a cache miss, never a wrong merge.

The scheduler integration (``repro launch --catalog``) registers every
artifact at promotion time and adopts already-landed shards from prior
runs before dispatching workers — cross-run resume with byte-identical
results, because shard artifacts are deterministic functions of their
plan slice.
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Iterable

from repro import __version__
from repro.experiments.keys import file_digest
from repro.experiments.sharding import (
    MANIFEST_NAME,
    SHARD_SCHEMA,
    ShardError,
    load_manifest,
    verify_artifact_files,
)

#: Catalog database schema generation (bumped when the table changes shape).
CATALOG_SCHEMA = 1

#: Default database filename (``repro launch --catalog DIR`` appends it
#: when handed a directory).
CATALOG_DB_NAME = "catalog.sqlite"

#: Entry statuses.  ``ok`` is the only status :meth:`lookup` serves.
STATUS_OK = "ok"
STATUS_CORRUPT = "corrupt"
STATUS_MISSING = "missing"
STATUS_OUTDATED = "outdated"

_BAD_STATUSES = (STATUS_CORRUPT, STATUS_MISSING, STATUS_OUTDATED)

#: Lock-contention retry schedule (seconds) on top of SQLite's own busy
#: timeout; WAL writers block each other only for the commit itself, so
#: a handful of short waits rides out any realistic register storm.
_BUSY_TIMEOUT_S = 10.0
_RETRIES = 5
_RETRY_DELAY_S = 0.05


class CatalogError(RuntimeError):
    """The catalog database or a registration argument is unusable."""


@dataclasses.dataclass(frozen=True)
class CatalogEntry:
    """One cataloged artifact (a row of the ``artifacts`` table)."""

    shard_key: str
    kind: str  # "shard" (one index) or "merged" (a union)
    spec_digest: str
    shard_count: int
    shard_indices: tuple[int, ...]
    point_indices: tuple[int, ...]
    row_count: int
    version: str
    shard_schema: int
    path: Path
    files: dict[str, str]
    registered_at: float
    verified_at: float | None
    status: str

    def to_json(self) -> dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["path"] = str(self.path)
        payload["shard_indices"] = list(self.shard_indices)
        payload["point_indices"] = list(self.point_indices)
        return payload

    def describe(self) -> str:
        indices = ",".join(map(str, self.shard_indices))
        return (
            f"{self.shard_key}  {self.kind:<6} shards [{indices}] of "
            f"{self.shard_count}  {self.row_count} row(s)  "
            f"v{self.version}  {self.status:<8} {self.path}"
        )


@dataclasses.dataclass
class CatalogVerifyReport:
    """Outcome of one :meth:`ExperimentCatalog.verify` pass."""

    checked: int = 0
    ok: int = 0
    corrupt: list[CatalogEntry] = dataclasses.field(default_factory=list)
    missing: list[CatalogEntry] = dataclasses.field(default_factory=list)
    outdated: list[CatalogEntry] = dataclasses.field(default_factory=list)

    @property
    def flagged(self) -> list[CatalogEntry]:
        return [*self.corrupt, *self.missing, *self.outdated]

    def describe(self) -> str:
        lines = [
            f"checked       : {self.checked} entr(ies)",
            f"ok            : {self.ok}",
        ]
        for label, entries in (
            ("corrupt", self.corrupt),
            ("missing", self.missing),
            ("outdated", self.outdated),
        ):
            lines.append(f"{label:<14}: {len(entries)}")
            for entry in entries:
                lines.append(f"  {entry.path} (shards {list(entry.shard_indices)})")
        return "\n".join(lines)


@dataclasses.dataclass
class CatalogRepairReport:
    """Outcome of one :meth:`ExperimentCatalog.repair` pass."""

    verify: CatalogVerifyReport
    evicted: list[CatalogEntry] = dataclasses.field(default_factory=list)

    def rerun_shards(self) -> dict[str, list[int]]:
        """Per spec digest, the sorted shard indices needing a re-run."""
        shards: dict[str, set[int]] = {}
        for entry in self.evicted:
            shards.setdefault(entry.spec_digest, set()).update(
                entry.shard_indices
            )
        return {digest: sorted(ids) for digest, ids in sorted(shards.items())}

    def rerun_points(self) -> dict[str, list[int]]:
        """Per spec digest, the sorted point indices needing a re-run."""
        points: dict[str, set[int]] = {}
        for entry in self.evicted:
            points.setdefault(entry.spec_digest, set()).update(
                entry.point_indices
            )
        return {digest: sorted(ids) for digest, ids in sorted(points.items())}

    def describe(self) -> str:
        lines = [self.verify.describe(), f"evicted       : {len(self.evicted)}"]
        for digest, shards in self.rerun_shards().items():
            points = self.rerun_points().get(digest, [])
            lines.append(
                f"re-run        : spec {digest} shards {shards} "
                f"({len(points)} point(s))"
            )
        if not self.evicted:
            lines.append("re-run        : nothing (catalog is healthy)")
        return "\n".join(lines)


def _entry_from_row(row: sqlite3.Row) -> CatalogEntry:
    return CatalogEntry(
        shard_key=row["shard_key"],
        kind=row["kind"],
        spec_digest=row["spec_digest"],
        shard_count=row["shard_count"],
        shard_indices=tuple(json.loads(row["shard_indices"])),
        point_indices=tuple(json.loads(row["point_indices"])),
        row_count=row["row_count"],
        version=row["version"],
        shard_schema=row["shard_schema"],
        path=Path(row["path"]),
        files=json.loads(row["files"]),
        registered_at=row["registered_at"],
        verified_at=row["verified_at"],
        status=row["status"],
    )


def resolve_catalog_path(path: str | Path) -> Path:
    """Normalize a ``--catalog`` argument: directories get the default
    database name appended; files are used as-is."""
    path = Path(path)
    if path.is_dir() or (not path.suffix and not path.exists()):
        return path / CATALOG_DB_NAME
    return path


class ExperimentCatalog:
    """SQLite-backed index over shard and merged-result artifacts.

    Every public method opens (and closes) its own connection: cheap
    against a WAL database, and it makes the object safe to share
    across threads (the ``--serve`` status endpoint queries from HTTP
    handler threads) and trivially safe across ``fork``.
    """

    def __init__(self, path: str | Path):
        self.path = resolve_catalog_path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as connection:
            self._init_schema(connection)

    # -- connection plumbing ------------------------------------------- #
    def _connect(self) -> sqlite3.Connection:
        try:
            connection = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S)
        except sqlite3.Error as error:
            raise CatalogError(
                f"cannot open catalog {self.path}: {error}"
            ) from error
        connection.row_factory = sqlite3.Row
        # WAL survives crashes and lets readers run concurrently with
        # one writer; NORMAL sync is durable across process crashes
        # (the artifacts themselves are the ground truth regardless —
        # a lost registration is a future cache miss, never corruption).
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        return connection

    def _init_schema(self, connection: sqlite3.Connection) -> None:
        connection.execute(
            """
            CREATE TABLE IF NOT EXISTS artifacts (
                shard_key     TEXT PRIMARY KEY,
                kind          TEXT NOT NULL,
                spec_digest   TEXT NOT NULL,
                shard_count   INTEGER NOT NULL,
                shard_indices TEXT NOT NULL,
                point_indices TEXT NOT NULL,
                row_count     INTEGER NOT NULL,
                version       TEXT NOT NULL,
                shard_schema  INTEGER NOT NULL,
                path          TEXT NOT NULL,
                files         TEXT NOT NULL,
                registered_at REAL NOT NULL,
                verified_at   REAL,
                status        TEXT NOT NULL DEFAULT 'ok'
            )
            """
        )
        connection.execute(
            "CREATE INDEX IF NOT EXISTS idx_artifacts_spec "
            "ON artifacts (spec_digest)"
        )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS catalog_meta "
            "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        connection.execute(
            "INSERT OR IGNORE INTO catalog_meta (key, value) VALUES (?, ?)",
            ("catalog_schema", str(CATALOG_SCHEMA)),
        )
        connection.commit()
        row = connection.execute(
            "SELECT value FROM catalog_meta WHERE key = 'catalog_schema'"
        ).fetchone()
        if row is not None and int(row["value"]) > CATALOG_SCHEMA:
            raise CatalogError(
                f"{self.path}: written by a newer catalog schema "
                f"({row['value']} > {CATALOG_SCHEMA}); upgrade repro"
            )

    def _write(self, statement: str, parameters: Iterable[Any]) -> None:
        """One retried, transactional write (lock contention tolerated)."""
        for remaining in range(_RETRIES, -1, -1):
            try:
                with self._connect() as connection:
                    with connection:
                        connection.execute(statement, tuple(parameters))
                return
            except sqlite3.OperationalError as error:
                if remaining == 0 or "locked" not in str(error).lower():
                    raise CatalogError(
                        f"catalog write failed on {self.path}: {error}"
                    ) from error
                time.sleep(_RETRY_DELAY_S)

    # -- registration --------------------------------------------------- #
    def register(
        self,
        path: str | Path,
        manifest: dict[str, Any] | None = None,
        kind: str | None = None,
    ) -> CatalogEntry:
        """Index one on-disk artifact by its manifest's content digests.

        ``manifest`` may be passed when the caller just wrote (or
        validated) the artifact and still holds it; otherwise it is read
        from disk.  Metadata-only — nothing is re-hashed.  Registration
        is an upsert keyed by the artifact's content-addressed shard
        key, so re-registering the same content (from any process) is
        idempotent.
        """
        path = Path(path).resolve()
        if manifest is None:
            manifest = load_manifest(path)
        try:
            shard_indices = tuple(int(i) for i in manifest["shard_indices"])
            point_indices = tuple(
                int(entry["index"]) for entry in manifest["points"]
            )
            entry = CatalogEntry(
                shard_key=manifest["shard_key"],
                kind=kind
                or ("shard" if len(shard_indices) == 1 else "merged"),
                spec_digest=manifest["spec_digest"],
                shard_count=int(manifest["shard_count"]),
                shard_indices=shard_indices,
                point_indices=point_indices,
                row_count=int(manifest["row_count"]),
                version=str(manifest.get("version", "unknown")),
                shard_schema=int(manifest["schema"]),
                path=path,
                files=dict(manifest.get("files") or {}),
                registered_at=time.time(),
                verified_at=None,
                status=STATUS_OK,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CatalogError(
                f"{path}: manifest is missing catalog fields ({error})"
            ) from error
        self._write(
            """
            INSERT OR REPLACE INTO artifacts (
                shard_key, kind, spec_digest, shard_count, shard_indices,
                point_indices, row_count, version, shard_schema, path,
                files, registered_at, verified_at, status
            ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                entry.shard_key,
                entry.kind,
                entry.spec_digest,
                entry.shard_count,
                json.dumps(list(entry.shard_indices)),
                json.dumps(list(entry.point_indices)),
                entry.row_count,
                entry.version,
                entry.shard_schema,
                str(entry.path),
                json.dumps(entry.files, sort_keys=True),
                entry.registered_at,
                entry.verified_at,
                entry.status,
            ),
        )
        return entry

    # -- queries --------------------------------------------------------- #
    def lookup(self, shard_key: str) -> CatalogEntry | None:
        """The reusable entry under ``shard_key``, or ``None``.

        Only ``ok`` entries written by the *current* code version and
        artifact schema are served: the shard key already refuses
        foreign specs and stale cache-schema versions (both are hashed
        into it), and the explicit version/schema re-check keeps even a
        hand-edited database from handing out stale artifacts.
        """
        with self._connect() as connection:
            row = connection.execute(
                "SELECT * FROM artifacts WHERE shard_key = ?", (shard_key,)
            ).fetchone()
        if row is None:
            return None
        entry = _entry_from_row(row)
        if entry.status != STATUS_OK:
            return None
        if entry.version != __version__ or entry.shard_schema != SHARD_SCHEMA:
            return None
        return entry

    def query(
        self,
        spec_digest: str | None = None,
        status: str | None = None,
        kind: str | None = None,
    ) -> list[CatalogEntry]:
        """Entries matching the given filters, registration order."""
        clauses, parameters = [], []
        for column, value in (
            ("spec_digest", spec_digest),
            ("status", status),
            ("kind", kind),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                parameters.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT * FROM artifacts"
                + where
                + " ORDER BY registered_at, shard_key",
                parameters,
            ).fetchall()
        return [_entry_from_row(row) for row in rows]

    def entries(self) -> list[CatalogEntry]:
        return self.query()

    def summary(self, spec_digest: str | None = None) -> dict[str, Any]:
        """JSON-ready counts for the ``/catalog`` status endpoint."""
        entries = self.entries()
        by_status: dict[str, int] = {}
        by_kind: dict[str, int] = {}
        for entry in entries:
            by_status[entry.status] = by_status.get(entry.status, 0) + 1
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
        payload: dict[str, Any] = {
            "kind": "repro-catalog",
            "path": str(self.path),
            "entries": len(entries),
            "by_status": by_status,
            "by_kind": by_kind,
        }
        if spec_digest is not None:
            mine = [e for e in entries if e.spec_digest == spec_digest]
            payload["spec"] = {
                "digest": spec_digest,
                "entries": len(mine),
                "shards": sorted(
                    {
                        index
                        for entry in mine
                        if entry.status == STATUS_OK
                        for index in entry.shard_indices
                    }
                ),
            }
        return payload

    # -- integrity ------------------------------------------------------- #
    def _status_of(self, entry: CatalogEntry) -> str:
        """Re-derive one entry's status from the bytes on disk."""
        if entry.version != __version__ or entry.shard_schema != SHARD_SCHEMA:
            return STATUS_OUTDATED
        if not (entry.path / MANIFEST_NAME).is_file():
            return STATUS_MISSING
        try:
            manifest = load_manifest(entry.path)
            if manifest.get("shard_key") != entry.shard_key:
                # The directory was replaced by a different artifact.
                return STATUS_CORRUPT
            verify_artifact_files(entry.path)
            for name, expected in sorted(entry.files.items()):
                # The manifest's own digests were just re-checked; also
                # re-check against the digests *recorded at registration*
                # so a rewritten manifest cannot vouch for new bytes.
                if file_digest(entry.path / name) != expected:
                    return STATUS_CORRUPT
        except (ShardError, OSError):
            return STATUS_CORRUPT
        return STATUS_OK

    def verify(self, spec_digest: str | None = None) -> CatalogVerifyReport:
        """Re-verify recorded digests against the artifacts on disk.

        Every entry's column stores are re-hashed and compared against
        both the manifest's digests and the digests recorded at
        registration time; entries from other code versions are marked
        ``outdated``, vanished artifacts ``missing``, mismatching bytes
        ``corrupt``.  Statuses are persisted, so subsequent lookups
        refuse the flagged entries until :meth:`repair` (or a fresh
        registration of rebuilt artifacts) clears them.
        """
        report = CatalogVerifyReport()
        for entry in self.query(spec_digest=spec_digest):
            status = self._status_of(entry)
            report.checked += 1
            updated = dataclasses.replace(
                entry, status=status, verified_at=time.time()
            )
            self._write(
                "UPDATE artifacts SET status = ?, verified_at = ? "
                "WHERE shard_key = ?",
                (status, updated.verified_at, entry.shard_key),
            )
            if status == STATUS_OK:
                report.ok += 1
            elif status == STATUS_CORRUPT:
                report.corrupt.append(updated)
            elif status == STATUS_MISSING:
                report.missing.append(updated)
            else:
                report.outdated.append(updated)
        return report

    def repair(self, spec_digest: str | None = None) -> CatalogRepairReport:
        """Verify, then evict every flagged entry.

        Eviction only removes catalog *rows* (the artifacts, healthy or
        not, stay on disk for post-mortems); the report names exactly
        which shards and points of which spec need re-running, which is
        what a follow-up ``repro launch`` (same directory or a fresh
        one) uses to fill the holes.
        """
        verify_report = self.verify(spec_digest=spec_digest)
        report = CatalogRepairReport(verify=verify_report)
        for entry in verify_report.flagged:
            self._write(
                "DELETE FROM artifacts WHERE shard_key = ? AND status = ?",
                (entry.shard_key, entry.status),
            )
            report.evicted.append(entry)
        return report

    def gc(self) -> list[CatalogEntry]:
        """Drop entries whose artifact directory no longer exists.

        The cheap hygiene pass (no re-hashing): rows pointing at
        deleted launch directories are removed and returned.  Use
        :meth:`verify`/:meth:`repair` for full digest checking.
        """
        evicted: list[CatalogEntry] = []
        for entry in self.entries():
            if (entry.path / MANIFEST_NAME).is_file():
                continue
            self._write(
                "DELETE FROM artifacts WHERE shard_key = ?",
                (entry.shard_key,),
            )
            evicted.append(entry)
        return evicted


__all__ = [
    "CATALOG_DB_NAME",
    "CATALOG_SCHEMA",
    "CatalogEntry",
    "CatalogError",
    "CatalogRepairReport",
    "CatalogVerifyReport",
    "ExperimentCatalog",
    "STATUS_CORRUPT",
    "STATUS_MISSING",
    "STATUS_OK",
    "STATUS_OUTDATED",
    "resolve_catalog_path",
]
