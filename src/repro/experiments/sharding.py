"""Sharded sweep execution: deterministic planning, portable shard
artifacts and byte-identical merging.

The ROADMAP's production target is grids of millions of points — more
than one machine should price.  This module splits a
:class:`~repro.experiments.spec.SweepSpec` into ``n`` independently
executable **shards** whose merged result is *byte-identical* to a
monolithic :class:`~repro.experiments.runner.SweepRunner` run:

* :class:`ShardPlan` — a pure function of ``(spec, shard_count)``: the
  grid's points are ordered chip-major (the
  :meth:`~repro.gating.policies.ChipMajorPacks.partition_chip_major`
  rule, keyed by resolved chip *name* so the partition is stable across
  processes and machines) and cut into ``n`` contiguous, size-balanced
  runs.  Chip-heterogeneous grids therefore shard chip-major: most
  shards stay single-chip, so each one packs into as few
  :class:`~repro.gating.policies.PackedProfiles` segments as the grid
  allows.  Every shard carries a content-addressed key derived from the
  :mod:`repro.experiments.keys` digests.
* :class:`ShardRunner` — executes one shard's points through the
  existing packed :class:`~repro.experiments.runner.SweepRunner`
  pipeline (row cache, grid-batched policy kernel, optional process
  pool) and captures the packed rows as a :class:`ShardArtifact`.
* :class:`ShardArtifact` — a self-describing ``.repro-shard`` directory:
  ``manifest.json`` (spec digest, shard indices, code version, per-point
  row accounting), ``columns.npy`` (every float column stacked into one
  ``float64`` matrix, one row per column — written with :func:`np.save`
  so readers can map it with ``mmap_mode="r"``) and ``columns.json``
  (string/int columns).  Both stores round-trip every cell exactly, so
  a merged table's CSV bytes equal the monolithic run's.
* :func:`merge_artifacts` / :meth:`SweepResult.merge_shards
  <repro.experiments.result.SweepResult.merge_shards>` — reassembles
  artifacts into one columnar result **out of core**: read artifacts
  keep their float columns memory-mapped, and the merge streams one
  output column at a time (per-point slices off the maps), so peak
  resident memory is bounded by the merged table plus one shard's
  object columns — never by ``shards × columns``.  No row tuple or row
  dict is ever materialized.  Merging is associative and idempotent:
  artifacts are deduplicated by key, partial merges write ordinary
  ``.repro-shard`` artifacts that merge again later, and foreign
  (different spec/version), duplicate-but-different and missing shards
  are detected from the manifests.

Shards that share a filesystem can also share a
:class:`~repro.experiments.cache.SharedCacheDir` so one shard's
simulate miss becomes every later shard's profile hit — see
``docs/experiments.md``.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro import __version__
from repro.gating.policies import ChipMajorPacks

from repro.experiments import keys
from repro.experiments.cache import PackedRows, SimulationCache, atomic_replace
from repro.experiments.keys import file_digest, shard_key, stable_hash
from repro.experiments.result import SweepResult
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepPoint, SweepSpec

#: On-disk artifact schema (bumped when the layout changes shape).
#: Schema 2 replaced the ``columns.npz`` zip store with a single
#: ``columns.npy`` matrix so float columns memory-map on read.
SHARD_SCHEMA = 2
#: Directory-name suffix identifying a shard artifact.
SHARD_SUFFIX = ".repro-shard"
MANIFEST_NAME = "manifest.json"
NUMERIC_NAME = "columns.npy"
OBJECT_NAME = "columns.json"

_LOG = logging.getLogger(__name__)


class ShardError(ValueError):
    """A shard artifact is unreadable, foreign, duplicated or missing."""


#: Backwards-compatible alias; the digest helper moved to
#: :func:`repro.experiments.keys.file_digest` so the experiment catalog
#: shares one definition with the artifact writer/verifier.
_file_digest = file_digest


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read and shape-check one artifact's ``manifest.json``.

    The single manifest-parsing entry point shared by
    :meth:`ShardArtifact.read`, :func:`verify_artifact_files` and the
    experiment catalog's registration path.  Only the envelope is
    validated here (readable JSON object of ``kind`` repro-shard);
    schema and field validation stay with the callers, which disagree
    on how strict to be.
    """
    path = Path(path)
    try:
        manifest = json.loads((path / MANIFEST_NAME).read_text())
    except (OSError, ValueError) as error:
        raise ShardError(
            f"{path}: not a readable shard artifact ({error})"
        ) from error
    if not isinstance(manifest, dict) or manifest.get("kind") != "repro-shard":
        raise ShardError(f"{path}: manifest is not a repro-shard manifest")
    return manifest


def verify_artifact_files(path: str | Path, require: bool = True) -> None:
    """Check an artifact's column stores against the manifest's digests.

    The transfer-side validation hook: a worker calls it right after
    writing (catching a torn local write before the artifact ever
    travels), and a remote backend calls it after fetching (a torn or
    bit-flipped transfer then degrades exactly like a local corrupt
    write — the attempt fails and the shard re-dispatches).  Raises
    :class:`ShardError` on any mismatch or missing file.  Artifacts
    written before digests existed carry no ``files`` entry; ``require``
    decides whether that is an error (the default — every transfer path
    deals in freshly written artifacts) or accepted silently.
    """
    path = Path(path)
    manifest = load_manifest(path)
    files = manifest.get("files")
    if not isinstance(files, dict):
        if require:
            raise ShardError(
                f"{path}: manifest carries no content digests "
                "(written by an older version?)"
            )
        return
    for name, expected in sorted(files.items()):
        try:
            actual = file_digest(path / name)
        except OSError as error:
            raise ShardError(
                f"{path}: column store {name} is unreadable ({error})"
            ) from error
        if actual != expected:
            raise ShardError(
                f"{path}: content digest mismatch on {name} (torn or "
                f"corrupt transfer): {actual} != {expected}"
            )


def spec_digest(spec: SweepSpec) -> str:
    """Content-addressed digest of a sweep grid.

    Hashes the ordered point cache keys (each one covers the workload,
    the fully resolved configuration — chip spec, policies, gating
    parameters — and the gating label), so two specs digest equal
    exactly when they produce the same result table.  Version-stamped
    like every other key, so artifacts from different releases read as
    foreign rather than silently merging.

    Memoized on the spec object (per schema version): planning the same
    spec repeatedly — every :class:`ShardRunner` builds a plan — hashes
    the point keys once instead of once per shard.
    """
    version = keys.CACHE_SCHEMA_VERSION
    memo = getattr(spec, "_spec_digest_memo", None)
    if memo is not None and memo[0] == version:
        return memo[1]
    digest = stable_hash(
        {
            "kind": "sweep-spec",
            "version": version,
            "points": [point.cache_key for point in spec.points()],
        }
    )
    spec._spec_digest_memo = (version, digest)
    return digest


def _chip_axis_key(point: SweepPoint) -> str:
    """The chip-name grouping key of one point (process-stable)."""
    chip = point.config.chip
    return chip if isinstance(chip, str) else chip.name


@dataclass(frozen=True)
class Shard:
    """One planned slice of a sweep grid (a value object)."""

    index: int
    count: int
    spec_digest: str
    point_indices: tuple[int, ...]

    @property
    def key(self) -> str:
        """Content-addressed artifact key of this shard."""
        return shard_key(
            self.spec_digest, self.count, (self.index,), self.point_indices
        )

    @property
    def artifact_name(self) -> str:
        return f"shard-{self.index:04d}-of-{self.count:04d}{SHARD_SUFFIX}"


class ShardPlan:
    """Deterministic chip-major partition of a spec's grid into ``count`` shards.

    The plan is a pure function of its inputs: every process and machine
    planning the same ``(spec, count)`` computes the same shards, the
    same point assignment and the same shard keys — no coordination
    service needed.  Shards are disjoint, cover every point, and differ
    in size by at most one point; when ``count`` exceeds the number of
    points the surplus shards are empty (and still merge cleanly).
    """

    def __init__(self, spec: SweepSpec, count: int):
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        self.spec = spec
        self.count = count
        self.digest = spec_digest(spec)
        points = spec.points()
        groups = ChipMajorPacks.partition_chip_major(
            [_chip_axis_key(point) for point in points]
        )
        order = [index for group in groups for index in group]
        base, remainder = divmod(len(order), count)
        shards: list[Shard] = []
        offset = 0
        for index in range(count):
            size = base + (1 if index < remainder else 0)
            shards.append(
                Shard(
                    index=index,
                    count=count,
                    spec_digest=self.digest,
                    point_indices=tuple(order[offset : offset + size]),
                )
            )
            offset += size
        self.shards = shards

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __getitem__(self, index: int) -> Shard:
        return self.shards[index]

    def points_for(self, index: int) -> list[SweepPoint]:
        """The shard's points, in its (chip-major) execution order."""
        points = self.spec.points()
        return [points[i] for i in self.shards[index].point_indices]

    def describe(self) -> str:
        sizes = [len(shard.point_indices) for shard in self.shards]
        return (
            f"{sum(sizes)} point(s) over {self.count} shard(s), "
            f"sizes {min(sizes)}..{max(sizes)}"
        )


# ---------------------------------------------------------------------- #
# Shard artifacts
# ---------------------------------------------------------------------- #
def _encode_object_column(cells: list) -> Any:
    """Dictionary-encode one object column for ``columns.json``.

    Sweep metadata columns (workload, chip, policy, ...) repeat a
    handful of distinct values, so ``{"categories": [...], "codes":
    [...]}`` serializes and parses in a fraction of the plain list's
    time.  Columns with unhashable cells are stored as plain lists
    (the decoder accepts both shapes); the round trip is exact either
    way.
    """
    try:
        categories: list[Any] = []
        index: dict[Any, int] = {}
        codes: list[int] = []
        for cell in cells:
            code = index.get(cell)
            if code is None:
                code = len(categories)
                index[cell] = code
                categories.append(cell)
            codes.append(code)
    except TypeError:
        return cells
    return {"categories": categories, "codes": codes}


def _decode_object_column(entry: Any) -> list:
    """Inverse of :func:`_encode_object_column` (accepts both shapes)."""
    if isinstance(entry, dict):
        return list(map(entry["categories"].__getitem__, entry["codes"]))
    return entry


class ShardArtifact:
    """The packed rows of one or more shards, (de)serializable as a
    self-describing ``.repro-shard`` directory.

    Backed by one of two interchangeable stores:

    * a **row store** (``values=``) — one value tuple per row,
      point-major, what :meth:`from_blocks` captures off the runner;
    * a **column store** (``series=``) — one array/list per column;
      artifacts loaded with :meth:`read` keep their float columns as
      views into the memory-mapped ``columns.npy`` matrix, so a loaded
      artifact costs pages only for the cells actually touched.

    The first access to :attr:`values` materializes the column store
    into row tuples (and drops it), so callers that mutate
    ``artifact.values`` in place see their mutations honored by
    :meth:`write` exactly as before.
    """

    def __init__(
        self,
        spec_digest: str,
        shard_count: int,
        shard_indices: tuple[int, ...],
        columns: tuple[str, ...],
        points: list[tuple[int, str, int]],
        values: "list[tuple[Any, ...]] | None" = None,
        version: str = __version__,
        path: Path | None = None,
        *,
        series: "dict[str, Any] | None" = None,
    ):
        if (values is None) == (series is None):
            raise TypeError("pass exactly one of values= or series=")
        self.spec_digest = spec_digest
        self.shard_count = shard_count
        self.shard_indices = tuple(shard_indices)
        self.columns = tuple(columns)
        #: ``(point index, point cache key, row count)`` in stored row order.
        self.points = points
        #: Package version that wrote the artifact (current version for
        #: freshly built ones).
        self.version = version
        #: Where the artifact was read from, for error messages.
        self.path = path
        self._values = values
        self._series = series
        #: Backing float-column matrix (row i = numeric column i) when
        #: the artifact was read from disk; lets the merge copy all
        #: float columns of a row run in one slice.  Dropped whenever
        #: the series store is (mutations go through ``values``).
        self._matrix: "np.ndarray | None" = None
        self._matrix_columns: tuple[str, ...] = ()

    def __repr__(self) -> str:
        return (
            f"ShardArtifact(shards {list(self.shard_indices)} of "
            f"{self.shard_count}, {self.row_count} row(s))"
        )

    @property
    def key(self) -> str:
        return shard_key(
            self.spec_digest,
            self.shard_count,
            self.shard_indices,
            [index for index, _key, _rows in self.points],
        )

    @property
    def row_count(self) -> int:
        if self._values is not None:
            return len(self._values)
        return sum(rows for _index, _key, rows in self.points)

    @property
    def values(self) -> list[tuple[Any, ...]]:
        """All rows, point-major, aligned with :attr:`points`.

        Column-store artifacts materialize (and drop) their store on
        first access; in-place mutations are therefore visible to
        :meth:`write` and the merge's duplicate detection.
        """
        if self._values is None:
            series = self._series
            ordered = [
                series[name].tolist()
                if isinstance(series[name], np.ndarray)
                else series[name]
                for name in self.columns
            ]
            self._values = [tuple(row) for row in zip(*ordered)] if ordered else []
            self._series = None
            self._matrix = None
        return self._values

    @values.setter
    def values(self, rows: "Sequence[tuple[Any, ...]]") -> None:
        self._values = list(rows)
        self._series = None
        self._matrix = None

    def column(self, name: str) -> Any:
        """One column's cells in stored row order.

        Column-store artifacts hand back the backing array/list itself
        (float columns stay memory-mapped: zero-copy); row-store
        artifacts gather the column positionally.
        """
        if self._series is not None:
            return self._series[name]
        position = self.columns.index(name)
        return [row[position] for row in self._values]

    @property
    def artifact_name(self) -> str:
        if len(self.shard_indices) == 1:
            index = self.shard_indices[0]
            return f"shard-{index:04d}-of-{self.shard_count:04d}{SHARD_SUFFIX}"
        return f"merged-{self.key[:12]}{SHARD_SUFFIX}"

    # ------------------------------------------------------------------ #
    @classmethod
    def from_blocks(
        cls, shard: Shard, blocks: list[tuple[SweepPoint, PackedRows]]
    ) -> "ShardArtifact":
        """Assemble one shard's artifact from its per-point packed rows.

        Rows are stored sorted by point index so every artifact of a
        shard is byte-deterministic regardless of execution order.
        """
        blocks = sorted(blocks, key=lambda block: block[0].index)
        columns: tuple[str, ...] = ()
        for _point, (block_columns, block_values) in blocks:
            if block_values:
                columns = tuple(block_columns)
                break
        points: list[tuple[int, str, int]] = []
        values: list[tuple[Any, ...]] = []
        for point, (block_columns, block_values) in blocks:
            if block_values and tuple(block_columns) != columns:
                raise ShardError(
                    "cannot serialize heterogeneous row schemas into one "
                    "shard artifact (stale cache entries from another code "
                    f"version?): {tuple(block_columns)} vs {columns}"
                )
            points.append((point.index, point.cache_key, len(block_values)))
            values.extend(tuple(row) for row in block_values)
        return cls(
            spec_digest=shard.spec_digest,
            shard_count=shard.count,
            shard_indices=(shard.index,),
            columns=columns,
            points=points,
            values=values,
        )

    def result(self) -> SweepResult:
        """This artifact's rows as a packed :class:`SweepResult`.

        Column-store artifacts stay columnar (float columns remain
        memory-mapped views); row-store artifacts stay packed.
        """
        if self._series is not None:
            return SweepResult.from_series(
                self.columns, {name: self._series[name] for name in self.columns}
            )
        return SweepResult.from_packed(self.columns, self.values)

    # ------------------------------------------------------------------ #
    def _column_store(self) -> "tuple[dict[str, Any], list[str]]":
        """``(series, numeric column names)`` of this artifact's cells.

        Row-store artifacts gather their columns here (floats become
        ``float64`` arrays — an exact round trip); column-store
        artifacts return their backing store as-is, where a numeric
        column *is* an ndarray.
        """
        if self._series is not None:
            series = self._series
            numeric = [
                name
                for name in self.columns
                if isinstance(series[name], np.ndarray)
            ]
            return series, numeric
        transposed = list(zip(*self._values)) if self._values else []
        gathered = {
            name: list(transposed[position]) if transposed else []
            for position, name in enumerate(self.columns)
        }
        numeric = [
            name
            for name, cells in gathered.items()
            # set(map(type, ...)) runs the exact type scan in C.
            if cells and set(map(type, cells)) == {float}
        ]
        numeric_set = set(numeric)
        series = {
            name: np.asarray(cells, dtype=np.float64)
            if name in numeric_set
            else cells
            for name, cells in gathered.items()
        }
        return series, numeric

    def write(
        self,
        target: str | Path,
        extra_manifest: "dict[str, Any] | None" = None,
    ) -> Path:
        """Serialize into ``target`` and return the artifact directory.

        ``target`` is either the artifact directory itself (a path
        ending in ``.repro-shard``) or a parent directory, in which case
        the canonical :attr:`artifact_name` is used.  Float columns go
        to ``columns.npy`` as one stacked ``float64`` matrix (row ``i``
        = numeric column ``i``; exact round trip, mappable on read);
        everything else to ``columns.json``, dictionary-encoded where
        possible (sweep metadata columns repeat a handful of distinct
        strings/ints, so codes serialize and parse far faster than the
        cells); the manifest is written last so a crashed writer never
        leaves a manifest describing missing column files.

        ``extra_manifest`` merges additional keys into the manifest —
        annotations like the skipped-artifact list a lenient partial
        merge records — without being able to shadow the schema's own
        fields (the canonical keys are applied last).
        """
        target = Path(target)
        path = target if target.name.endswith(SHARD_SUFFIX) else (
            target / self.artifact_name
        )
        path.mkdir(parents=True, exist_ok=True)
        series, numeric = self._column_store()
        objects = {
            name: _encode_object_column(
                series[name]
                if isinstance(series[name], list)
                else list(series[name])
            )
            for name in self.columns
            if name not in set(numeric)
        }
        if numeric:
            matrix = np.ascontiguousarray(
                np.stack([np.asarray(series[name]) for name in numeric])
            )
            atomic_replace(
                path / NUMERIC_NAME, lambda handle: np.save(handle, matrix)
            )
        atomic_replace(
            path / OBJECT_NAME,
            lambda handle: handle.write(json.dumps(objects).encode("utf-8")),
        )
        # Content digests of every column store, written into the
        # manifest so transfers (and the workers' own writes) can be
        # verified end to end — see :func:`verify_artifact_files`.
        files = {OBJECT_NAME: file_digest(path / OBJECT_NAME)}
        if numeric:
            files[NUMERIC_NAME] = file_digest(path / NUMERIC_NAME)
        manifest = {
            **(extra_manifest or {}),
            "schema": SHARD_SCHEMA,
            "kind": "repro-shard",
            "version": self.version,
            "spec_digest": self.spec_digest,
            "shard_count": self.shard_count,
            "shard_indices": list(self.shard_indices),
            "shard_key": self.key,
            "row_count": self.row_count,
            "columns": list(self.columns),
            "numeric_columns": numeric,
            "files": files,
            "points": [
                {"index": index, "cache_key": key, "rows": rows}
                for index, key, rows in self.points
            ],
        }
        atomic_replace(
            path / MANIFEST_NAME,
            lambda handle: handle.write(
                json.dumps(manifest, indent=2).encode("utf-8")
            ),
        )
        self.path = path
        return path

    @classmethod
    def read(cls, path: str | Path) -> "ShardArtifact":
        """Deserialize one ``.repro-shard`` directory.

        Float columns are **memory-mapped** (``np.load(...,
        mmap_mode="r")`` on the column matrix), not copied: reading an
        artifact costs the manifest plus its object columns, and merge/
        export pull in only the mapped pages they actually touch.
        """
        path = Path(path)
        manifest = load_manifest(path)
        if manifest.get("schema") != SHARD_SCHEMA:
            raise ShardError(
                f"{path}: unsupported shard schema {manifest.get('schema')!r} "
                f"(this build reads schema {SHARD_SCHEMA})"
            )
        try:
            columns = tuple(manifest["columns"])
            numeric = list(manifest["numeric_columns"])
            points = [
                (entry["index"], entry["cache_key"], entry["rows"])
                for entry in manifest["points"]
            ]
            row_count = manifest["row_count"]
            objects = json.loads((path / OBJECT_NAME).read_text())
            series: dict[str, Any] = {}
            if numeric:
                matrix = np.load(
                    path / NUMERIC_NAME, mmap_mode="r", allow_pickle=False
                )
                if matrix.shape != (len(numeric), row_count):
                    raise ShardError(
                        f"{path}: column matrix shape {matrix.shape} disagrees "
                        f"with the manifest "
                        f"({len(numeric)} column(s) x {row_count} row(s))"
                    )
                for position, name in enumerate(numeric):
                    series[name] = matrix[position]
            numeric_set = set(numeric)
            for name in columns:
                if name not in numeric_set:
                    series[name] = _decode_object_column(objects[name])
        except ShardError:
            raise
        except (OSError, KeyError, ValueError) as error:
            raise ShardError(
                f"{path}: corrupt or incomplete shard artifact ({error})"
            ) from error
        lengths = {len(cells) for cells in series.values()}
        if lengths - {row_count}:
            raise ShardError(
                f"{path}: column lengths {sorted(lengths)} disagree with the "
                f"manifest row count {row_count}"
            )
        if sum(rows for _i, _k, rows in points) != row_count:
            raise ShardError(
                f"{path}: per-point row accounting disagrees with row_count"
            )
        artifact = cls(
            spec_digest=manifest["spec_digest"],
            shard_count=manifest["shard_count"],
            shard_indices=tuple(manifest["shard_indices"]),
            columns=columns,
            points=points,
            series=series,
            version=manifest.get("version", "unknown"),
            path=path,
        )
        if numeric:
            artifact._matrix = matrix
            artifact._matrix_columns = tuple(numeric)
        return artifact


# ---------------------------------------------------------------------- #
# Running one shard
# ---------------------------------------------------------------------- #
class ShardRunner:
    """Executes single shards of a spec through the packed sweep pipeline.

    Parameters mirror :class:`~repro.experiments.runner.SweepRunner`;
    ``cache`` may be a :class:`SimulationCache` with a shared directory
    attached (see :class:`~repro.experiments.cache.SharedCacheDir`) so
    concurrent shards reuse each other's simulate misses.
    """

    def __init__(
        self,
        spec: SweepSpec,
        shard_count: int,
        cache: SimulationCache | None = None,
        max_workers: int | None = None,
    ):
        self.plan = ShardPlan(spec, shard_count)
        self.cache = cache
        self.max_workers = max_workers

    def run(self, index: int) -> ShardArtifact:
        """Evaluate shard ``index`` and return its (unwritten) artifact."""
        shard = self.plan[index]
        points = self.plan.points_for(index)
        runner = SweepRunner(
            self.plan.spec, cache=self.cache, max_workers=self.max_workers
        )
        cache = runner.resolve_cache()
        packed_by_index = runner.execute_points(points, cache)
        cache.flush()
        blocks = [(point, packed_by_index[point.index]) for point in points]
        return ShardArtifact.from_blocks(shard, blocks)

    def write(self, index: int, shard_dir: str | Path) -> Path:
        """Evaluate shard ``index`` and serialize it under ``shard_dir``."""
        return self.run(index).write(shard_dir)


# ---------------------------------------------------------------------- #
# Merging
# ---------------------------------------------------------------------- #
def _slices_equal(a: Any, b: Any) -> bool:
    """Cell-exact equality of two column slices (array, list or mixed)."""
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        return bool(np.array_equal(a, b))
    a_cells = a.tolist() if isinstance(a, np.ndarray) else list(a)
    b_cells = b.tolist() if isinstance(b, np.ndarray) else list(b)
    return a_cells == b_cells


def _blocks_equal(
    a: ShardArtifact, a_offset: int, b: ShardArtifact, b_offset: int, rows: int
) -> bool:
    """Whether two artifacts' row blocks agree, compared column-wise
    (no row tuple materialization)."""
    return all(
        _slices_equal(
            a.column(name)[a_offset : a_offset + rows],
            b.column(name)[b_offset : b_offset + rows],
        )
        for name in a.columns
    )


def _artifacts_equal(a: ShardArtifact, b: ShardArtifact) -> bool:
    """Whether two same-key artifacts carry identical rows."""
    if a.points != b.points or a.columns != b.columns:
        return False
    return _blocks_equal(a, 0, b, 0, a.row_count)


def merge_artifacts(artifacts: Sequence[ShardArtifact]) -> ShardArtifact:
    """Merge shard artifacts into one combined artifact, out of core.

    Deduplicates identical artifacts by key (idempotent) and is
    independent of input order and grouping (associative: merging
    partial merges equals merging everything at once — a merged
    artifact is just an artifact covering several shard indices).
    Raises :class:`ShardError` on foreign artifacts (different spec
    digest or shard count) and on duplicated-but-different shards or
    points; missing shards are allowed here (partial merge) and only
    rejected by :func:`merge_shard_paths`.

    The merge streams **one output column at a time**: each point
    contributes a slice of its owning artifact's column (for artifacts
    loaded with :meth:`ShardArtifact.read`, a view into the mapped
    column matrix), and the slices concatenate straight into the output
    column.  Peak resident memory is the merged table plus the object
    columns of the inputs — no row tuple is ever materialized and no
    shard's float columns are ever copied wholesale into RAM.
    """
    if not artifacts:
        raise ShardError("no shard artifacts to merge")
    # Dedup by the key's *preimage* (plan slice + covered points) — same
    # identity as ShardArtifact.key without hashing every input.
    deduped: dict[tuple, ShardArtifact] = {}
    for artifact in artifacts:
        identity = (
            artifact.spec_digest,
            artifact.shard_count,
            artifact.shard_indices,
            tuple(index for index, _key, _rows in artifact.points),
        )
        existing = deduped.get(identity)
        if existing is None:
            deduped[identity] = artifact
        elif not _artifacts_equal(existing, artifact):
            # The key covers which slice of which plan, not the row
            # bytes: equal keys with different rows mean one side is
            # corrupt (or a nondeterminism bug worth failing loudly on).
            raise ShardError(
                f"duplicate shard data for shards {artifact.shard_indices}: "
                f"{existing.path or existing.key} and "
                f"{artifact.path or artifact.key} disagree"
            )
    first = next(iter(deduped.values()))
    for artifact in deduped.values():
        if artifact.spec_digest != first.spec_digest:
            detail = ""
            if artifact.version != first.version:
                detail = (
                    f" (written by versions {first.version} and "
                    f"{artifact.version})"
                )
            raise ShardError(
                f"foreign shard {artifact.path or artifact.key}: spec digest "
                f"{artifact.spec_digest} does not match {first.spec_digest}"
                f"{detail}"
            )
        if artifact.shard_count != first.shard_count:
            raise ShardError(
                f"foreign shard {artifact.path or artifact.key}: planned for "
                f"{artifact.shard_count} shard(s), expected {first.shard_count}"
            )
    covered: set[int] = set()
    for artifact in deduped.values():
        covered.update(artifact.shard_indices)
    columns: tuple[str, ...] = ()
    for artifact in deduped.values():
        if artifact.row_count:
            columns = artifact.columns
            break
    #: point index -> (owning artifact, row offset into it, rows, cache key)
    blocks: dict[int, tuple[ShardArtifact, int, int, str]] = {}
    for artifact in deduped.values():
        if artifact.row_count and artifact.columns != columns:
            raise ShardError(
                f"{artifact.path or artifact.key}: column schema "
                f"{artifact.columns} does not match {columns}"
            )
        offset = 0
        for point_index, cache_key, rows in artifact.points:
            existing = blocks.get(point_index)
            if existing is not None:
                # Overlapping coverage (e.g. a partial merge re-merged
                # with one of its inputs) is fine when the rows agree —
                # merge stays idempotent; disagreement means two
                # different runs claim the same shard slot.
                owner, owner_offset, owner_rows, owner_key = existing
                if (
                    owner_key != cache_key
                    or owner_rows != rows
                    or not _blocks_equal(owner, owner_offset, artifact, offset, rows)
                ):
                    raise ShardError(
                        f"duplicate shard data for point {point_index}: "
                        f"{owner.path or owner.key} and "
                        f"{artifact.path or artifact.key} disagree"
                    )
                offset += rows
                continue
            blocks[point_index] = (artifact, offset, rows, cache_key)
            offset += rows
    ordered = sorted(blocks)
    points: list[tuple[int, str, int]] = [
        (point_index, blocks[point_index][3], blocks[point_index][2])
        for point_index in ordered
    ]
    # Coalesce the output row order into copy runs: consecutive points
    # owned by the same artifact at contiguous offsets (the common case
    # — each artifact stores its points sorted by index) collapse into
    # one slice, so the column loop below does O(runs), not O(points),
    # reads per column.
    runs: list[tuple[ShardArtifact, int, int]] = []
    for point_index in ordered:
        artifact, offset, rows, _cache_key = blocks[point_index]
        if not rows:
            continue
        if runs:
            last_artifact, last_offset, last_rows = runs[-1]
            if last_artifact is artifact and last_offset + last_rows == offset:
                runs[-1] = (artifact, last_offset, last_rows + rows)
                continue
        runs.append((artifact, offset, rows))
    series: dict[str, Any] = {}
    # Matrix fast path: when every run's artifact came off disk with the
    # same float-column layout, copy all float columns of each run in
    # one 2-D slice and split the merged matrix back into row views —
    # O(runs) mapped reads total instead of O(runs x float columns).
    # Same elements, same concatenation order, so bit-identical to the
    # per-column path below (which still handles the object columns and
    # any artifact without a backing matrix).
    matrix_layout: tuple[str, ...] | None = None
    matrix_slices: "list[np.ndarray] | None" = []
    for artifact, offset, rows in runs:
        matrix = artifact._matrix
        if matrix is None or (
            matrix_layout is not None
            and artifact._matrix_columns != matrix_layout
        ):
            matrix_slices = None
            break
        matrix_layout = artifact._matrix_columns
        matrix_slices.append(matrix[:, offset : offset + rows])
    if matrix_slices and matrix_layout:
        merged_matrix = np.concatenate(matrix_slices, axis=1)
        for position, name in enumerate(matrix_layout):
            series[name] = merged_matrix[position]
    for name in columns:
        if name in series:
            continue
        per_artifact: dict[int, Any] = {}
        slices: list[Any] = []
        for artifact, offset, rows in runs:
            column = per_artifact.get(id(artifact))
            if column is None:
                column = artifact.column(name)
                per_artifact[id(artifact)] = column
            slices.append(column[offset : offset + rows])
        if slices and all(isinstance(piece, np.ndarray) for piece in slices):
            series[name] = np.concatenate(slices)
        else:
            cells: list[Any] = []
            for piece in slices:
                cells.extend(
                    piece.tolist() if isinstance(piece, np.ndarray) else piece
                )
            series[name] = cells
    return ShardArtifact(
        spec_digest=first.spec_digest,
        shard_count=first.shard_count,
        shard_indices=tuple(sorted(covered)),
        columns=columns,
        points=points,
        series=series,
    )


def resolve_artifact_paths(paths: Iterable[str | Path]) -> list[Path]:
    """Expand artifact paths: each entry is an artifact directory, or a
    directory containing ``*.repro-shard`` artifacts (scanned sorted)."""
    resolved: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if (entry / MANIFEST_NAME).is_file():
            resolved.append(entry)
            continue
        if entry.is_dir():
            found = sorted(
                child
                for child in entry.iterdir()
                if child.name.endswith(SHARD_SUFFIX) and child.is_dir()
            )
            if found:
                resolved.extend(found)
                continue
        raise ShardError(
            f"{entry}: neither a shard artifact nor a directory containing "
            f"*{SHARD_SUFFIX} artifacts"
        )
    return resolved


def read_artifacts(
    paths: Iterable[str | Path], strict: bool = True
) -> "tuple[list[ShardArtifact], list[tuple[Path, str]]]":
    """Resolve and read shard artifacts, optionally skipping broken ones.

    Returns ``(artifacts, skipped)`` where ``skipped`` is a list of
    ``(path, reason)`` pairs.  With ``strict`` (the default) the first
    unreadable artifact raises :class:`ShardError` and ``skipped`` is
    always empty — the historical behavior.  In lenient mode
    (``strict=False``, what ``repro merge-shards`` uses unless told
    ``--strict``) an unreadable or truncated artifact *directory* is
    skipped with a per-path warning and a summary listing, so one
    corrupt file from a crashed worker no longer aborts a whole fleet's
    merge.  Path-resolution failures (a nonexistent entry, a directory
    with no artifacts in it) are operator typos, not partial-run damage,
    and stay hard errors in both modes.
    """
    resolved = resolve_artifact_paths(paths)
    artifacts: list[ShardArtifact] = []
    skipped: list[tuple[Path, str]] = []
    for path in resolved:
        try:
            artifacts.append(ShardArtifact.read(path))
        except ShardError as error:
            if strict:
                raise
            reason = str(error)
            _LOG.warning("skipping unreadable shard artifact: %s", reason)
            skipped.append((path, reason))
    if skipped:
        _LOG.warning(
            "skipped %d of %d artifact(s): %s",
            len(skipped),
            len(resolved),
            ", ".join(str(path) for path, _reason in skipped),
        )
    return artifacts, skipped


def merge_shard_paths(
    paths: Iterable[str | Path],
    require_complete: bool = True,
    strict: bool = True,
) -> ShardArtifact:
    """Read and merge artifacts from disk (see :func:`merge_artifacts`).

    With ``require_complete`` (the default, and what
    :meth:`SweepResult.merge_shards
    <repro.experiments.result.SweepResult.merge_shards>` uses) every
    shard of the plan must be present — missing indices raise
    :class:`ShardError` by name.  ``strict=False`` skips unreadable
    artifacts instead of aborting (see :func:`read_artifacts`); combined
    with ``require_complete`` a skip surfaces as the skipped shard being
    reported missing.
    """
    artifacts, _skipped = read_artifacts(paths, strict=strict)
    if not artifacts:
        raise ShardError("no readable shard artifacts to merge")
    merged = merge_artifacts(artifacts)
    if require_complete:
        missing = sorted(set(range(merged.shard_count)) - set(merged.shard_indices))
        if missing:
            raise ShardError(
                f"missing shard(s) {missing} of {merged.shard_count}; pass "
                "every artifact (or merge partially via merge_artifacts/"
                "`repro merge-shards --output`)"
            )
    return merged


__all__ = [
    "MANIFEST_NAME",
    "NUMERIC_NAME",
    "OBJECT_NAME",
    "SHARD_SCHEMA",
    "SHARD_SUFFIX",
    "Shard",
    "ShardArtifact",
    "ShardError",
    "ShardPlan",
    "ShardRunner",
    "load_manifest",
    "merge_artifacts",
    "merge_shard_paths",
    "read_artifacts",
    "resolve_artifact_paths",
    "spec_digest",
    "verify_artifact_files",
]
