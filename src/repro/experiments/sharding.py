"""Sharded sweep execution: deterministic planning, portable shard
artifacts and byte-identical merging.

The ROADMAP's production target is grids of millions of points — more
than one machine should price.  This module splits a
:class:`~repro.experiments.spec.SweepSpec` into ``n`` independently
executable **shards** whose merged result is *byte-identical* to a
monolithic :class:`~repro.experiments.runner.SweepRunner` run:

* :class:`ShardPlan` — a pure function of ``(spec, shard_count)``: the
  grid's points are ordered chip-major (the
  :meth:`~repro.gating.policies.ChipMajorPacks.partition_chip_major`
  rule, keyed by resolved chip *name* so the partition is stable across
  processes and machines) and cut into ``n`` contiguous, size-balanced
  runs.  Chip-heterogeneous grids therefore shard chip-major: most
  shards stay single-chip, so each one packs into as few
  :class:`~repro.gating.policies.PackedProfiles` segments as the grid
  allows.  Every shard carries a content-addressed key derived from the
  :mod:`repro.experiments.keys` digests.
* :class:`ShardRunner` — executes one shard's points through the
  existing packed :class:`~repro.experiments.runner.SweepRunner`
  pipeline (row cache, grid-batched policy kernel, optional process
  pool) and captures the packed rows as a :class:`ShardArtifact`.
* :class:`ShardArtifact` — a self-describing ``.repro-shard`` directory:
  ``manifest.json`` (spec digest, shard indices, code version, per-point
  row accounting), ``columns.npz`` (float columns as ``float64`` arrays)
  and ``columns.json`` (string/int columns).  Both stores round-trip
  every cell exactly, so a merged table's CSV bytes equal the
  monolithic run's.
* :func:`merge_artifacts` / :meth:`SweepResult.merge_shards
  <repro.experiments.result.SweepResult.merge_shards>` — reassembles
  artifacts into one packed result, staying columnar end to end (no
  row dict is ever materialized).  Merging is associative and
  idempotent: artifacts are deduplicated by key, partial merges write
  ordinary ``.repro-shard`` artifacts that merge again later, and
  foreign (different spec/version), duplicate-but-different and missing
  shards are detected from the manifests.

Shards that share a filesystem can also share a
:class:`~repro.experiments.cache.SharedCacheDir` so one shard's
simulate miss becomes every later shard's profile hit — see
``docs/experiments.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro import __version__
from repro.gating.policies import ChipMajorPacks

from repro.experiments.cache import PackedRows, SimulationCache, atomic_replace
from repro.experiments.keys import CACHE_SCHEMA_VERSION, shard_key, stable_hash
from repro.experiments.result import SweepResult
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepPoint, SweepSpec

#: On-disk artifact schema (bumped when the layout changes shape).
SHARD_SCHEMA = 1
#: Directory-name suffix identifying a shard artifact.
SHARD_SUFFIX = ".repro-shard"
MANIFEST_NAME = "manifest.json"
NUMERIC_NAME = "columns.npz"
OBJECT_NAME = "columns.json"


class ShardError(ValueError):
    """A shard artifact is unreadable, foreign, duplicated or missing."""


def spec_digest(spec: SweepSpec) -> str:
    """Content-addressed digest of a sweep grid.

    Hashes the ordered point cache keys (each one covers the workload,
    the fully resolved configuration — chip spec, policies, gating
    parameters — and the gating label), so two specs digest equal
    exactly when they produce the same result table.  Version-stamped
    like every other key, so artifacts from different releases read as
    foreign rather than silently merging.
    """
    return stable_hash(
        {
            "kind": "sweep-spec",
            "version": CACHE_SCHEMA_VERSION,
            "points": [point.cache_key for point in spec.points()],
        }
    )


def _chip_axis_key(point: SweepPoint) -> str:
    """The chip-name grouping key of one point (process-stable)."""
    chip = point.config.chip
    return chip if isinstance(chip, str) else chip.name


@dataclass(frozen=True)
class Shard:
    """One planned slice of a sweep grid (a value object)."""

    index: int
    count: int
    spec_digest: str
    point_indices: tuple[int, ...]

    @property
    def key(self) -> str:
        """Content-addressed artifact key of this shard."""
        return shard_key(
            self.spec_digest, self.count, (self.index,), self.point_indices
        )

    @property
    def artifact_name(self) -> str:
        return f"shard-{self.index:04d}-of-{self.count:04d}{SHARD_SUFFIX}"


class ShardPlan:
    """Deterministic chip-major partition of a spec's grid into ``count`` shards.

    The plan is a pure function of its inputs: every process and machine
    planning the same ``(spec, count)`` computes the same shards, the
    same point assignment and the same shard keys — no coordination
    service needed.  Shards are disjoint, cover every point, and differ
    in size by at most one point; when ``count`` exceeds the number of
    points the surplus shards are empty (and still merge cleanly).
    """

    def __init__(self, spec: SweepSpec, count: int):
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        self.spec = spec
        self.count = count
        self.digest = spec_digest(spec)
        points = spec.points()
        groups = ChipMajorPacks.partition_chip_major(
            [_chip_axis_key(point) for point in points]
        )
        order = [index for group in groups for index in group]
        base, remainder = divmod(len(order), count)
        shards: list[Shard] = []
        offset = 0
        for index in range(count):
            size = base + (1 if index < remainder else 0)
            shards.append(
                Shard(
                    index=index,
                    count=count,
                    spec_digest=self.digest,
                    point_indices=tuple(order[offset : offset + size]),
                )
            )
            offset += size
        self.shards = shards

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __getitem__(self, index: int) -> Shard:
        return self.shards[index]

    def points_for(self, index: int) -> list[SweepPoint]:
        """The shard's points, in its (chip-major) execution order."""
        points = self.spec.points()
        return [points[i] for i in self.shards[index].point_indices]

    def describe(self) -> str:
        sizes = [len(shard.point_indices) for shard in self.shards]
        return (
            f"{sum(sizes)} point(s) over {self.count} shard(s), "
            f"sizes {min(sizes)}..{max(sizes)}"
        )


# ---------------------------------------------------------------------- #
# Shard artifacts
# ---------------------------------------------------------------------- #
@dataclass
class ShardArtifact:
    """The packed rows of one or more shards, (de)serializable as a
    self-describing ``.repro-shard`` directory."""

    spec_digest: str
    shard_count: int
    shard_indices: tuple[int, ...]
    columns: tuple[str, ...]
    #: ``(point index, point cache key, row count)`` in stored row order.
    points: list[tuple[int, str, int]]
    #: All rows, point-major, aligned with :attr:`points`.
    values: list[tuple[Any, ...]]
    #: Package version that wrote the artifact (current version for
    #: freshly built ones).
    version: str = __version__
    #: Where the artifact was read from, for error messages.
    path: Path | None = field(default=None, compare=False)

    @property
    def key(self) -> str:
        return shard_key(
            self.spec_digest,
            self.shard_count,
            self.shard_indices,
            [index for index, _key, _rows in self.points],
        )

    @property
    def row_count(self) -> int:
        return len(self.values)

    @property
    def artifact_name(self) -> str:
        if len(self.shard_indices) == 1:
            index = self.shard_indices[0]
            return f"shard-{index:04d}-of-{self.shard_count:04d}{SHARD_SUFFIX}"
        return f"merged-{self.key[:12]}{SHARD_SUFFIX}"

    # ------------------------------------------------------------------ #
    @classmethod
    def from_blocks(
        cls, shard: Shard, blocks: list[tuple[SweepPoint, PackedRows]]
    ) -> "ShardArtifact":
        """Assemble one shard's artifact from its per-point packed rows.

        Rows are stored sorted by point index so every artifact of a
        shard is byte-deterministic regardless of execution order.
        """
        blocks = sorted(blocks, key=lambda block: block[0].index)
        columns: tuple[str, ...] = ()
        for _point, (block_columns, block_values) in blocks:
            if block_values:
                columns = tuple(block_columns)
                break
        points: list[tuple[int, str, int]] = []
        values: list[tuple[Any, ...]] = []
        for point, (block_columns, block_values) in blocks:
            if block_values and tuple(block_columns) != columns:
                raise ShardError(
                    "cannot serialize heterogeneous row schemas into one "
                    "shard artifact (stale cache entries from another code "
                    f"version?): {tuple(block_columns)} vs {columns}"
                )
            points.append((point.index, point.cache_key, len(block_values)))
            values.extend(tuple(row) for row in block_values)
        return cls(
            spec_digest=shard.spec_digest,
            shard_count=shard.count,
            shard_indices=(shard.index,),
            columns=columns,
            points=points,
            values=values,
        )

    def result(self) -> SweepResult:
        """This artifact's rows as a packed :class:`SweepResult`."""
        return SweepResult.from_packed(self.columns, self.values)

    # ------------------------------------------------------------------ #
    def write(self, target: str | Path) -> Path:
        """Serialize into ``target`` and return the artifact directory.

        ``target`` is either the artifact directory itself (a path
        ending in ``.repro-shard``) or a parent directory, in which case
        the canonical :attr:`artifact_name` is used.  Float columns go
        to ``columns.npz`` (``float64`` arrays, exact round trip);
        everything else to ``columns.json``; the manifest is written
        last so a crashed writer never leaves a manifest describing
        missing column files.
        """
        target = Path(target)
        path = target if target.name.endswith(SHARD_SUFFIX) else (
            target / self.artifact_name
        )
        path.mkdir(parents=True, exist_ok=True)
        series = {
            name: [row[position] for row in self.values]
            for position, name in enumerate(self.columns)
        }
        numeric = [
            name
            for name, cells in series.items()
            if cells and all(type(cell) is float for cell in cells)
        ]
        arrays = {
            name: np.asarray(series[name], dtype=np.float64) for name in numeric
        }
        objects = {
            name: cells for name, cells in series.items() if name not in numeric
        }
        atomic_replace(
            path / NUMERIC_NAME, lambda handle: np.savez(handle, **arrays)
        )
        atomic_replace(
            path / OBJECT_NAME,
            lambda handle: handle.write(json.dumps(objects).encode("utf-8")),
        )
        manifest = {
            "schema": SHARD_SCHEMA,
            "kind": "repro-shard",
            "version": self.version,
            "spec_digest": self.spec_digest,
            "shard_count": self.shard_count,
            "shard_indices": list(self.shard_indices),
            "shard_key": self.key,
            "row_count": self.row_count,
            "columns": list(self.columns),
            "numeric_columns": numeric,
            "points": [
                {"index": index, "cache_key": key, "rows": rows}
                for index, key, rows in self.points
            ],
        }
        atomic_replace(
            path / MANIFEST_NAME,
            lambda handle: handle.write(
                json.dumps(manifest, indent=2).encode("utf-8")
            ),
        )
        self.path = path
        return path

    @classmethod
    def read(cls, path: str | Path) -> "ShardArtifact":
        """Deserialize one ``.repro-shard`` directory."""
        path = Path(path)
        try:
            manifest = json.loads((path / MANIFEST_NAME).read_text())
        except (OSError, ValueError) as error:
            raise ShardError(
                f"{path}: not a readable shard artifact ({error})"
            ) from error
        if not isinstance(manifest, dict) or manifest.get("kind") != "repro-shard":
            raise ShardError(f"{path}: manifest is not a repro-shard manifest")
        if manifest.get("schema") != SHARD_SCHEMA:
            raise ShardError(
                f"{path}: unsupported shard schema {manifest.get('schema')!r} "
                f"(this build reads schema {SHARD_SCHEMA})"
            )
        try:
            columns = tuple(manifest["columns"])
            numeric = set(manifest["numeric_columns"])
            points = [
                (entry["index"], entry["cache_key"], entry["rows"])
                for entry in manifest["points"]
            ]
            row_count = manifest["row_count"]
            objects = json.loads((path / OBJECT_NAME).read_text())
            series: dict[str, list[Any]] = {}
            if numeric:
                with np.load(path / NUMERIC_NAME, allow_pickle=False) as arrays:
                    for name in numeric:
                        series[name] = arrays[name].tolist()
            for name in columns:
                if name not in numeric:
                    series[name] = objects[name]
        except (OSError, KeyError, ValueError) as error:
            raise ShardError(
                f"{path}: corrupt or incomplete shard artifact ({error})"
            ) from error
        lengths = {len(cells) for cells in series.values()}
        if lengths - {row_count}:
            raise ShardError(
                f"{path}: column lengths {sorted(lengths)} disagree with the "
                f"manifest row count {row_count}"
            )
        if sum(rows for _i, _k, rows in points) != row_count:
            raise ShardError(
                f"{path}: per-point row accounting disagrees with row_count"
            )
        values = (
            [tuple(row) for row in zip(*(series[name] for name in columns))]
            if columns
            else []
        )
        return cls(
            spec_digest=manifest["spec_digest"],
            shard_count=manifest["shard_count"],
            shard_indices=tuple(manifest["shard_indices"]),
            columns=columns,
            points=points,
            values=values,
            version=manifest.get("version", "unknown"),
            path=path,
        )


# ---------------------------------------------------------------------- #
# Running one shard
# ---------------------------------------------------------------------- #
class ShardRunner:
    """Executes single shards of a spec through the packed sweep pipeline.

    Parameters mirror :class:`~repro.experiments.runner.SweepRunner`;
    ``cache`` may be a :class:`SimulationCache` with a shared directory
    attached (see :class:`~repro.experiments.cache.SharedCacheDir`) so
    concurrent shards reuse each other's simulate misses.
    """

    def __init__(
        self,
        spec: SweepSpec,
        shard_count: int,
        cache: SimulationCache | None = None,
        max_workers: int | None = None,
    ):
        self.plan = ShardPlan(spec, shard_count)
        self.cache = cache
        self.max_workers = max_workers

    def run(self, index: int) -> ShardArtifact:
        """Evaluate shard ``index`` and return its (unwritten) artifact."""
        shard = self.plan[index]
        points = self.plan.points_for(index)
        runner = SweepRunner(
            self.plan.spec, cache=self.cache, max_workers=self.max_workers
        )
        cache = runner.resolve_cache()
        packed_by_index = runner.execute_points(points, cache)
        cache.flush()
        blocks = [(point, packed_by_index[point.index]) for point in points]
        return ShardArtifact.from_blocks(shard, blocks)

    def write(self, index: int, shard_dir: str | Path) -> Path:
        """Evaluate shard ``index`` and serialize it under ``shard_dir``."""
        return self.run(index).write(shard_dir)


# ---------------------------------------------------------------------- #
# Merging
# ---------------------------------------------------------------------- #
def merge_artifacts(artifacts: Sequence[ShardArtifact]) -> ShardArtifact:
    """Merge shard artifacts into one combined artifact.

    Deduplicates identical artifacts by key (idempotent) and is
    independent of input order and grouping (associative: merging
    partial merges equals merging everything at once — a merged
    artifact is just an artifact covering several shard indices).
    Raises :class:`ShardError` on foreign artifacts (different spec
    digest or shard count) and on duplicated-but-different shards or
    points; missing shards are allowed here (partial merge) and only
    rejected by :func:`merge_to_result`.
    """
    if not artifacts:
        raise ShardError("no shard artifacts to merge")
    deduped: dict[str, ShardArtifact] = {}
    for artifact in artifacts:
        existing = deduped.get(artifact.key)
        if existing is None:
            deduped[artifact.key] = artifact
        elif existing.points != artifact.points or existing.values != artifact.values:
            # The key covers which slice of which plan, not the row
            # bytes: equal keys with different rows mean one side is
            # corrupt (or a nondeterminism bug worth failing loudly on).
            raise ShardError(
                f"duplicate shard data for shards {artifact.shard_indices}: "
                f"{existing.path or existing.key} and "
                f"{artifact.path or artifact.key} disagree"
            )
    first = next(iter(deduped.values()))
    for artifact in deduped.values():
        if artifact.spec_digest != first.spec_digest:
            detail = ""
            if artifact.version != first.version:
                detail = (
                    f" (written by versions {first.version} and "
                    f"{artifact.version})"
                )
            raise ShardError(
                f"foreign shard {artifact.path or artifact.key}: spec digest "
                f"{artifact.spec_digest} does not match {first.spec_digest}"
                f"{detail}"
            )
        if artifact.shard_count != first.shard_count:
            raise ShardError(
                f"foreign shard {artifact.path or artifact.key}: planned for "
                f"{artifact.shard_count} shard(s), expected {first.shard_count}"
            )
    covered: set[int] = set()
    for artifact in deduped.values():
        covered.update(artifact.shard_indices)
    columns: tuple[str, ...] = ()
    for artifact in deduped.values():
        if artifact.values:
            columns = artifact.columns
            break
    blocks: dict[int, tuple[str, list[tuple[Any, ...]]]] = {}
    owner: dict[int, str] = {}
    for artifact in deduped.values():
        if artifact.values and artifact.columns != columns:
            raise ShardError(
                f"{artifact.path or artifact.key}: column schema "
                f"{artifact.columns} does not match {columns}"
            )
        offset = 0
        for point_index, cache_key, rows in artifact.points:
            block = (cache_key, artifact.values[offset : offset + rows])
            offset += rows
            existing = blocks.get(point_index)
            if existing is not None:
                # Overlapping coverage (e.g. a partial merge re-merged
                # with one of its inputs) is fine when the rows agree —
                # merge stays idempotent; disagreement means two
                # different runs claim the same shard slot.
                if existing != block:
                    raise ShardError(
                        f"duplicate shard data for point {point_index}: "
                        f"{owner[point_index]} and "
                        f"{artifact.path or artifact.key} disagree"
                    )
                continue
            blocks[point_index] = block
            owner[point_index] = str(artifact.path or artifact.key)
    points: list[tuple[int, str, int]] = []
    values: list[tuple[Any, ...]] = []
    for point_index in sorted(blocks):
        cache_key, rows = blocks[point_index]
        points.append((point_index, cache_key, len(rows)))
        values.extend(rows)
    return ShardArtifact(
        spec_digest=first.spec_digest,
        shard_count=first.shard_count,
        shard_indices=tuple(sorted(covered)),
        columns=columns,
        points=points,
        values=values,
    )


def resolve_artifact_paths(paths: Iterable[str | Path]) -> list[Path]:
    """Expand artifact paths: each entry is an artifact directory, or a
    directory containing ``*.repro-shard`` artifacts (scanned sorted)."""
    resolved: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if (entry / MANIFEST_NAME).is_file():
            resolved.append(entry)
            continue
        if entry.is_dir():
            found = sorted(
                child
                for child in entry.iterdir()
                if child.name.endswith(SHARD_SUFFIX) and child.is_dir()
            )
            if found:
                resolved.extend(found)
                continue
        raise ShardError(
            f"{entry}: neither a shard artifact nor a directory containing "
            f"*{SHARD_SUFFIX} artifacts"
        )
    return resolved


def merge_shard_paths(
    paths: Iterable[str | Path], require_complete: bool = True
) -> ShardArtifact:
    """Read and merge artifacts from disk (see :func:`merge_artifacts`).

    With ``require_complete`` (the default, and what
    :meth:`SweepResult.merge_shards
    <repro.experiments.result.SweepResult.merge_shards>` uses) every
    shard of the plan must be present — missing indices raise
    :class:`ShardError` by name.
    """
    merged = merge_artifacts(
        [ShardArtifact.read(path) for path in resolve_artifact_paths(paths)]
    )
    if require_complete:
        missing = sorted(set(range(merged.shard_count)) - set(merged.shard_indices))
        if missing:
            raise ShardError(
                f"missing shard(s) {missing} of {merged.shard_count}; pass "
                "every artifact (or merge partially via merge_artifacts/"
                "`repro merge-shards --output`)"
            )
    return merged


__all__ = [
    "MANIFEST_NAME",
    "NUMERIC_NAME",
    "OBJECT_NAME",
    "SHARD_SCHEMA",
    "SHARD_SUFFIX",
    "Shard",
    "ShardArtifact",
    "ShardError",
    "ShardPlan",
    "ShardRunner",
    "merge_artifacts",
    "merge_shard_paths",
    "resolve_artifact_paths",
    "spec_digest",
]
