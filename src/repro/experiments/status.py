"""Live progress API for ``repro launch`` (``--serve``) and its client.

:class:`StatusServer` is a read-only stdlib :mod:`http.server` running
on a daemon thread inside the scheduler process.  It exposes the run
as JSON:

=============  ========================================================
``/status``    the scheduler's live snapshot — per-shard state/attempts/
               host, per-host health, partial merge summary
``/journal``   the launch journal (live tail; ``?archive=1`` prepends
               the compacted archive's events)
``/catalog``   cross-run experiment-catalog summary (entry counts by
               status/kind plus this spec's coverage) — only when the
               launch runs with ``--catalog``
``/``          endpoint index
=============  ========================================================

Everything is GET-only and computed on demand from scheduler state the
main loop already maintains; the server never mutates anything, so a
watcher cannot perturb a run.  :func:`fetch_status` /
:func:`render_status` back the ``repro launch-status URL`` command.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable


class StatusError(RuntimeError):
    """The progress endpoint could not be reached or parsed."""


def parse_address(text: str) -> tuple[str, int]:
    """``":8765"`` / ``"8765"`` / ``"0.0.0.0:8765"`` → ``(host, port)``.

    The default host is loopback — exposing the API beyond the machine
    is an explicit opt-in (``0.0.0.0:PORT``).
    """
    text = text.strip()
    host, _, port_text = text.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise StatusError(
            f"bad --serve address {text!r} (expected [HOST]:PORT)"
        ) from None
    return host, port


class StatusServer:
    """Serves a scheduler's live snapshot over HTTP (read-only)."""

    def __init__(
        self,
        snapshot: Callable[[], dict[str, Any]],
        journal_path: str | Path,
        *,
        address: str = ":0",
        catalog: Callable[[], dict[str, Any]] | None = None,
    ):
        self._snapshot = snapshot
        self._journal_path = Path(journal_path)
        self._catalog = catalog
        host, port = parse_address(address)
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args: Any) -> None:  # quiet by design
                pass

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    payload = server._route(self.path)
                except Exception as error:  # noqa: BLE001 - 500, not a crash
                    self._reply(500, {"error": str(error)})
                    return
                if payload is None:
                    self._reply(404, {"error": f"no such endpoint {self.path}"})
                else:
                    self._reply(200, payload)

            def _reply(self, code: int, payload: Any) -> None:
                body = json.dumps(payload, indent=2).encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-status:{self.port}",
            daemon=True,
        )
        self._thread.start()

    # -- routing --------------------------------------------------------- #
    def _route(self, path: str) -> Any | None:
        parsed = urllib.parse.urlparse(path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/":
            endpoints = ["/status", "/journal"]
            if self._catalog is not None:
                endpoints.append("/catalog")
            return {
                "kind": "repro-launch-status-index",
                "endpoints": endpoints,
            }
        if route == "/catalog" and self._catalog is not None:
            return self._catalog()
        if route == "/status":
            return self._snapshot()
        if route == "/journal":
            from repro.experiments.scheduler import Journal

            query = urllib.parse.parse_qs(parsed.query)
            events: list[dict[str, Any]] = []
            if query.get("archive", ["0"])[0] not in ("0", ""):
                events += Journal.read_events(
                    self._journal_path.with_name("journal-archive.jsonl")
                )
            events += Journal.read_events(self._journal_path)
            return {"kind": "repro-launch-journal", "events": events}
        return None

    # -- lifecycle ------------------------------------------------------- #
    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        display = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        return f"http://{display}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)


# ---------------------------------------------------------------------- #
# Client side (``repro launch-status``)
# ---------------------------------------------------------------------- #
def fetch_status(url: str, timeout: float = 10.0) -> dict[str, Any]:
    """GET ``URL[/status]`` and return the decoded snapshot."""
    if "://" not in url:
        url = f"http://{url}"
    if not url.rstrip("/").endswith("/status"):
        url = url.rstrip("/") + "/status"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        # The server is alive but rejected the request — its actual
        # status matters, so don't collapse it into "not reachable".
        raise StatusError(f"cannot fetch {url}: {error}") from error
    except (urllib.error.URLError, OSError, TimeoutError) as error:
        # Connection refused / timed out / DNS failure: the usual cause
        # is simply that the launch (and its --serve endpoint) is gone.
        raise StatusError(
            f"cannot fetch {url}: server not reachable (run over?) "
            f"[{getattr(error, 'reason', error)}]"
        ) from error
    except ValueError as error:
        raise StatusError(f"cannot fetch {url}: {error}") from error
    if not isinstance(payload, dict) or payload.get("kind") != "repro-launch-status":
        raise StatusError(f"{url} did not return a launch-status payload")
    return payload


def render_status(payload: dict[str, Any]) -> str:
    """Human-readable rendering of a ``/status`` snapshot."""
    states = payload.get("states", {})
    state_text = ", ".join(
        f"{name}: {count}" for name, count in sorted(states.items()) if count
    )
    elapsed = payload.get("elapsed_s")
    elapsed_text = f"{elapsed}s" if isinstance(elapsed, (int, float)) else "?"
    lines = [
        f"launch {payload.get('digest', '?')} "
        f"({payload.get('shard_count', '?')} shard(s), "
        f"backend {payload.get('backend', '?')})",
        f"elapsed       : {elapsed_text}",
        f"states        : {state_text or 'none'}",
        f"dispatches    : {payload.get('dispatches', 0)} "
        f"({payload.get('speculative_dispatches', 0)} speculative, "
        f"{payload.get('orphaned_events', 0)} orphaned)",
    ]
    merge = payload.get("merge")
    if merge:
        lines.append(
            f"partial merge : {len(merge.get('covered_shards', []))} shard(s), "
            f"{merge.get('rows', 0)} row(s)"
        )
    hosts = payload.get("hosts")
    if hosts:
        lines.append("hosts         :")
        for host in hosts:
            flags = " QUARANTINED" if host.get("quarantined") else ""
            lines.append(
                f"  {host.get('name')}: {host.get('landed', 0)} landed, "
                f"{host.get('failures', 0)} failed, "
                f"{host.get('inflight', 0)} in flight{flags}"
            )
    shards = payload.get("shards", ())
    busy = [s for s in shards if s.get("state") not in ("landed",)]
    if busy:
        lines.append("shards        :")
        for shard in busy:
            where = f" @{shard['host']}" if shard.get("host") else ""
            lines.append(
                f"  #{shard['index']}: {shard['state']} "
                f"(attempt {shard.get('attempts', 0)}{where})"
            )
    return "\n".join(lines)


__all__ = [
    "StatusError",
    "StatusServer",
    "fetch_status",
    "parse_address",
    "render_status",
]
