"""Executes a :class:`SweepSpec`, serially or across worker processes.

The runner guarantees **bit-identical results in either mode**: every
row is a pure function of its :class:`SweepPoint`, points are evaluated
in deterministic grid order (``ProcessPoolExecutor.map`` preserves input
order), and floats are never re-derived from formatted strings.  Worker
processes keep a per-process :class:`SimulationCache` so the expensive
workload profiles are shared between the points each worker handles; in
serial mode the runner's own cache plays that role and additionally
memoizes finished rows, making a warm re-run free of simulator calls.
"""

from __future__ import annotations

import logging
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.core.results import SimulationResult
from repro.gating.report import PolicyName
from repro.hardware.components import Component

from repro.experiments.cache import SimulationCache, simulate_cached
from repro.experiments.result import SweepResult
from repro.experiments.spec import SweepPoint, SweepSpec

_LOG = logging.getLogger(__name__)

#: Temporal-utilization columns and the component each one reads.
_UTILIZATION_COLUMNS = (
    ("sa_temporal_util", Component.SA),
    ("vu_temporal_util", Component.VU),
    ("hbm_temporal_util", Component.HBM),
    ("ici_temporal_util", Component.ICI),
)


def rows_from_result(point: SweepPoint, result: SimulationResult) -> list[dict[str, Any]]:
    """Flatten one simulation into rows (one per evaluated policy)."""
    rows: list[dict[str, Any]] = []
    utilization = {
        column: result.temporal_utilization(component)
        for column, component in _UTILIZATION_COLUMNS
    }
    sa_spatial = result.sa_spatial_utilization()
    for policy, report in result.reports.items():
        row: dict[str, Any] = {
            "workload": result.workload,
            "chip": result.chip.name,
            "num_chips": result.num_chips,
            "batch_size": result.batch_size,
            "parallelism": result.parallelism.describe(),
            "gating_label": point.gating_label,
            "policy": policy.value,
            "time_s": report.total_time_s,
            "overhead_time_s": report.overhead_time_s,
            "total_energy_j": report.total_energy_j,
            "static_energy_j": report.total_static_j,
            "dynamic_energy_j": report.total_dynamic_j,
            "static_fraction": report.static_fraction(),
            "average_power_w": report.average_power_w,
            "peak_power_w": report.peak_power_w,
            "savings_vs_nopg": result.energy_savings(policy),
            "overhead_vs_nopg": result.performance_overhead(policy),
            "pod_energy_j": result.pod_energy_j(policy),
            "energy_per_work_j": result.energy_per_work(policy),
            "work_per_iteration": result.work_per_iteration,
            "iteration_unit": result.iteration_unit,
        }
        for component in Component.all():
            row[f"energy_{component.value}_j"] = report.component_energy_j(component)
            row[f"static_{component.value}_j"] = report.static_energy_j.get(
                component, 0.0
            )
        row.update(utilization)
        row["sa_spatial_util"] = sa_spatial
        rows.append(row)
    return rows


def run_point(point: SweepPoint, cache: SimulationCache | None = None) -> list[dict[str, Any]]:
    """Evaluate one sweep point into its result rows."""
    result = simulate_cached(point.workload, point.config, cache)
    return rows_from_result(point, result)


# Per-worker-process cache: shares workload profiles between the points a
# worker handles without any cross-process communication.
_WORKER_CACHE: SimulationCache | None = None


def _run_point_in_worker(point: SweepPoint) -> list[dict[str, Any]]:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = SimulationCache()
    return run_point(point, _WORKER_CACHE)


class SweepRunner:
    """Runs every point of a :class:`SweepSpec` into a :class:`SweepResult`.

    Parameters
    ----------
    spec:
        The grid to execute.
    cache:
        Optional :class:`SimulationCache`.  Cached rows are returned
        without re-simulation (in serial *and* parallel mode: the row
        lookup happens before work is dispatched); freshly computed rows
        are written back and flushed to the disk layer when present.
    max_workers:
        ``None``, ``0`` or ``1`` run serially; ``>= 2`` dispatches the
        uncached points to a :class:`ProcessPoolExecutor`.  If the pool
        cannot be created or fails (sandboxed environments, pickling
        restrictions), the runner logs a warning and falls back to the
        serial path, which produces identical rows.
    """

    def __init__(
        self,
        spec: SweepSpec,
        cache: SimulationCache | None = None,
        max_workers: int | None = None,
    ):
        self.spec = spec
        self.cache = cache
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    def run(self) -> SweepResult:
        """Execute the sweep and return the assembled table."""
        # With no caller-supplied cache, a run-scoped one still shares
        # workload profiles across grid points (e.g. gating-parameter
        # sweeps re-evaluate a single simulated profile); it just isn't
        # retained between runs.
        cache = self.cache if self.cache is not None else SimulationCache()
        points = self.spec.points()
        rows_by_index: dict[int, list[dict[str, Any]]] = {}
        pending: list[SweepPoint] = []
        for point in points:
            cached = cache.get_rows(point.cache_key)
            if cached is not None:
                rows_by_index[point.index] = cached
            else:
                pending.append(point)

        if pending:
            if self.max_workers is not None and self.max_workers >= 2:
                computed = self._run_parallel(pending, cache)
            else:
                computed = [run_point(point, cache) for point in pending]
            for point, rows in zip(pending, computed):
                rows_by_index[point.index] = rows
                cache.put_rows(point.cache_key, rows)
        cache.flush()

        all_rows = [
            row for index in sorted(rows_by_index) for row in rows_by_index[index]
        ]
        return SweepResult.from_rows(all_rows)

    # ------------------------------------------------------------------ #
    def _run_parallel(
        self, pending: list[SweepPoint], cache: SimulationCache
    ) -> list[list[dict[str, Any]]]:
        # Only pool-infrastructure failures fall back to the serial path;
        # a point-level error (e.g. an unknown workload) propagates as-is
        # rather than re-simulating the whole grid to rediscover it.
        def _fallback(error: BaseException) -> list[list[dict[str, Any]]]:
            _LOG.warning(
                "parallel sweep execution failed (%s: %s); falling back to serial",
                type(error).__name__,
                error,
            )
            return [run_point(point, cache) for point in pending]

        # Points arrive in grid order with gating parameters innermost, so
        # variants sharing one workload profile are consecutive; a large
        # chunksize keeps them on one worker, preserving the per-process
        # profile-cache sharing the serial path gets for free.
        chunksize = max(1, -(-len(pending) // self.max_workers))
        try:
            executor = ProcessPoolExecutor(max_workers=self.max_workers)
        except OSError as error:  # pool creation only: sandboxes, no sem support
            return _fallback(error)
        try:
            with executor:
                return list(
                    executor.map(_run_point_in_worker, pending, chunksize=chunksize)
                )
        except (BrokenProcessPool, pickle.PicklingError) as error:
            # executor.map re-raises worker exceptions with their original
            # type, so a point-level error (even an OSError from a builder)
            # propagates as-is instead of triggering a serial re-run.
            return _fallback(error)


def run_sweep(
    spec: SweepSpec,
    cache: SimulationCache | None = None,
    max_workers: int | None = None,
) -> SweepResult:
    """Convenience wrapper: ``SweepRunner(spec, cache, max_workers).run()``."""
    return SweepRunner(spec, cache=cache, max_workers=max_workers).run()


__all__ = ["SweepRunner", "rows_from_result", "run_point", "run_sweep"]
