"""Executes a :class:`SweepSpec`, serially or across worker processes.

The runner guarantees **bit-identical results in either mode**: every
row is a pure function of its :class:`SweepPoint`, points are evaluated
in deterministic grid order (``ProcessPoolExecutor.map`` preserves input
order), and floats are never re-derived from formatted strings.  Worker
processes receive chunk-sized *lists* of points so the packed
batch/grid evaluation path (:func:`run_points_packed`, backed by
:func:`~repro.experiments.cache.simulate_cached_many` and the
grid-batched policy kernel) runs inside the pool too, with a
per-process :class:`SimulationCache` sharing the expensive workload
profiles between a worker's points; in serial mode the runner's own
cache plays that role and additionally memoizes finished rows, making a
warm re-run free of simulator calls.

Row assembly is **array-native**: :func:`assemble_packed_rows` builds
one column array per result column (vectorizing the derived-cell
arithmetic of :func:`rows_from_result` operation-for-operation, so the
cells are bit-identical doubles) and hands the runner packed
``(columns, value-tuples)`` rows — no ~40-key dict per row is ever
built on the sweep path.  :func:`rows_from_result` remains the
per-point object-path oracle the equivalence tests compare against.
"""

from __future__ import annotations

import logging
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

import numpy as np

from repro.core.results import SimulationResult
from repro.gating.policies import STATIC_ENERGY_ORDER
from repro.gating.report import PolicyName
from repro.hardware.components import Component
from repro.simulator import columnar

from repro.experiments.cache import (
    PackedRows,
    SimulationCache,
    pack_rows,
    simulate_cached,
    simulate_cached_cells,
    simulate_cached_many,
    unpack_rows,
)
from repro.experiments.result import SweepResult
from repro.experiments.spec import SweepPoint, SweepSpec

_LOG = logging.getLogger(__name__)

#: Temporal-utilization columns and the component each one reads.
_UTILIZATION_COLUMNS = (
    ("sa_temporal_util", Component.SA),
    ("vu_temporal_util", Component.VU),
    ("hbm_temporal_util", Component.HBM),
    ("ici_temporal_util", Component.ICI),
)

#: Per-component energy column names, built once (not per row).
_ENERGY_COLUMNS = tuple(
    (component, f"energy_{component.value}_j", f"static_{component.value}_j")
    for component in Component.all()
)

#: Per-report static-energy insertion order, imported from the single
#: definition next to the report producers: the vectorized
#: ``sum(values())`` replications below must accumulate in exactly this
#: order to stay bit-identical to the scalar oracle.
_STATIC_SUM_ORDER = STATIC_ENERGY_ORDER

#: The full result-row schema, in column order.
ROW_COLUMNS: tuple[str, ...] = (
    (
        "workload",
        "chip",
        "num_chips",
        "batch_size",
        "parallelism",
        "gating_label",
        "policy",
        "time_s",
        "overhead_time_s",
        "total_energy_j",
        "static_energy_j",
        "dynamic_energy_j",
        "static_fraction",
        "average_power_w",
        "peak_power_w",
        "savings_vs_nopg",
        "overhead_vs_nopg",
        "pod_energy_j",
        "energy_per_work_j",
        "work_per_iteration",
        "iteration_unit",
    )
    + tuple(
        name
        for _, energy_column, static_column in _ENERGY_COLUMNS
        for name in (energy_column, static_column)
    )
    + tuple(column for column, _ in _UTILIZATION_COLUMNS)
    + ("sa_spatial_util",)
)


def rows_from_result(point: SweepPoint, result: SimulationResult) -> list[dict[str, Any]]:
    """Flatten one simulation into rows (one per evaluated policy).

    Derived cells replicate the :class:`EnergyReport` /
    :class:`SimulationResult` property chains with each report's energy
    totals computed once — same float operations, same results, without
    re-summing the per-component dicts for every derived column.

    This is the per-point oracle of the sweep path; the runner itself
    assembles the same cells column-wise (:func:`assemble_packed_rows`).
    """
    rows: list[dict[str, Any]] = []
    utilization = {
        column: result.temporal_utilization(component)
        for column, component in _UTILIZATION_COLUMNS
    }
    sa_spatial = result.sa_spatial_utilization()
    nopg = result.report(PolicyName.NOPG)
    nopg_total_j = sum(nopg.static_energy_j.values()) + sum(
        nopg.dynamic_energy_j.values()
    )
    nopg_time_s = nopg.baseline_time_s + nopg.overhead_time_s
    for policy, report in result.reports.items():
        static_j = sum(report.static_energy_j.values())
        dynamic_j = sum(report.dynamic_energy_j.values())
        total_j = static_j + dynamic_j
        time_s = report.baseline_time_s + report.overhead_time_s
        pod_energy_j = total_j * result.num_chips
        row: dict[str, Any] = {
            "workload": result.workload,
            "chip": result.chip.name,
            "num_chips": result.num_chips,
            "batch_size": result.batch_size,
            "parallelism": result.parallelism.describe(),
            "gating_label": point.gating_label,
            "policy": policy.value,
            "time_s": time_s,
            "overhead_time_s": report.overhead_time_s,
            "total_energy_j": total_j,
            "static_energy_j": static_j,
            "dynamic_energy_j": dynamic_j,
            "static_fraction": 0.0 if total_j <= 0 else static_j / total_j,
            "average_power_w": 0.0 if time_s <= 0 else total_j / time_s,
            "peak_power_w": report.peak_power_w,
            "savings_vs_nopg": (
                0.0 if nopg_total_j <= 0 else 1.0 - total_j / nopg_total_j
            ),
            "overhead_vs_nopg": (
                0.0 if nopg_time_s <= 0 else time_s / nopg_time_s - 1.0
            ),
            "pod_energy_j": pod_energy_j,
            "energy_per_work_j": pod_energy_j / result.work_per_iteration,
            "work_per_iteration": result.work_per_iteration,
            "iteration_unit": result.iteration_unit,
        }
        static_energy = report.static_energy_j
        dynamic_energy = report.dynamic_energy_j
        for component, energy_column, static_column in _ENERGY_COLUMNS:
            static_c = static_energy.get(component, 0.0)
            row[energy_column] = static_c + dynamic_energy.get(component, 0.0)
            row[static_column] = static_c
        row.update(utilization)
        row["sa_spatial_util"] = sa_spatial
        rows.append(row)
    return rows


def assemble_packed_rows(
    points: list[SweepPoint], results: list[SimulationResult]
) -> list[PackedRows]:
    """Assemble result rows column-wise: one array per column, no dicts.

    Gathers the base report scalars of every (point, policy) row into
    ``float64`` column arrays, then computes every derived column with
    vectorized elementwise operations mirroring the scalar chains of
    :func:`rows_from_result` (same operations, same order — the cells
    are bit-identical doubles).  Returns one packed row block per point
    (the cache granularity); the per-component accumulations follow the
    reports' dict insertion order, which every report producer in the
    tree shares.
    """
    cells = [list(result.reports.items()) for result in results]
    return assemble_packed_cells(points, results, cells)


def assemble_packed_cells(
    points: list[SweepPoint],
    results: list[SimulationResult],
    cells: list[list],
) -> list[PackedRows]:
    """Column-wise row assembly straight from pricing cells.

    The fused simulate→price back end of :func:`assemble_packed_rows`:
    ``cells[i]`` holds one ``(policy, cell)`` pair per row of point
    ``i``, where a cell is either a materialized
    :class:`~repro.gating.report.EnergyReport` (its scalars read
    per-row, exactly like before) or a ``(grid, row, col)`` triple into
    a :class:`~repro.gating.policies.GridEnergyReports`.  Triples are
    gathered per grid with one fancy-indexing read per base column —
    the same ``float64`` array elements :meth:`GridEnergyReports.report
    <repro.gating.policies.GridEnergyReports.report>` would have read
    one ``float()`` at a time, so the assembled cells are bit-identical
    while skipping the per-cell report materialization entirely.
    """
    n_rows = sum(len(row_cells) for row_cells in cells)
    baseline = np.empty(n_rows)
    overhead = np.empty(n_rows)
    peak = np.empty(n_rows)
    num_chips_f = np.empty(n_rows)
    work = np.empty(n_rows)
    static_c = {component: np.empty(n_rows) for component in Component.all()}
    dynamic_c = {component: np.empty(n_rows) for component in Component.all()}
    nopg_row = np.empty(n_rows, dtype=np.intp)

    workload_rows: list[str] = []
    chip_rows: list[str] = []
    num_chips_rows: list[int] = []
    batch_rows: list[int] = []
    parallelism_rows: list[str] = []
    label_rows: list[str] = []
    policy_rows: list[str] = []
    unit_rows: list[str] = []
    util_rows: dict[str, list[float]] = {
        column: [] for column, _ in _UTILIZATION_COLUMNS
    }
    spatial_rows: list[float] = []

    # Rows backed by one grid are gathered together after the scan:
    # id(grid) -> [grid, destination rows, grid rows, grid cols].
    grid_gather: dict[int, list] = {}
    # Utilizations are profile-level; points sharing one cached profile
    # (e.g. a gating-parameter grid) compute them once.
    util_memo: dict[int, tuple[list[float], float]] = {}

    index = 0
    for point, result, row_cells in zip(points, results, cells):
        start = index
        n_policies = len(row_cells)
        profile_id = id(result.profile)
        utils = util_memo.get(profile_id)
        if utils is None:
            utils = (
                [
                    result.temporal_utilization(component)
                    for _, component in _UTILIZATION_COLUMNS
                ],
                result.sa_spatial_utilization(),
            )
            util_memo[profile_id] = utils
        utilization, sa_spatial = utils
        chip_name = result.chip.name
        parallelism = result.parallelism.describe()
        nopg_index: int | None = None
        for policy, cell in row_cells:
            if policy is PolicyName.NOPG:
                nopg_index = index
            if isinstance(cell, tuple):
                grid, grid_row, grid_col = cell
                bucket = grid_gather.setdefault(id(grid), [grid, [], [], []])
                bucket[1].append(index)
                bucket[2].append(grid_row)
                bucket[3].append(grid_col)
            else:
                baseline[index] = cell.baseline_time_s
                overhead[index] = cell.overhead_time_s
                peak[index] = cell.peak_power_w
                static_energy = cell.static_energy_j
                dynamic_energy = cell.dynamic_energy_j
                for component in Component.all():
                    static_c[component][index] = static_energy.get(component, 0.0)
                    dynamic_c[component][index] = dynamic_energy.get(
                        component, 0.0
                    )
            policy_rows.append(policy.value)
            index += 1
        if nopg_index is None:
            # Same failure mode as the oracle's result.report(NOPG).
            raise KeyError(
                f"policy {PolicyName.NOPG} was not evaluated for {result.workload}"
            )
        nopg_row[start:index] = nopg_index
        num_chips_f[start:index] = result.num_chips
        work[start:index] = result.work_per_iteration
        workload_rows.extend([result.workload] * n_policies)
        chip_rows.extend([chip_name] * n_policies)
        num_chips_rows.extend([result.num_chips] * n_policies)
        batch_rows.extend([result.batch_size] * n_policies)
        parallelism_rows.extend([parallelism] * n_policies)
        label_rows.extend([point.gating_label] * n_policies)
        unit_rows.extend([result.iteration_unit] * n_policies)
        for (column, _), value in zip(_UTILIZATION_COLUMNS, utilization):
            util_rows[column].extend([value] * n_policies)
        spatial_rows.extend([sa_spatial] * n_policies)

    # Scatter the grid-backed cells: one fancy-indexed gather per base
    # column per grid reads the identical float64 elements report()
    # would have pulled out one at a time.
    for grid, rows, grid_rows, grid_cols in grid_gather.values():
        rows_i = np.asarray(rows, dtype=np.intp)
        grows = np.asarray(grid_rows, dtype=np.intp)
        gcols = np.asarray(grid_cols, dtype=np.intp)
        baseline[rows_i] = grid.baseline_time_s[grows, gcols]
        overhead[rows_i] = grid.overhead_time_s[grows, gcols]
        peak[rows_i] = grid.peak_power_w[grows, gcols]
        for component in Component.all():
            static_c[component][rows_i] = grid.static_energy_j[component][
                grows, gcols
            ]
            dynamic_c[component][rows_i] = grid.dynamic_energy_j[component][
                grows, gcols
            ]

    # Derived columns: the scalar chains of rows_from_result, vectorized.
    static_j = static_c[_STATIC_SUM_ORDER[0]]
    for component in _STATIC_SUM_ORDER[1:]:
        static_j = static_j + static_c[component]
    dynamic_j = dynamic_c[Component.all()[0]]
    for component in Component.all()[1:]:
        dynamic_j = dynamic_j + dynamic_c[component]
    total_j = static_j + dynamic_j
    time_s = baseline + overhead
    pod_j = total_j * num_chips_f
    energy_per_work = pod_j / work
    static_fraction = np.where(
        total_j <= 0.0, 0.0, static_j / np.where(total_j > 0.0, total_j, 1.0)
    )
    average_power = np.where(
        time_s <= 0.0, 0.0, total_j / np.where(time_s > 0.0, time_s, 1.0)
    )
    nopg_total = total_j[nopg_row]
    nopg_time = time_s[nopg_row]
    savings = np.where(
        nopg_total <= 0.0,
        0.0,
        1.0 - total_j / np.where(nopg_total > 0.0, nopg_total, 1.0),
    )
    overhead_vs = np.where(
        nopg_time <= 0.0,
        0.0,
        time_s / np.where(nopg_time > 0.0, nopg_time, 1.0) - 1.0,
    )

    columns: dict[str, Any] = {
        "workload": workload_rows,
        "chip": chip_rows,
        "num_chips": num_chips_rows,
        "batch_size": batch_rows,
        "parallelism": parallelism_rows,
        "gating_label": label_rows,
        "policy": policy_rows,
        "time_s": time_s,
        "overhead_time_s": overhead,
        "total_energy_j": total_j,
        "static_energy_j": static_j,
        "dynamic_energy_j": dynamic_j,
        "static_fraction": static_fraction,
        "average_power_w": average_power,
        "peak_power_w": peak,
        "savings_vs_nopg": savings,
        "overhead_vs_nopg": overhead_vs,
        "pod_energy_j": pod_j,
        "energy_per_work_j": energy_per_work,
        "work_per_iteration": work,
        "iteration_unit": unit_rows,
    }
    for component, energy_column, static_column in _ENERGY_COLUMNS:
        columns[energy_column] = static_c[component] + dynamic_c[component]
        columns[static_column] = static_c[component]
    for column, _ in _UTILIZATION_COLUMNS:
        columns[column] = util_rows[column]
    columns["sa_spatial_util"] = spatial_rows
    assert tuple(columns) == ROW_COLUMNS

    series = [
        column.tolist() if isinstance(column, np.ndarray) else column
        for column in columns.values()
    ]
    all_values: list[tuple[Any, ...]] = list(zip(*series)) if n_rows else []
    packed: list[PackedRows] = []
    offset = 0
    for row_cells in cells:
        end = offset + len(row_cells)
        packed.append((ROW_COLUMNS, all_values[offset:end]))
        offset = end
    return packed


def run_point(point: SweepPoint, cache: SimulationCache | None = None) -> list[dict[str, Any]]:
    """Evaluate one sweep point into its result rows."""
    result = simulate_cached(point.workload, point.config, cache)
    return rows_from_result(point, result)


def run_points_packed(
    points: list[SweepPoint], cache: SimulationCache | None = None
) -> list[PackedRows]:
    """Evaluate many sweep points into packed rows, batching everything.

    On the columnar fast path the grid's missing energy reports are
    evaluated through the grid-batched policy kernel — one
    :meth:`~repro.gating.policies.PowerGatingPolicy.grid_evaluate` per
    policy over (chip-major packed profiles × gating-parameter points)
    via :func:`~repro.experiments.cache.simulate_cached_cells` — and the
    rows are assembled column-wise straight from the pricing cells,
    without ever materializing one report object per cell.  Batches
    containing non-registry workloads fall back to
    :func:`~repro.experiments.cache.simulate_cached_many`.  Both routes
    are bit-identical to the per-point loop that remains the
    object-path oracle.
    """
    if cache is not None and columnar.fast_path_enabled():
        items = [(point.workload, point.config) for point in points]
        fused = simulate_cached_cells(items, cache)
        if fused is not None:
            results, cells = fused
            return assemble_packed_cells(points, results, cells)
        results = simulate_cached_many(items, cache)
        return assemble_packed_rows(points, results)
    return [pack_rows(run_point(point, cache)) for point in points]


def run_points(
    points: list[SweepPoint], cache: SimulationCache | None = None
) -> list[list[dict[str, Any]]]:
    """Evaluate many sweep points into row dicts (compatibility view)."""
    return [unpack_rows(packed) for packed in run_points_packed(points, cache)]


# Per-worker-process cache: shares workload profiles between the points a
# worker handles without any cross-process communication.
_WORKER_CACHE: SimulationCache | None = None


def _run_points_in_worker(points: list[SweepPoint]) -> list[PackedRows]:
    """Worker entry point: one chunk-sized point list per task.

    Dispatching *lists* keeps the packed batch/grid evaluation path hot
    inside the pool: each worker prices its whole chunk through
    :func:`run_points_packed` and its process-local cache instead of
    re-entering the per-point path once per grid point.
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = SimulationCache()
    return run_points_packed(points, _WORKER_CACHE)


class SweepRunner:
    """Runs every point of a :class:`SweepSpec` into a :class:`SweepResult`.

    Parameters
    ----------
    spec:
        The grid to execute.
    cache:
        Optional :class:`SimulationCache`.  Cached rows are returned
        without re-simulation (in serial *and* parallel mode: the row
        lookup happens before work is dispatched); freshly computed rows
        are written back and flushed to the disk layer when present.
    max_workers:
        ``None``, ``0`` or ``1`` run serially; ``>= 2`` dispatches the
        uncached points to a :class:`ProcessPoolExecutor`.  If the pool
        cannot be created or fails (sandboxed environments, pickling
        restrictions), the runner logs a warning and falls back to the
        serial path, which produces identical rows.
    """

    def __init__(
        self,
        spec: SweepSpec,
        cache: SimulationCache | None = None,
        max_workers: int | None = None,
    ):
        self.spec = spec
        self.cache = cache
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    def run(self) -> SweepResult:
        """Execute the sweep and return the assembled table."""
        cache = self.resolve_cache()
        packed_by_index = self.execute_points(self.spec.points(), cache)
        cache.flush()
        return _combine_packed(
            [packed_by_index[index] for index in sorted(packed_by_index)]
        )

    def resolve_cache(self) -> SimulationCache:
        """The caller-supplied cache, or a run-scoped one.

        With no caller-supplied cache, a run-scoped one still shares
        workload profiles across grid points (e.g. gating-parameter
        sweeps re-evaluate a single simulated profile); it just isn't
        retained between runs.
        """
        return self.cache if self.cache is not None else SimulationCache()

    def execute_points(
        self, points: list[SweepPoint], cache: SimulationCache | None = None
    ) -> dict[int, PackedRows]:
        """Evaluate a point subset into ``{point.index: packed rows}``.

        The single execution pipeline behind :meth:`run` and the shard
        runner (:class:`~repro.experiments.sharding.ShardRunner`, which
        feeds it one shard's points): probe the row cache, batch the
        misses through the packed serial or pool path, write fresh rows
        back.  The caller owns ``cache.flush()``.
        """
        cache = cache if cache is not None else self.resolve_cache()
        packed_by_index: dict[int, PackedRows] = {}
        pending: list[SweepPoint] = []
        for point in points:
            cached = cache.get_rows_packed(point.cache_key)
            if cached is not None:
                packed_by_index[point.index] = cached
            else:
                pending.append(point)

        if pending:
            if self.max_workers is not None and self.max_workers >= 2:
                computed = self._run_parallel(pending, cache)
            else:
                computed = run_points_packed(pending, cache)
            for point, packed in zip(pending, computed):
                packed_by_index[point.index] = packed
                cache.put_rows_packed(point.cache_key, packed)
        return packed_by_index

    # ------------------------------------------------------------------ #
    def _run_parallel(
        self, pending: list[SweepPoint], cache: SimulationCache
    ) -> list[PackedRows]:
        # Only pool-infrastructure failures fall back to the serial path;
        # a point-level error (e.g. an unknown workload) propagates as-is
        # rather than re-simulating the whole grid to rediscover it.
        def _fallback(error: BaseException) -> list[PackedRows]:
            _LOG.warning(
                "parallel sweep execution failed (%s: %s); falling back to serial",
                type(error).__name__,
                error,
            )
            return run_points_packed(pending, cache)

        # Points arrive in grid order with gating parameters innermost, so
        # variants sharing one workload profile are consecutive; dispatching
        # one chunk-sized point *list* per worker keeps them together and
        # runs the packed batch/grid path inside the pool — the same
        # batching the serial path gets for free.
        chunksize = max(1, -(-len(pending) // self.max_workers))
        chunks = [
            pending[offset : offset + chunksize]
            for offset in range(0, len(pending), chunksize)
        ]
        try:
            executor = ProcessPoolExecutor(max_workers=self.max_workers)
        except OSError as error:  # pool creation only: sandboxes, no sem support
            return _fallback(error)
        try:
            with executor:
                computed: list[PackedRows] = []
                for chunk in executor.map(_run_points_in_worker, chunks):
                    computed.extend(chunk)
                return computed
        except (BrokenProcessPool, pickle.PicklingError) as error:
            # executor.map re-raises worker exceptions with their original
            # type, so a point-level error (even an OSError from a builder)
            # propagates as-is instead of triggering a serial re-run.
            return _fallback(error)


def _combine_packed(blocks: list[PackedRows]) -> SweepResult:
    """Concatenate per-point packed rows into one columnar result."""
    columns: tuple[str, ...] | None = None
    for block_columns, values in blocks:
        if values:
            columns = tuple(block_columns)
            break
    if columns is None:
        return SweepResult.from_rows([])
    if any(tuple(c) != columns for c, values in blocks if values):
        # Heterogeneous schemas (e.g. rows cached by a different code
        # path) — fall back to dict assembly, never mis-zip cells.
        rows = [row for block in blocks for row in unpack_rows(block)]
        return SweepResult.from_rows(rows)
    all_values = [row for _, values in blocks for row in values]
    return SweepResult.from_packed(columns, all_values)


def run_sweep(
    spec: SweepSpec,
    cache: SimulationCache | None = None,
    max_workers: int | None = None,
) -> SweepResult:
    """Convenience wrapper: ``SweepRunner(spec, cache, max_workers).run()``."""
    return SweepRunner(spec, cache=cache, max_workers=max_workers).run()


__all__ = [
    "ROW_COLUMNS",
    "SweepRunner",
    "assemble_packed_cells",
    "assemble_packed_rows",
    "pack_rows",
    "rows_from_result",
    "run_point",
    "run_points",
    "run_points_packed",
    "run_sweep",
    "unpack_rows",
]
