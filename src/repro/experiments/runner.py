"""Executes a :class:`SweepSpec`, serially or across worker processes.

The runner guarantees **bit-identical results in either mode**: every
row is a pure function of its :class:`SweepPoint`, points are evaluated
in deterministic grid order (``ProcessPoolExecutor.map`` preserves input
order), and floats are never re-derived from formatted strings.  Worker
processes keep a per-process :class:`SimulationCache` so the expensive
workload profiles are shared between the points each worker handles; in
serial mode the runner's own cache plays that role and additionally
memoizes finished rows, making a warm re-run free of simulator calls.
"""

from __future__ import annotations

import logging
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.core.results import SimulationResult
from repro.gating.report import PolicyName
from repro.hardware.components import Component
from repro.simulator import columnar

from repro.experiments.cache import (
    SimulationCache,
    simulate_cached,
    simulate_cached_many,
)
from repro.experiments.result import SweepResult
from repro.experiments.spec import SweepPoint, SweepSpec

_LOG = logging.getLogger(__name__)

#: Temporal-utilization columns and the component each one reads.
_UTILIZATION_COLUMNS = (
    ("sa_temporal_util", Component.SA),
    ("vu_temporal_util", Component.VU),
    ("hbm_temporal_util", Component.HBM),
    ("ici_temporal_util", Component.ICI),
)

#: Per-component energy column names, built once (not per row).
_ENERGY_COLUMNS = tuple(
    (component, f"energy_{component.value}_j", f"static_{component.value}_j")
    for component in Component.all()
)


def rows_from_result(point: SweepPoint, result: SimulationResult) -> list[dict[str, Any]]:
    """Flatten one simulation into rows (one per evaluated policy).

    Derived cells replicate the :class:`EnergyReport` /
    :class:`SimulationResult` property chains with each report's energy
    totals computed once — same float operations, same results, without
    re-summing the per-component dicts for every derived column.
    """
    rows: list[dict[str, Any]] = []
    utilization = {
        column: result.temporal_utilization(component)
        for column, component in _UTILIZATION_COLUMNS
    }
    sa_spatial = result.sa_spatial_utilization()
    nopg = result.report(PolicyName.NOPG)
    nopg_total_j = sum(nopg.static_energy_j.values()) + sum(
        nopg.dynamic_energy_j.values()
    )
    nopg_time_s = nopg.baseline_time_s + nopg.overhead_time_s
    for policy, report in result.reports.items():
        static_j = sum(report.static_energy_j.values())
        dynamic_j = sum(report.dynamic_energy_j.values())
        total_j = static_j + dynamic_j
        time_s = report.baseline_time_s + report.overhead_time_s
        pod_energy_j = total_j * result.num_chips
        row: dict[str, Any] = {
            "workload": result.workload,
            "chip": result.chip.name,
            "num_chips": result.num_chips,
            "batch_size": result.batch_size,
            "parallelism": result.parallelism.describe(),
            "gating_label": point.gating_label,
            "policy": policy.value,
            "time_s": time_s,
            "overhead_time_s": report.overhead_time_s,
            "total_energy_j": total_j,
            "static_energy_j": static_j,
            "dynamic_energy_j": dynamic_j,
            "static_fraction": 0.0 if total_j <= 0 else static_j / total_j,
            "average_power_w": 0.0 if time_s <= 0 else total_j / time_s,
            "peak_power_w": report.peak_power_w,
            "savings_vs_nopg": (
                0.0 if nopg_total_j <= 0 else 1.0 - total_j / nopg_total_j
            ),
            "overhead_vs_nopg": (
                0.0 if nopg_time_s <= 0 else time_s / nopg_time_s - 1.0
            ),
            "pod_energy_j": pod_energy_j,
            "energy_per_work_j": pod_energy_j / result.work_per_iteration,
            "work_per_iteration": result.work_per_iteration,
            "iteration_unit": result.iteration_unit,
        }
        static_energy = report.static_energy_j
        dynamic_energy = report.dynamic_energy_j
        for component, energy_column, static_column in _ENERGY_COLUMNS:
            static_c = static_energy.get(component, 0.0)
            row[energy_column] = static_c + dynamic_energy.get(component, 0.0)
            row[static_column] = static_c
        row.update(utilization)
        row["sa_spatial_util"] = sa_spatial
        rows.append(row)
    return rows


def run_point(point: SweepPoint, cache: SimulationCache | None = None) -> list[dict[str, Any]]:
    """Evaluate one sweep point into its result rows."""
    result = simulate_cached(point.workload, point.config, cache)
    return rows_from_result(point, result)


def run_points(
    points: list[SweepPoint], cache: SimulationCache | None = None
) -> list[list[dict[str, Any]]]:
    """Evaluate many sweep points, batching the policy accounting.

    On the columnar fast path the grid's missing energy reports are
    evaluated per policy across the whole batch of profiles
    (:func:`~repro.experiments.cache.simulate_cached_many`), producing
    bit-identical rows to the per-point loop that remains the
    object-path oracle.
    """
    if cache is not None and columnar.fast_path_enabled():
        results = simulate_cached_many(
            [(point.workload, point.config) for point in points], cache
        )
        return [
            rows_from_result(point, result)
            for point, result in zip(points, results)
        ]
    return [run_point(point, cache) for point in points]


# Per-worker-process cache: shares workload profiles between the points a
# worker handles without any cross-process communication.
_WORKER_CACHE: SimulationCache | None = None

#: Compact wire format for rows crossing the process pool: one shared
#: column tuple plus one value tuple per row, instead of repeating every
#: column name in every row dict (~40 string keys per row otherwise).
PackedRows = tuple[tuple[str, ...], list[tuple[Any, ...]]]


def pack_rows(rows: list[dict[str, Any]]) -> PackedRows:
    """Pack row dicts into (columns, value-tuples) for cheap pickling."""
    if not rows:
        return ((), [])
    columns = tuple(rows[0])
    return columns, [tuple(row[column] for column in columns) for row in rows]


def unpack_rows(packed: PackedRows) -> list[dict[str, Any]]:
    """Inverse of :func:`pack_rows`."""
    columns, values = packed
    return [dict(zip(columns, row)) for row in values]


def _run_point_in_worker(point: SweepPoint) -> PackedRows:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = SimulationCache()
    return pack_rows(run_point(point, _WORKER_CACHE))


class SweepRunner:
    """Runs every point of a :class:`SweepSpec` into a :class:`SweepResult`.

    Parameters
    ----------
    spec:
        The grid to execute.
    cache:
        Optional :class:`SimulationCache`.  Cached rows are returned
        without re-simulation (in serial *and* parallel mode: the row
        lookup happens before work is dispatched); freshly computed rows
        are written back and flushed to the disk layer when present.
    max_workers:
        ``None``, ``0`` or ``1`` run serially; ``>= 2`` dispatches the
        uncached points to a :class:`ProcessPoolExecutor`.  If the pool
        cannot be created or fails (sandboxed environments, pickling
        restrictions), the runner logs a warning and falls back to the
        serial path, which produces identical rows.
    """

    def __init__(
        self,
        spec: SweepSpec,
        cache: SimulationCache | None = None,
        max_workers: int | None = None,
    ):
        self.spec = spec
        self.cache = cache
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    def run(self) -> SweepResult:
        """Execute the sweep and return the assembled table."""
        # With no caller-supplied cache, a run-scoped one still shares
        # workload profiles across grid points (e.g. gating-parameter
        # sweeps re-evaluate a single simulated profile); it just isn't
        # retained between runs.
        cache = self.cache if self.cache is not None else SimulationCache()
        points = self.spec.points()
        rows_by_index: dict[int, list[dict[str, Any]]] = {}
        pending: list[SweepPoint] = []
        for point in points:
            cached = cache.get_rows(point.cache_key)
            if cached is not None:
                rows_by_index[point.index] = cached
            else:
                pending.append(point)

        if pending:
            if self.max_workers is not None and self.max_workers >= 2:
                computed = self._run_parallel(pending, cache)
            else:
                computed = run_points(pending, cache)
            for point, rows in zip(pending, computed):
                rows_by_index[point.index] = rows
                cache.put_rows(point.cache_key, rows)
        cache.flush()

        all_rows = [
            row for index in sorted(rows_by_index) for row in rows_by_index[index]
        ]
        return SweepResult.from_rows(all_rows)

    # ------------------------------------------------------------------ #
    def _run_parallel(
        self, pending: list[SweepPoint], cache: SimulationCache
    ) -> list[list[dict[str, Any]]]:
        # Only pool-infrastructure failures fall back to the serial path;
        # a point-level error (e.g. an unknown workload) propagates as-is
        # rather than re-simulating the whole grid to rediscover it.
        def _fallback(error: BaseException) -> list[list[dict[str, Any]]]:
            _LOG.warning(
                "parallel sweep execution failed (%s: %s); falling back to serial",
                type(error).__name__,
                error,
            )
            return [run_point(point, cache) for point in pending]

        # Points arrive in grid order with gating parameters innermost, so
        # variants sharing one workload profile are consecutive; a large
        # chunksize keeps them on one worker, preserving the per-process
        # profile-cache sharing the serial path gets for free.
        chunksize = max(1, -(-len(pending) // self.max_workers))
        try:
            executor = ProcessPoolExecutor(max_workers=self.max_workers)
        except OSError as error:  # pool creation only: sandboxes, no sem support
            return _fallback(error)
        try:
            with executor:
                return [
                    unpack_rows(packed)
                    for packed in executor.map(
                        _run_point_in_worker, pending, chunksize=chunksize
                    )
                ]
        except (BrokenProcessPool, pickle.PicklingError) as error:
            # executor.map re-raises worker exceptions with their original
            # type, so a point-level error (even an OSError from a builder)
            # propagates as-is instead of triggering a serial re-run.
            return _fallback(error)


def run_sweep(
    spec: SweepSpec,
    cache: SimulationCache | None = None,
    max_workers: int | None = None,
) -> SweepResult:
    """Convenience wrapper: ``SweepRunner(spec, cache, max_workers).run()``."""
    return SweepRunner(spec, cache=cache, max_workers=max_workers).run()


__all__ = [
    "SweepRunner",
    "pack_rows",
    "rows_from_result",
    "run_point",
    "run_points",
    "run_sweep",
    "unpack_rows",
]
