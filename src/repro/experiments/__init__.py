"""Parallel experiment sweeps with simulation memoization.

The experiments subsystem turns the one-off simulation loops scattered
through the benchmarks and analyses into declarative, cached, optionally
parallel parameter studies:

* :class:`SweepSpec` — declares a grid over workloads, chips, batch
  sizes, pod sizes, policies and gating parameters.
* :class:`SweepRunner` / :func:`run_sweep` — executes the grid serially
  or on a process pool, with bit-identical results either way.
* :class:`SimulationCache` / :func:`simulate_cached` — content-addressed
  memoization of workload profiles, per-policy energy reports and
  finished sweep rows, with an optional on-disk JSON store.
* :class:`SweepResult` — a flat table with CSV/JSON export and
  filter/group-by/pivot helpers.
* :class:`LaunchScheduler` / :func:`launch_sweep` — fault-tolerant
  sharded execution (``repro launch``): retries with backoff, heartbeat
  liveness, straggler speculation, a crash-safe journal with
  ``--resume``, and reproducible fault injection.
* :class:`SshBackend` / :class:`LoopbackBackend` — remote shard
  dispatch over a retrying, digest-verified transport with per-host
  quarantine, plus :class:`StatusServer` — the live ``--serve``
  progress API.
* :class:`ExperimentCatalog` — a durable, content-addressed index over
  shard and merged artifacts (``repro launch --catalog`` / ``repro
  catalog``): cross-run adoption of already-computed shards, digest
  re-verification, and self-healing eviction of corrupt entries.

See ``docs/experiments.md`` for a guide and the cache-invalidation rules.
"""

from repro.experiments.cache import (
    CacheGcReport,
    JsonFileStore,
    PackedRows,
    SharedCacheDir,
    SimulationCache,
    pack_rows,
    portable_profile,
    simulate_cached,
    simulate_cached_many,
    unpack_rows,
)
from repro.experiments.catalog import (
    CatalogEntry,
    CatalogError,
    CatalogRepairReport,
    CatalogVerifyReport,
    ExperimentCatalog,
    resolve_catalog_path,
)
from repro.experiments.keys import (
    canonical,
    file_digest,
    point_key,
    profile_key,
    report_key,
    shard_key,
    stable_hash,
)
from repro.experiments.result import SweepResult
from repro.experiments.runner import (
    ROW_COLUMNS,
    SweepRunner,
    assemble_packed_rows,
    rows_from_result,
    run_point,
    run_points,
    run_points_packed,
    run_sweep,
)
from repro.experiments.remote import (
    HostPool,
    LocalLoopbackTransport,
    LoopbackBackend,
    RemoteBackend,
    RemoteHost,
    SshBackend,
    SshTransport,
    TransportError,
)
from repro.experiments.scheduler import (
    FaultInjector,
    FaultSpec,
    LaunchError,
    LaunchReport,
    LaunchScheduler,
    RetryPolicy,
    ShardState,
    launch_sweep,
)
from repro.experiments.sharding import (
    Shard,
    ShardArtifact,
    ShardError,
    ShardPlan,
    ShardRunner,
    load_manifest,
    merge_artifacts,
    merge_shard_paths,
    read_artifacts,
    spec_digest,
)
from repro.experiments.spec import DEFAULT_GATING_LABEL, SweepPoint, SweepSpec
from repro.experiments.status import StatusServer

__all__ = [
    "CacheGcReport",
    "CatalogEntry",
    "CatalogError",
    "CatalogRepairReport",
    "CatalogVerifyReport",
    "DEFAULT_GATING_LABEL",
    "ExperimentCatalog",
    "FaultInjector",
    "FaultSpec",
    "HostPool",
    "JsonFileStore",
    "LaunchError",
    "LaunchReport",
    "LaunchScheduler",
    "LocalLoopbackTransport",
    "LoopbackBackend",
    "PackedRows",
    "ROW_COLUMNS",
    "RemoteBackend",
    "RemoteHost",
    "RetryPolicy",
    "Shard",
    "ShardArtifact",
    "ShardError",
    "ShardPlan",
    "ShardRunner",
    "ShardState",
    "SharedCacheDir",
    "SimulationCache",
    "SshBackend",
    "SshTransport",
    "StatusServer",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "TransportError",
    "assemble_packed_rows",
    "canonical",
    "file_digest",
    "launch_sweep",
    "load_manifest",
    "merge_artifacts",
    "merge_shard_paths",
    "pack_rows",
    "point_key",
    "portable_profile",
    "profile_key",
    "read_artifacts",
    "report_key",
    "resolve_catalog_path",
    "rows_from_result",
    "run_point",
    "run_points",
    "run_points_packed",
    "run_sweep",
    "shard_key",
    "simulate_cached",
    "simulate_cached_many",
    "spec_digest",
    "unpack_rows",
]
