"""Parallel experiment sweeps with simulation memoization.

The experiments subsystem turns the one-off simulation loops scattered
through the benchmarks and analyses into declarative, cached, optionally
parallel parameter studies:

* :class:`SweepSpec` — declares a grid over workloads, chips, batch
  sizes, pod sizes, policies and gating parameters.
* :class:`SweepRunner` / :func:`run_sweep` — executes the grid serially
  or on a process pool, with bit-identical results either way.
* :class:`SimulationCache` / :func:`simulate_cached` — content-addressed
  memoization of workload profiles, per-policy energy reports and
  finished sweep rows, with an optional on-disk JSON store.
* :class:`SweepResult` — a flat table with CSV/JSON export and
  filter/group-by/pivot helpers.

See ``docs/experiments.md`` for a guide and the cache-invalidation rules.
"""

from repro.experiments.cache import (
    JsonFileStore,
    PackedRows,
    SharedCacheDir,
    SimulationCache,
    pack_rows,
    portable_profile,
    simulate_cached,
    simulate_cached_many,
    unpack_rows,
)
from repro.experiments.keys import (
    canonical,
    point_key,
    profile_key,
    report_key,
    shard_key,
    stable_hash,
)
from repro.experiments.result import SweepResult
from repro.experiments.runner import (
    ROW_COLUMNS,
    SweepRunner,
    assemble_packed_rows,
    rows_from_result,
    run_point,
    run_points,
    run_points_packed,
    run_sweep,
)
from repro.experiments.sharding import (
    Shard,
    ShardArtifact,
    ShardError,
    ShardPlan,
    ShardRunner,
    merge_artifacts,
    merge_shard_paths,
    spec_digest,
)
from repro.experiments.spec import DEFAULT_GATING_LABEL, SweepPoint, SweepSpec

__all__ = [
    "DEFAULT_GATING_LABEL",
    "JsonFileStore",
    "PackedRows",
    "ROW_COLUMNS",
    "Shard",
    "ShardArtifact",
    "ShardError",
    "ShardPlan",
    "ShardRunner",
    "SharedCacheDir",
    "SimulationCache",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "assemble_packed_rows",
    "canonical",
    "merge_artifacts",
    "merge_shard_paths",
    "pack_rows",
    "point_key",
    "portable_profile",
    "profile_key",
    "report_key",
    "rows_from_result",
    "run_point",
    "run_points",
    "run_points_packed",
    "run_sweep",
    "shard_key",
    "simulate_cached",
    "simulate_cached_many",
    "spec_digest",
    "unpack_rows",
]
