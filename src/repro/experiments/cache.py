"""Content-addressed memoization for workload simulations.

Three artifact classes are cached, each under a stable key from
:mod:`repro.experiments.keys`:

* **Workload profiles** — the output of ``NPUSimulator.simulate``; the
  most expensive artifact.  Profiles hold live operator graphs, so they
  are memoized in memory — and, when a :class:`SharedCacheDir` is
  attached, additionally pickled (in portable form) to a one-file-per-
  entry store on a shared filesystem so concurrent shard runs reuse
  each other's simulate misses.
* **Energy reports** — one per (profile, policy, gating parameters);
  JSON-serializable, kept in memory and optionally on disk.
* **Sweep rows** — the flat tables produced by
  :class:`~repro.experiments.runner.SweepRunner`; JSON-serializable,
  kept in memory and optionally on disk in *packed* form (one shared
  column tuple plus one value tuple per row — see :data:`PackedRows`).
  A warm row cache lets a repeated sweep complete without a single
  simulator call.  Legacy dict-list disk entries are still readable.

:func:`simulate_cached` is a drop-in replacement for
:func:`repro.core.regate.simulate_workload` that consults a
:class:`SimulationCache`, sharing profiles across policy/gating-parameter
variations (e.g. the sensitivity sweeps re-evaluate five leakage points
on a single simulated profile).
"""

from __future__ import annotations

import dataclasses
import functools
import json
import logging
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

from repro.core.config import SimulationConfig
from repro.core.regate import (
    build_result,
    build_workload_graph,
    resolve_execution,
    simulate_workload,
)
from repro.core.results import SimulationResult
from repro.gating.bet import GatingParameters, parameters_token
from repro.gating.policies import ChipMajorPacks, PackedProfiles, get_policy
from repro.gating.report import EnergyReport, PolicyName
from repro.hardware.components import Component
from repro.hardware.power import ChipPowerModel
from repro.simulator.engine import NPUSimulator, WorkloadProfile
from repro.workloads.registry import WorkloadSpec, get_workload

from repro.experiments.keys import profile_key, report_key

_LOG = logging.getLogger(__name__)


# ---------------------------------------------------------------------- #
# Packed sweep rows
# ---------------------------------------------------------------------- #
#: Compact row format shared by the cache, the runner and the process
#: pool: one column tuple plus one value tuple per row, instead of
#: repeating every column name in every row dict (~40 string keys per
#: row otherwise).
PackedRows = tuple[tuple[str, ...], list[tuple[Any, ...]]]


def pack_rows(rows: list[dict[str, Any]]) -> PackedRows:
    """Pack row dicts into (columns, value-tuples)."""
    if not rows:
        return ((), [])
    columns = tuple(rows[0])
    return columns, [tuple(row[column] for column in columns) for row in rows]


def unpack_rows(packed: PackedRows) -> list[dict[str, Any]]:
    """Inverse of :func:`pack_rows`."""
    columns, values = packed
    return [dict(zip(columns, row)) for row in values]


# ---------------------------------------------------------------------- #
# Energy-report (de)serialization
# ---------------------------------------------------------------------- #
def report_to_dict(report: EnergyReport) -> dict[str, Any]:
    """JSON-serializable rendering of an :class:`EnergyReport`."""
    return {
        "policy": report.policy.value,
        "baseline_time_s": report.baseline_time_s,
        "overhead_time_s": report.overhead_time_s,
        "static_energy_j": {c.value: e for c, e in report.static_energy_j.items()},
        "dynamic_energy_j": {c.value: e for c, e in report.dynamic_energy_j.items()},
        "gating_events": {c.value: e for c, e in report.gating_events.items()},
        "peak_power_w": report.peak_power_w,
    }


def report_from_dict(payload: dict[str, Any]) -> EnergyReport:
    """Inverse of :func:`report_to_dict`."""
    return EnergyReport(
        policy=PolicyName(payload["policy"]),
        baseline_time_s=payload["baseline_time_s"],
        overhead_time_s=payload["overhead_time_s"],
        static_energy_j={Component(c): e for c, e in payload["static_energy_j"].items()},
        dynamic_energy_j={Component(c): e for c, e in payload["dynamic_energy_j"].items()},
        gating_events={Component(c): e for c, e in payload["gating_events"].items()},
        peak_power_w=payload["peak_power_w"],
    )


# ---------------------------------------------------------------------- #
# Disk store
# ---------------------------------------------------------------------- #
def atomic_replace(path: str | Path, writer) -> None:
    """Write a file via temp name + ``os.replace`` (atomic publish).

    ``writer`` receives a binary file handle.  The single definition of
    the crash-consistent write used by every on-disk store in the tree
    (:class:`JsonFileStore`, :class:`SharedCacheDir`, the shard-artifact
    writer): readers racing a writer see either the complete old file or
    the complete new one, never interleaved bytes, and a crashed writer
    leaves only a ``*.tmp`` ghost behind.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


class JsonFileStore:
    """A ``{key: JSON value}`` mapping persisted to one JSON file.

    Writes are atomic (temp file + rename) so a crashed sweep never
    leaves a truncated cache behind; a corrupt or missing file simply
    starts the store empty.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._data: dict[str, Any] = {}
        self._dirty = False
        if self.path.exists():
            try:
                loaded = json.loads(self.path.read_text())
                if isinstance(loaded, dict):
                    self._data = loaded
            except (OSError, json.JSONDecodeError):
                self._data = {}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> Any:
        return self._data.get(key)

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._dirty = True

    def flush(self) -> None:
        """Write the store back to disk if anything changed.

        The on-disk file is re-read and merged first (our entries win),
        so processes flushing to the same cache file one after another
        accumulate entries instead of last-writer-wins dropping them.
        The read-merge-replace is not locked: two *simultaneous* flushes
        can still lose one side's unique entries (a silent re-simulation
        later, never a wrong result — entries are content-addressed).
        """
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            try:
                on_disk = json.loads(self.path.read_text())
                if isinstance(on_disk, dict):
                    self._data = {**on_disk, **self._data}
            except (OSError, json.JSONDecodeError):
                pass
        atomic_replace(
            self.path,
            lambda handle: handle.write(json.dumps(self._data).encode("utf-8")),
        )
        self._dirty = False


# ---------------------------------------------------------------------- #
# Cross-run shared cache directory
# ---------------------------------------------------------------------- #
def portable_profile(profile: WorkloadProfile) -> WorkloadProfile:
    """A picklable deep-equivalent of ``profile``.

    The fast path leaves lazy, closure-backed surfaces on a freshly
    simulated profile (``LazyList`` operator/profile lists) and memoizes
    derived tables keyed by process-local object ids.  Pickling the
    profile directly would either fail or ship stale-id tokens, so the
    shared store pickles a *fresh* :class:`WorkloadProfile` shell around
    the same graph and profile list: ``LazyList.__reduce__`` materializes
    the lazy surfaces into exactly the objects the eager path builds,
    and the receiving process re-derives its columnar table from them —
    a rebuild the fast-path contract guarantees is bit-identical.
    """
    return WorkloadProfile(
        graph=profile.graph, chip=profile.chip, profiles=profile.profiles
    )


@dataclasses.dataclass
class CacheGcReport:
    """Outcome of one :meth:`SharedCacheDir.gc` pass."""

    root: Path
    dry_run: bool
    removed_files: int = 0
    removed_bytes: int = 0
    kept_files: int = 0
    kept_bytes: int = 0
    #: Entries whose bytes no longer parse (``verify=True`` passes only).
    corrupt_files: int = 0
    #: ``(path, reason)`` per entry selected for removal (dry-run keeps
    #: the full list so operators can audit before deleting).
    removed: list[tuple[Path, str]] = dataclasses.field(default_factory=list)

    def describe(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        text = (
            f"{verb} {self.removed_files} entr(ies) "
            f"({self.removed_bytes / 1e6:.1f} MB); kept {self.kept_files} "
            f"({self.kept_bytes / 1e6:.1f} MB) under {self.root}"
        )
        if self.corrupt_files:
            text += f"; {self.corrupt_files} corrupt/unreadable entr(ies)"
        return text


class SharedCacheDir:
    """A cross-run, cross-process cache directory on a shared filesystem.

    One file per entry, grouped by layer::

        <root>/profiles/<key>.pkl   # pickled portable WorkloadProfiles
        <root>/reports/<key>.json   # EnergyReport payloads
        <root>/rows/<key>.json      # packed sweep-row payloads

    Every write goes to a temp file in the destination directory and is
    published with ``os.replace`` — atomic on POSIX and NTFS — so
    concurrent writers can never interleave bytes: a reader sees either
    a complete old entry or a complete new one (entries are
    content-addressed, so racing writers produce identical content and
    "last writer wins" is indistinguishable from "first writer wins").
    Any unreadable entry — missing, truncated by a crashed writer's
    filesystem, or corrupted — degrades to a cache miss, never an error.
    The degradation is *not* silent, though: corrupt (present but
    unparseable) entries are tallied in :attr:`corrupt_entries`, the
    first one logs a warning, and ``repro cache gc --dry-run`` surfaces
    the count (see :meth:`gc` with ``verify=True``).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        #: Entries found present-but-unreadable by this instance's reads
        #: (a missing file is an ordinary miss and is not counted).
        self.corrupt_entries = 0
        self._corrupt_warned = False

    def _note_corrupt(self, path: Path, error: BaseException) -> None:
        self.corrupt_entries += 1
        if not self._corrupt_warned:
            self._corrupt_warned = True
            _LOG.warning(
                "shared cache entry %s is corrupt/unreadable (%s: %s); "
                "treating as a miss — further corrupt entries are counted "
                "silently (see SimulationCache.stats()['shared_corrupt'] "
                "or `repro cache gc --dry-run`)",
                path,
                type(error).__name__,
                error,
            )

    def _path(self, layer: str, key: str, suffix: str) -> Path:
        return self.root / layer / f"{key}{suffix}"

    def _publish(self, path: Path, writer) -> None:
        """Atomic-rename write into a layer dir created on demand."""
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_replace(path, writer)

    # -- JSON entries (reports, rows) ---------------------------------- #
    def get_json(self, layer: str, key: str) -> Any:
        path = self._path(layer, key, ".json")
        try:
            text = path.read_text()
        except OSError:
            return None  # absent entry: an ordinary miss
        try:
            return json.loads(text)
        except ValueError as error:
            self._note_corrupt(path, error)
            return None

    def put_json(self, layer: str, key: str, value: Any) -> None:
        payload = json.dumps(value).encode("utf-8")
        try:
            self._publish(
                self._path(layer, key, ".json"), lambda h: h.write(payload)
            )
        except OSError:
            pass  # a read-only or full share degrades to "no sharing"

    # -- profile entries ------------------------------------------------ #
    def get_profile(self, key: str) -> WorkloadProfile | None:
        path = self._path("profiles", key, ".pkl")
        try:
            blob = path.read_bytes()
        except OSError:
            return None  # absent entry: an ordinary miss
        try:
            profile = pickle.loads(blob)
        except Exception as error:  # noqa: BLE001
            # Truncated/corrupt pickles raise a zoo of exception types
            # (EOFError, UnpicklingError, AttributeError, ...); all of
            # them mean "miss", never "crash the sweep".
            self._note_corrupt(path, error)
            return None
        return profile if isinstance(profile, WorkloadProfile) else None

    def put_profile(self, key: str, profile: WorkloadProfile) -> None:
        try:
            blob = pickle.dumps(
                portable_profile(profile), protocol=pickle.HIGHEST_PROTOCOL
            )
            self._publish(
                self._path("profiles", key, ".pkl"), lambda h: h.write(blob)
            )
        except Exception:
            pass  # an unpicklable custom profile just isn't shared

    # -- garbage collection --------------------------------------------- #
    def _entry_corrupt(self, path: Path) -> str | None:
        """Why this entry's bytes are unusable, or ``None`` if they parse.

        JSON entries are fully parsed; pickles get a cheap structural
        check (complete pickles end with the STOP opcode ``b"."``) —
        enough to catch the truncation a crashed writer's filesystem
        leaves behind, without unpickling anything.
        """
        try:
            blob = path.read_bytes()
        except OSError as error:
            return f"unreadable entry ({error})"
        if path.suffix == ".json":
            try:
                json.loads(blob.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                return "corrupt JSON entry"
        elif path.suffix == ".pkl":
            if not blob.endswith(b"."):
                return "truncated pickle entry"
        return None

    def gc(
        self,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
        dry_run: bool = False,
        now: float | None = None,
        verify: bool = False,
    ) -> CacheGcReport:
        """Evict cache entries by age and/or total size (LRU by mtime).

        Entries older than ``max_age_days`` are dropped first; if the
        survivors still exceed ``max_bytes``, the least recently touched
        are dropped until the layer directories fit (every cache read
        refreshing an entry would be an extra write per hit, so "used"
        here means *written* — content-addressed entries are rewritten
        on every miss, which is exactly the reuse signal that matters).
        Unlinks are best-effort and safe against concurrent runs: a
        reader that loses an entry mid-race sees an ordinary cache miss,
        and ``*.tmp`` ghosts from crashed writers are always collected.
        ``dry_run`` only reports what would be removed.  ``verify=True``
        additionally reads every surviving entry and dooms the
        corrupt/unreadable ones (tallied in
        :attr:`CacheGcReport.corrupt_files`), regardless of age/size.
        """
        now = time.time() if now is None else now
        report = CacheGcReport(root=self.root, dry_run=dry_run)
        entries: list[tuple[float, int, Path]] = []  # (mtime, size, path)
        for layer in ("profiles", "reports", "rows"):
            layer_dir = self.root / layer
            if not layer_dir.is_dir():
                continue
            for path in layer_dir.iterdir():
                if not path.is_file():
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue  # vanished under a concurrent gc
                if path.name.endswith(".tmp"):
                    report.removed.append((path, "crashed writer ghost"))
                    report.removed_files += 1
                    report.removed_bytes += stat.st_size
                    continue
                if verify:
                    reason = self._entry_corrupt(path)
                    if reason is not None:
                        report.removed.append((path, reason))
                        report.removed_files += 1
                        report.removed_bytes += stat.st_size
                        report.corrupt_files += 1
                        continue
                entries.append((stat.st_mtime, stat.st_size, path))
        doomed: list[tuple[Path, str]] = []
        survivors: list[tuple[float, int, Path]] = []
        cutoff = None if max_age_days is None else now - max_age_days * 86400.0
        for mtime, size, path in entries:
            if cutoff is not None and mtime < cutoff:
                age_days = (now - mtime) / 86400.0
                doomed.append(
                    (path, f"age {age_days:.1f}d > {max_age_days}d")
                )
                report.removed_files += 1
                report.removed_bytes += size
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None:
            total = sum(size for _mtime, size, _path in survivors)
            survivors.sort()  # oldest mtime first = least recently used
            kept: list[tuple[float, int, Path]] = []
            for position, (mtime, size, path) in enumerate(survivors):
                if total > max_bytes:
                    doomed.append(
                        (path, f"evicted to fit --max-bytes {max_bytes}")
                    )
                    report.removed_files += 1
                    report.removed_bytes += size
                    total -= size
                else:
                    kept.extend(survivors[position:])
                    break
            survivors = kept
        report.kept_files = len(survivors)
        report.kept_bytes = sum(size for _mtime, size, _path in survivors)
        report.removed.extend(doomed)
        if not dry_run:
            for path, _reason in report.removed:
                try:
                    os.unlink(path)
                except OSError:
                    pass  # already gone (concurrent gc) or unwritable share
        return report


# ---------------------------------------------------------------------- #
# The cache
# ---------------------------------------------------------------------- #
class SimulationCache:
    """In-memory (and optionally on-disk) memoization of simulations.

    Parameters
    ----------
    path:
        Optional JSON file backing the report and sweep-row layers.
        Profiles are memory-only (they hold live graph objects) unless
        ``shared_dir`` is given.
    shared_dir:
        Optional :class:`SharedCacheDir` root (or an instance).  All
        three layers — including *profiles*, the expensive simulate
        output — are then written through to one-file-per-entry stores
        published by atomic rename, so concurrent shard runs on a
        shared filesystem reuse each other's simulate misses across
        processes, machines and runs.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        shared_dir: str | Path | SharedCacheDir | None = None,
    ):
        self._profiles: dict[str, WorkloadProfile] = {}
        self._reports: dict[str, EnergyReport] = {}
        # Reports held as zero-argument suppliers (grid cells priced by
        # the fused sweep path); materialized into ``_reports`` on first
        # probe.  Memory-only — persistent layers always materialize.
        self._lazy_reports: dict[str, Callable[[], EnergyReport]] = {}
        self._rows: dict[str, PackedRows] = {}
        self._store = JsonFileStore(path) if path is not None else None
        if shared_dir is not None and not isinstance(shared_dir, SharedCacheDir):
            shared_dir = SharedCacheDir(shared_dir)
        self._shared = shared_dir
        self.hits = 0
        self.misses = 0
        # Row-layer counters kept separately: one sweep point is one row
        # lookup, so these (unlike the totals, which also count profile
        # and report probes) line up with a sweep's grid size.
        self.row_hits = 0
        self.row_misses = 0

    # -- profiles ------------------------------------------------------ #
    def get_profile(self, key: str) -> WorkloadProfile | None:
        profile = self._profiles.get(key)
        if profile is None and self._shared is not None:
            profile = self._shared.get_profile(key)
            if profile is not None:
                self._profiles[key] = profile
        self._count(profile is not None)
        return profile

    def put_profile(self, key: str, profile: WorkloadProfile) -> None:
        self._profiles[key] = profile
        if self._shared is not None:
            self._shared.put_profile(key, profile)

    # -- energy reports ------------------------------------------------ #
    # Reports are copied on the way in and out, like rows: a caller
    # doing a what-if edit on a returned report's energy dicts must not
    # poison later cache hits.
    @staticmethod
    def _copy_report(report: EnergyReport) -> EnergyReport:
        return dataclasses.replace(
            report,
            static_energy_j=dict(report.static_energy_j),
            dynamic_energy_j=dict(report.dynamic_energy_j),
            gating_events=dict(report.gating_events),
        )

    def get_report(self, key: str) -> EnergyReport | None:
        report = self._reports.get(key)
        if report is None:
            supplier = self._lazy_reports.pop(key, None)
            if supplier is not None:
                # The supplier builds a fresh object nobody else holds,
                # so it enters the memory layer without a defensive copy.
                report = supplier()
                self._reports[key] = report
        if report is None and self._store is not None:
            payload = self._store.get("report:" + key)
            if payload is not None:
                report = report_from_dict(payload)
                self._reports[key] = report
        if report is None and self._shared is not None:
            payload = self._shared.get_json("reports", key)
            if payload is not None:
                try:
                    report = report_from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    report = None  # foreign/corrupt payload -> miss
                else:
                    self._reports[key] = report
        self._count(report is not None)
        if report is None:
            return None
        return self._copy_report(report)

    def put_report(self, key: str, report: EnergyReport) -> None:
        self._reports[key] = self._copy_report(report)
        if self._store is not None:
            self._store.put("report:" + key, report_to_dict(report))
        if self._shared is not None:
            self._shared.put_json("reports", key, report_to_dict(report))

    def put_report_lazy(
        self, key: str, supplier: Callable[[], EnergyReport]
    ) -> None:
        """Cache a report as a deferred supplier (fused sweep path).

        Memory-only caches keep the zero-argument supplier and
        materialize it on the first :meth:`get_report` probe, so a
        sweep that never re-reads a cell (the common cold-run case)
        skips building and copying its per-report dicts entirely.
        Persistent layers need the serializable payload now, so they
        materialize immediately — identical observable semantics.
        """
        if self._store is not None or self._shared is not None:
            self.put_report(key, supplier())
        else:
            self._lazy_reports[key] = supplier
            self._reports.pop(key, None)

    # -- sweep rows ---------------------------------------------------- #
    # Rows live in the cache in *packed* form: one shared column tuple
    # plus one immutable value tuple per row.  The packed entries make
    # both layers cheap — no ~40-key dict per row in memory or in the
    # JSON store — and copying on the way out reduces to copying the
    # outer list, so a caller mutating a returned SweepResult still
    # cannot poison the cache.
    @staticmethod
    def _freeze_packed(packed: PackedRows) -> PackedRows:
        columns, values = packed
        return tuple(columns), [tuple(row) for row in values]

    def get_rows_packed(self, key: str) -> PackedRows | None:
        packed = self._rows.get(key)
        if packed is None and self._store is not None:
            payload = self._store.get("rows:" + key)
            if payload is not None:
                packed = self._freeze_packed(self._decode_rows(payload))
                self._rows[key] = packed
        if packed is None and self._shared is not None:
            payload = self._shared.get_json("rows", key)
            if payload is not None:
                try:
                    packed = self._freeze_packed(self._decode_rows(payload))
                except (KeyError, TypeError, ValueError):
                    packed = None  # foreign/corrupt payload -> miss
                else:
                    self._rows[key] = packed
        self._count(packed is not None)
        if packed is None:
            self.row_misses += 1
            return None
        self.row_hits += 1
        columns, values = packed
        return columns, list(values)

    def put_rows_packed(self, key: str, packed: PackedRows) -> None:
        packed = self._freeze_packed(packed)
        self._rows[key] = packed
        columns, values = packed
        if self._store is not None:
            self._store.put(
                "rows:" + key, {"columns": list(columns), "values": values}
            )
        if self._shared is not None:
            self._shared.put_json(
                "rows", key, {"columns": list(columns), "values": values}
            )

    @staticmethod
    def _decode_rows(payload: Any) -> PackedRows:
        """Decode a disk row entry (packed dict, or a legacy dict list)."""
        if isinstance(payload, dict):
            return tuple(payload["columns"]), payload["values"]
        return pack_rows(list(payload))

    def get_rows(self, key: str) -> list[dict[str, Any]] | None:
        """Row dicts of one sweep point (compatibility view)."""
        packed = self.get_rows_packed(key)
        if packed is None:
            return None
        return unpack_rows(packed)

    def put_rows(self, key: str, rows: list[dict[str, Any]]) -> None:
        self.put_rows_packed(key, pack_rows(rows))

    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Persist the disk-backed layers (no-op for memory-only caches)."""
        if self._store is not None:
            self._store.flush()

    def stats(self) -> dict[str, int]:
        """Hit/miss counters and per-layer entry counts."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "profiles": len(self._profiles),
            "reports": len(self._reports) + len(self._lazy_reports),
            "rows": len(self._rows),
            "shared_corrupt": (
                self._shared.corrupt_entries if self._shared is not None else 0
            ),
        }

    def _count(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1


# ---------------------------------------------------------------------- #
# Cached simulation entry point
# ---------------------------------------------------------------------- #
def _registry_spec(workload: str | WorkloadSpec) -> WorkloadSpec | None:
    """The registry-backed spec a workload memoizes under, or ``None``.

    Only *registry-backed* workloads are memoized: profile keys identify
    a workload by name, so a hand-built :class:`WorkloadSpec` (whose
    graph builder the name says nothing about) bypasses the cache rather
    than risk colliding with a registered workload's entries.
    """
    if isinstance(workload, WorkloadSpec):
        try:
            registered = get_workload(workload.name)
        except KeyError:
            return None
        return workload if registered is workload else None
    return get_workload(workload)


def _resolution_memo_key(spec: WorkloadSpec, config: SimulationConfig) -> tuple:
    """Identity key of one execution resolution within a single batch.

    Covers every config field :func:`resolve_execution` and
    :func:`~repro.experiments.keys.profile_key` read.  Identity-based
    entries (``id()``) are safe because the memo dict only lives for
    one batched call, while the specs and configs it keys live in the
    caller's item list.
    """
    return (
        id(spec),
        config.chip if isinstance(config.chip, str) else id(config.chip),
        config.num_chips,
        config.batch_size,
        id(config.parallelism),
        config.apply_fusion,
    )


def _cached_profile(
    spec: WorkloadSpec,
    config: SimulationConfig,
    cache: SimulationCache,
    built_graphs: dict | None = None,
    resolutions: dict | None = None,
):
    """Resolve one item's (chip, parallelism, pkey, profile) through ``cache``.

    The single definition of the profile-memoization sequence, shared by
    the per-item and batched entry points so their cache keys (and
    therefore their results) can never diverge.  ``built_graphs`` lets a
    batched caller share one built graph between chip-only variants of
    the same workload (the simulator never mutates its input IR);
    ``resolutions`` memoizes the execution resolution + profile key so a
    gating-parameter grid resolves each distinct (workload, chip,
    batch) combination once instead of once per grid point.
    """
    resolved = None
    if resolutions is not None:
        resolution_key = _resolution_memo_key(spec, config)
        resolved = resolutions.get(resolution_key)
    if resolved is not None:
        chip, batch_size, parallelism, pkey = resolved
    else:
        chip, batch_size, parallelism = resolve_execution(spec, config)
        pkey = profile_key(
            spec.name, chip, batch_size, parallelism, config.apply_fusion
        )
        if resolutions is not None:
            resolutions[resolution_key] = (chip, batch_size, parallelism, pkey)
    profile = cache.get_profile(pkey)
    if profile is None:
        graph = None
        graph_key = (spec.name, batch_size, parallelism)
        if built_graphs is not None:
            graph = built_graphs.get(graph_key)
        if graph is None:
            graph = build_workload_graph(spec, batch_size, parallelism)
            if built_graphs is not None:
                built_graphs[graph_key] = graph
        profile = NPUSimulator(chip, apply_fusion=config.apply_fusion).simulate(graph)
        cache.put_profile(pkey, profile)
    return chip, parallelism, pkey, profile


def simulate_cached(
    workload: str | WorkloadSpec,
    config: SimulationConfig | None = None,
    cache: SimulationCache | None = None,
) -> SimulationResult:
    """Like :func:`simulate_workload`, but memoized through ``cache``.

    The workload profile is simulated at most once per (workload, chip,
    batch, parallelism, fusion) combination; each policy's energy report
    is evaluated at most once per (profile, policy, gating parameters).
    With ``cache=None`` this is exactly :func:`simulate_workload`.
    Non-registry workloads bypass the cache (see :func:`_registry_spec`).
    """
    if cache is None:
        return simulate_workload(workload, config)
    spec = _registry_spec(workload)
    if spec is None:
        return simulate_workload(workload, config)
    config = config or SimulationConfig()
    chip, parallelism, pkey, profile = _cached_profile(spec, config, cache)

    # Fusion preserves all workload metadata, so the profile's graph
    # stands in for a freshly built one.
    result = build_result(spec.name, profile, parallelism, profile.graph, config)
    power_model = ChipPowerModel.for_chip(chip)
    for policy_name in config.policies:
        rkey = report_key(pkey, policy_name.value, config.gating_parameters)
        report = cache.get_report(rkey)
        if report is None:
            policy = get_policy(policy_name, config.gating_parameters)
            report = policy.evaluate(profile, power_model)
            cache.put_report(rkey, report)
        result.reports[policy_name] = report
    return result


class _ReportGroup:
    """Missing (profile, gating-parameter) report cells of one policy.

    Collects the distinct profiles (by profile key, insertion order) and
    distinct parameter points (by token) of a batch's cache misses, then
    evaluates the whole grid at once.  A sweep grid is a full cartesian
    product by construction, so the product of the distinct axes is
    exactly the missing cell set on a cold run; on a partially warm
    cache the kernel may price a few already-cached cells again — extra
    vectorized work, never a different result.
    """

    def __init__(self) -> None:
        self.profiles: dict[str, WorkloadProfile] = {}
        self.parameters: dict[int, GatingParameters] = {}
        self.members: dict[str, tuple[str, int]] = {}

    def add(
        self,
        rkey: str,
        pkey: str,
        profile: WorkloadProfile,
        parameters: GatingParameters,
    ) -> None:
        token = parameters_token(parameters)
        self.profiles.setdefault(pkey, profile)
        self.parameters.setdefault(token, parameters)
        self.members[rkey] = (pkey, token)

    def evaluate_cells(self, policy_name: PolicyName):
        """Yield ``(rkey, cell)`` for every missing cell of the group.

        A cell is either a materialized :class:`EnergyReport`
        (single-parameter groups) or a ``(grid, point_row,
        profile_col)`` triple into the group's
        :class:`~repro.gating.policies.GridEnergyReports` — the fused
        sweep path assembles its result columns straight from the grid
        arrays without ever turning the triple into a report object.
        """
        profile_index = {pkey: i for i, pkey in enumerate(self.profiles)}
        profiles = list(self.profiles.values())
        parameters = list(self.parameters.values())
        policy = get_policy(policy_name, parameters[0])
        if len(parameters) == 1:
            if len(profiles) == 1:
                power_model = ChipPowerModel.for_chip(profiles[0].chip)
                reports = [policy.evaluate(profiles[0], power_model)]
            else:
                packed = ChipMajorPacks.pack(profiles)
                reports = policy.batch_evaluate(
                    packed if packed is not None else profiles
                )
            for rkey, (pkey, _token) in self.members.items():
                yield rkey, reports[profile_index[pkey]]
            return
        token_index = {token: i for i, token in enumerate(self.parameters)}
        packed = ChipMajorPacks.pack(profiles)
        grid = policy.grid_evaluate(
            packed if packed is not None else profiles, parameters
        )
        for rkey, (pkey, token) in self.members.items():
            yield rkey, (grid, token_index[token], profile_index[pkey])

    def evaluate(self, policy_name: PolicyName):
        """Yield ``(rkey, report)``: :meth:`evaluate_cells`, materialized."""
        for rkey, cell in self.evaluate_cells(policy_name):
            yield rkey, materialize_cell(cell)


def materialize_cell(cell) -> EnergyReport:
    """Turn a pricing cell into its :class:`EnergyReport`.

    Grid triples materialize through
    :meth:`~repro.gating.policies.GridEnergyReports.report`, which is a
    pure ``float()`` read of the grid arrays — bit-identical to the
    report the per-cell path would have built.
    """
    if isinstance(cell, tuple):
        grid, row, col = cell
        return grid.report(row, col)
    return cell


def _price_prepared(
    items: list[tuple[WorkloadSpec, SimulationConfig]],
    cache: SimulationCache,
) -> tuple[list[SimulationResult], list[list]]:
    """Fused simulate→price core over registry-backed (spec, config) items.

    One pass: profiles are resolved through the cache with the
    execution resolution memoized per distinct (workload, chip, batch)
    combination, missing report cells are grouped per policy and priced
    by one grid/batch kernel call per group, and the grid cells are
    cached *lazily* — the (grid, row, col) triple stands in for the
    report until something actually probes it.

    Returns ``(results, cells)``: per item, a metadata
    :class:`SimulationResult` shell (its ``reports`` dict left empty)
    and one ``(policy_name, cell)`` pair per ``config.policies`` entry —
    a cell is either a materialized :class:`EnergyReport` (cache hits
    and single-parameter groups) or a ``(grid, row, col)`` triple (see
    :meth:`_ReportGroup.evaluate_cells`).
    """
    prepared: list[tuple] = []
    # Graphs are chip-independent: two points differing only in chip
    # (same workload, batch and parallelism) share one built graph.
    built_graphs: dict[tuple, Any] = {}
    resolutions: dict[tuple, tuple] = {}
    for spec, config in items:
        chip, parallelism, pkey, profile = _cached_profile(
            spec, config, cache, built_graphs, resolutions
        )
        prepared.append((spec, config, chip, parallelism, pkey, profile))

    # Report phase: probe the cache once per (item, policy) like the
    # per-item path, then evaluate the misses one policy at a time: the
    # group's distinct profiles (chip-major packed) × distinct gating
    # parameters form one grid that a single
    # :meth:`~repro.gating.policies.PowerGatingPolicy.grid_evaluate`
    # call prices — the sensitivity-sweep hot path.  With one parameter
    # point the grid degenerates to one `batch_evaluate` over the
    # chip-major pack.  Cells are bit-identical to the per-item path
    # either way, so a sweep's rows (and CSV bytes) do not change.
    fetched: dict[str, Any] = {}
    groups: dict[PolicyName, _ReportGroup] = {}
    for spec, config, chip, parallelism, pkey, profile in prepared:
        for policy_name in config.policies:
            rkey = report_key(pkey, policy_name.value, config.gating_parameters)
            if rkey in fetched:
                continue
            report = cache.get_report(rkey)
            if report is not None:
                fetched[rkey] = report
                continue
            group = groups.setdefault(policy_name, _ReportGroup())
            group.add(rkey, pkey, profile, config.gating_parameters)
    for policy_name, group in groups.items():
        for rkey, cell in group.evaluate_cells(policy_name):
            if isinstance(cell, tuple):
                grid, row, col = cell
                cache.put_report_lazy(rkey, functools.partial(grid.report, row, col))
            else:
                cache.put_report(rkey, cell)
            fetched[rkey] = cell

    results: list[SimulationResult] = []
    cells: list[list] = []
    for spec, config, chip, parallelism, pkey, profile in prepared:
        results.append(
            build_result(spec.name, profile, parallelism, profile.graph, config)
        )
        cells.append(
            [
                (
                    policy_name,
                    fetched[
                        report_key(
                            pkey, policy_name.value, config.gating_parameters
                        )
                    ],
                )
                for policy_name in config.policies
            ]
        )
    return results, cells


def simulate_cached_cells(
    items: list[tuple[str | WorkloadSpec, SimulationConfig | None]],
    cache: SimulationCache,
) -> tuple[list[SimulationResult], list[list]] | None:
    """Fused batched pricing for the sweep fast path.

    Like :func:`simulate_cached_many`, but returns the raw pricing
    cells (see :func:`_price_prepared`) instead of attaching
    materialized reports — the runner assembles its result columns
    straight from the grid arrays.  Returns ``None`` when any item
    bypasses the registry cache (hand-built workload specs); the caller
    falls back to :func:`simulate_cached_many`.
    """
    resolved_items: list[tuple[WorkloadSpec, SimulationConfig]] = []
    for workload, config in items:
        spec = _registry_spec(workload)
        if spec is None:
            return None
        resolved_items.append((spec, config or SimulationConfig()))
    return _price_prepared(resolved_items, cache)


def simulate_cached_many(
    items: list[tuple[str | WorkloadSpec, SimulationConfig | None]],
    cache: SimulationCache | None = None,
) -> list[SimulationResult]:
    """Batched :func:`simulate_cached` over many (workload, config) pairs.

    Profiles are resolved exactly like the per-item path (same cache
    keys, same probe order); the *report* phase is then grid-batched
    through :func:`_price_prepared` and the resulting cells are
    materialized onto each item's result.  Reports are bit-identical
    to the per-item path, so a sweep's rows (and CSV bytes) do not
    change.  Non-registry workloads fall back to
    :func:`simulate_workload` per item.
    """
    if cache is None:
        return [simulate_workload(workload, config) for workload, config in items]

    results: list[SimulationResult | None] = [None] * len(items)
    batched_indices: list[int] = []
    batched_items: list[tuple[WorkloadSpec, SimulationConfig]] = []
    for index, (workload, config) in enumerate(items):
        spec = _registry_spec(workload)
        if spec is None:
            results[index] = simulate_workload(workload, config)
            continue
        batched_indices.append(index)
        batched_items.append((spec, config or SimulationConfig()))

    if batched_items:
        shells, cells = _price_prepared(batched_items, cache)
        for index, shell, row_cells in zip(batched_indices, shells, cells):
            for policy_name, cell in row_cells:
                shell.reports[policy_name] = materialize_cell(cell)
            results[index] = shell
    return results


__all__ = [
    "CacheGcReport",
    "JsonFileStore",
    "PackedRows",
    "atomic_replace",
    "SharedCacheDir",
    "SimulationCache",
    "materialize_cell",
    "pack_rows",
    "portable_profile",
    "report_from_dict",
    "report_to_dict",
    "simulate_cached",
    "simulate_cached_cells",
    "simulate_cached_many",
    "unpack_rows",
]
