"""Tabular results of a parameter sweep.

A :class:`SweepResult` is a small, dependency-free data frame: an
ordered list of flat row dictionaries with a fixed column order, plus
the export (CSV/JSON) and reshaping (filter/group-by/pivot) helpers the
benchmarks and analyses need.  Floats are exported with ``repr`` so a
CSV written by a parallel run is byte-identical to one written by a
serial run of the same sweep.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence


def _cell(value: Any) -> Any:
    if isinstance(value, float):
        return repr(value)
    return value


@dataclass
class SweepResult:
    """An ordered table of sweep rows (one row per point x policy)."""

    columns: tuple[str, ...]
    rows: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_rows(cls, rows: Sequence[dict[str, Any]]) -> "SweepResult":
        """Build a result from row dicts (columns from the first row)."""
        rows = list(rows)
        columns: tuple[str, ...] = tuple(rows[0].keys()) if rows else ()
        return cls(columns=columns, rows=rows)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self.rows[index]

    def _check_columns(self, *names: str) -> None:
        """Fail fast on misspelled column names (empty tables check nothing)."""
        if not self.columns:
            return
        unknown = [name for name in names if name not in self.columns]
        if unknown:
            raise KeyError(f"unknown column(s) {unknown}; have {list(self.columns)}")

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        self._check_columns(name)
        return [row[name] for row in self.rows]

    # ------------------------------------------------------------------ #
    def filter(self, **equals: Any) -> "SweepResult":
        """Rows whose columns equal the given values (AND semantics)."""
        self._check_columns(*equals)
        kept = [
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in equals.items())
        ]
        return SweepResult(columns=self.columns, rows=kept)

    def group_by(self, *columns: str) -> dict[tuple[Any, ...], "SweepResult"]:
        """Partition the rows by the values of one or more columns."""
        self._check_columns(*columns)
        groups: dict[tuple[Any, ...], SweepResult] = {}
        for row in self.rows:
            key = tuple(row.get(column) for column in columns)
            groups.setdefault(
                key, SweepResult(columns=self.columns, rows=[])
            ).rows.append(row)
        return groups

    def pivot(
        self, index: str | Sequence[str], value: str
    ) -> dict[Any, Any]:
        """Map (index-column values) -> value-column entries.

        ``index`` may be one column name or a sequence (keys become
        tuples).  Raises if two rows map the same key to different
        values — pre-:meth:`filter` the table down to one row per key.
        """
        index_columns = (index,) if isinstance(index, str) else tuple(index)
        self._check_columns(*index_columns, value)
        table: dict[Any, Any] = {}
        for row in self.rows:
            key = tuple(row.get(column) for column in index_columns)
            if len(index_columns) == 1:
                key = key[0]
            entry = row.get(value)
            if key in table and table[key] != entry:
                raise ValueError(
                    f"pivot key {key!r} is ambiguous: {table[key]!r} vs {entry!r}; "
                    "filter the result (e.g. by policy) before pivoting"
                )
            table[key] = entry
        return table

    # ------------------------------------------------------------------ #
    def iter_csv(self) -> Iterator[str]:
        """Yield CSV lines (header first, trailing newline included).

        The generator renders one row at a time, so consumers that
        stream the lines to a file or socket never hold more than one
        rendered row in memory regardless of the grid size.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")

        def render(cells) -> str:
            writer.writerow(cells)
            line = buffer.getvalue()
            buffer.seek(0)
            buffer.truncate(0)
            return line

        yield render(self.columns)
        for row in self.rows:
            yield render([_cell(row.get(column)) for column in self.columns])

    def write_csv(self, path: str | Path) -> int:
        """Stream the table to ``path`` in O(1) memory; returns row count.

        Unlike :meth:`to_csv`, the full CSV text is never materialized —
        use this for very large grids.  The bytes written are identical
        to what :meth:`to_csv` produces.
        """
        lines = 0
        with Path(path).open("w", newline="") as handle:
            for line in self.iter_csv():
                handle.write(line)
                lines += 1
        return max(0, lines - 1)  # exclude the header

    def to_csv(self, path: str | Path | None = None) -> str:
        """Render as CSV (and write it to ``path`` when given)."""
        text = "".join(self.iter_csv())
        if path is not None:
            # newline="" matches write_csv: the rendered "\n" line
            # endings reach the file untranslated on every platform.
            Path(path).write_text(text, newline="")
        return text

    def to_json(self, path: str | Path | None = None) -> str:
        """Render as JSON (and write it to ``path`` when given)."""
        text = json.dumps(
            {"columns": list(self.columns), "rows": self.rows}, indent=2, sort_keys=False
        )
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return cls(columns=tuple(payload["columns"]), rows=list(payload["rows"]))


__all__ = ["SweepResult"]
