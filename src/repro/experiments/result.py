"""Tabular results of a parameter sweep.

A :class:`SweepResult` is a small, dependency-free data frame with a
fixed column order and three interchangeable backing stores:

* a **column store** — one array or list per column
  (:meth:`from_series`; shard merges feed this directly, with float
  columns that may be memory-mapped views into ``.repro-shard``
  artifacts).  ``iter_csv``/``write_csv`` and ``filter`` operate
  straight on the columns — no row tuple or dict is materialized, so a
  merged million-row table streams to CSV with bounded resident memory;
* a **packed store** — one value tuple per row (the runner's
  array-native assembly and the row cache feed this directly), with the
  row *dicts* of the legacy API materialized lazily on first access;
* a **row-dict store** — the original ordered list of flat dictionaries
  (:meth:`from_rows`, and what ``group_by`` hands back).

Either way the export (CSV/JSON) and reshaping (filter/group-by/pivot)
helpers behave identically; :meth:`iter_csv` streams straight off the
packed or column store without ever building a dict per row.  Floats
are exported with ``repr`` so a CSV written by a parallel run is
byte-identical to one written by a serial run of the same sweep.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

import numpy as np


def _cell(value: Any) -> Any:
    if isinstance(value, float):
        return repr(value)
    return value


#: Rows per rendering window when streaming CSV off the column store.
_CSV_CHUNK_ROWS = 2048


class SweepResult:
    """An ordered table of sweep rows (one row per point x policy)."""

    def __init__(
        self,
        columns: Sequence[str],
        rows: "Sequence[dict[str, Any]] | None" = None,
        *,
        values: "Sequence[tuple[Any, ...]] | None" = None,
        series: "Mapping[str, Any] | None" = None,
    ):
        if sum(store is not None for store in (rows, values, series)) > 1:
            raise TypeError("pass at most one of rows, values or series")
        self.columns: tuple[str, ...] = tuple(columns)
        self._values_list: list[tuple[Any, ...]] | None = (
            list(values) if values is not None else None
        )
        self._series: dict[str, Any] | None = (
            {name: series[name] for name in self.columns}
            if series is not None
            else None
        )
        self._rows: list[dict[str, Any]] | None = (
            list(rows) if rows is not None else None
        )
        if self._values_list is None and self._rows is None and self._series is None:
            self._rows = []

    @property
    def _values(self) -> "list[tuple[Any, ...]] | None":
        """The packed store, materializing the column store on demand.

        Column-store tables convert lazily: the first packed access
        turns the columns into plain-scalar row tuples (``tolist`` for
        arrays, so ``np.float64`` never leaks into the cells) and drops
        the column store.  Row-dict-backed tables return ``None``, as
        before.
        """
        if self._values_list is None and self._series is not None:
            ordered = [
                column.tolist() if isinstance(column, np.ndarray) else column
                for column in self._series.values()
            ]
            self._values_list = list(zip(*ordered)) if ordered else []
            self._series = None
        return self._values_list

    @_values.setter
    def _values(self, values: "list[tuple[Any, ...]] | None") -> None:
        self._values_list = values
        if values is not None:
            self._series = None

    # -- constructors --------------------------------------------------- #
    @classmethod
    def from_rows(cls, rows: Sequence[dict[str, Any]]) -> "SweepResult":
        """Build a result from row dicts (columns from the first row)."""
        rows = list(rows)
        columns: tuple[str, ...] = tuple(rows[0].keys()) if rows else ()
        return cls(columns=columns, rows=rows)

    @classmethod
    def from_packed(
        cls, columns: Sequence[str], values: Sequence[Sequence[Any]]
    ) -> "SweepResult":
        """Build a result from packed (columns, value-tuples) rows."""
        return cls(columns=columns, values=[tuple(row) for row in values])

    @classmethod
    def from_columns(cls, columns: "Mapping[str, Any]") -> "SweepResult":
        """Build a result from column arrays (one array/list per column).

        NumPy arrays are converted with ``tolist`` so every cell is a
        plain Python scalar (``repr`` of a ``np.float64`` would not
        round-trip the CSV identically).
        """
        names = tuple(columns)
        series = [
            column.tolist() if isinstance(column, np.ndarray) else list(column)
            for column in columns.values()
        ]
        if series and len({len(s) for s in series}) > 1:
            raise ValueError("all columns must have the same length")
        values = list(zip(*series)) if series else []
        return cls(columns=names, values=values)

    @classmethod
    def from_series(cls, columns: Sequence[str], series: "Mapping[str, Any]") -> "SweepResult":
        """Build a column-store result (one array or list per column).

        Unlike :meth:`from_columns`, the columns are kept **as given**
        — float columns may be ndarrays (including memory-mapped views
        into shard artifacts) and are only converted to plain scalars
        when a consumer actually asks for rows.  Exports and filters
        run directly over the columns.
        """
        columns = tuple(columns)
        lengths = {len(series[name]) for name in columns}
        if len(lengths) > 1:
            raise ValueError("all columns must have the same length")
        return cls(columns=columns, series=series)

    # -- row access ----------------------------------------------------- #
    @property
    def rows(self) -> list[dict[str, Any]]:
        """The row dicts, materialized from the packed store on demand.

        Once materialized (or when the table was built from dicts), the
        dict list is the source of truth — mutations are visible to
        every helper and export.
        """
        if self._rows is None:
            columns = self.columns
            self._rows = [dict(zip(columns, row)) for row in self._values]
            self._values = None
        return self._rows

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        if self._series is not None:
            return len(next(iter(self._series.values()))) if self._series else 0
        return len(self._values_list)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self.rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SweepResult):
            return NotImplemented
        if self.columns != other.columns:
            return False
        if self._values is not None and other._values is not None:
            # Both packed with identical column order: compare the value
            # tuples directly, keeping both packed stores intact.
            return self._values == other._values
        return self.rows == other.rows

    def __repr__(self) -> str:
        return (
            f"SweepResult({len(self)} rows x {len(self.columns)} columns)"
        )

    def _check_columns(self, *names: str) -> None:
        """Fail fast on misspelled column names (empty tables check nothing)."""
        if not self.columns:
            return
        unknown = [name for name in names if name not in self.columns]
        if unknown:
            raise KeyError(f"unknown column(s) {unknown}; have {list(self.columns)}")

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order (no dict materialization)."""
        self._check_columns(name)
        if self._rows is not None:
            return [row[name] for row in self._rows]
        if self._series is not None:
            column = self._series[name]
            return column.tolist() if isinstance(column, np.ndarray) else list(column)
        index = self.columns.index(name)
        return [row[index] for row in self._values_list]

    # ------------------------------------------------------------------ #
    def filter(self, **equals: Any) -> "SweepResult":
        """Rows whose columns equal the given values (AND semantics).

        On a column-store table the filter runs column-wise (vectorized
        comparison for array columns) and the kept rows stay columnar —
        no row dict is materialized, and array columns are only sliced,
        keeping memory-mapped inputs out of core.
        """
        self._check_columns(*equals)
        if self._series is not None and self._rows is None:
            count = len(self)
            keep = np.ones(count, dtype=bool)
            for name, value in equals.items():
                column = self._series[name]
                if isinstance(column, np.ndarray):
                    keep &= column == value
                else:
                    keep &= np.fromiter(
                        (cell == value for cell in column),
                        dtype=bool,
                        count=count,
                    )
            indices = np.flatnonzero(keep)
            kept_series = {
                name: column[indices]
                if isinstance(column, np.ndarray)
                else [column[i] for i in indices]
                for name, column in self._series.items()
            }
            return SweepResult(columns=self.columns, series=kept_series)
        kept = [
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in equals.items())
        ]
        return SweepResult(columns=self.columns, rows=kept)

    def group_by(self, *columns: str) -> dict[tuple[Any, ...], "SweepResult"]:
        """Partition the rows by the values of one or more columns."""
        self._check_columns(*columns)
        groups: dict[tuple[Any, ...], SweepResult] = {}
        for row in self.rows:
            key = tuple(row.get(column) for column in columns)
            groups.setdefault(
                key, SweepResult(columns=self.columns, rows=[])
            ).rows.append(row)
        return groups

    def pivot(
        self, index: str | Sequence[str], value: str
    ) -> dict[Any, Any]:
        """Map (index-column values) -> value-column entries.

        ``index`` may be one column name or a sequence (keys become
        tuples).  Raises if two rows map the same key to different
        values — pre-:meth:`filter` the table down to one row per key.
        """
        index_columns = (index,) if isinstance(index, str) else tuple(index)
        self._check_columns(*index_columns, value)
        table: dict[Any, Any] = {}
        for row in self.rows:
            key = tuple(row.get(column) for column in index_columns)
            if len(index_columns) == 1:
                key = key[0]
            entry = row.get(value)
            if key in table and table[key] != entry:
                raise ValueError(
                    f"pivot key {key!r} is ambiguous: {table[key]!r} vs {entry!r}; "
                    "filter the result (e.g. by policy) before pivoting"
                )
            table[key] = entry
        return table

    # ------------------------------------------------------------------ #
    def iter_csv(self) -> Iterator[str]:
        """Yield CSV lines (header first, trailing newline included).

        The generator renders one row at a time, so consumers that
        stream the lines to a file or socket never hold more than one
        rendered row in memory regardless of the grid size.  On the
        packed store the cells are read positionally — no row dict is
        ever materialized (zero-copy with respect to the dict API).
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")

        def render(cells) -> str:
            writer.writerow(cells)
            line = buffer.getvalue()
            buffer.seek(0)
            buffer.truncate(0)
            return line

        yield render(self.columns)
        if self._rows is not None:
            for row in self._rows:
                yield render([_cell(row.get(column)) for column in self.columns])
            return
        if self._series is not None:
            # Column store: stream fixed-size chunks so array columns
            # (possibly memory-mapped shard columns) are pulled in a
            # bounded window at a time — resident memory stays O(chunk)
            # regardless of the table size.
            ordered = [self._series[name] for name in self.columns]
            count = len(self)
            for start in range(0, count, _CSV_CHUNK_ROWS):
                stop = min(start + _CSV_CHUNK_ROWS, count)
                chunk = [
                    column[start:stop].tolist()
                    if isinstance(column, np.ndarray)
                    else column[start:stop]
                    for column in ordered
                ]
                for row in zip(*chunk):
                    yield render([_cell(value) for value in row])
            return
        for row in self._values_list:
            yield render([_cell(value) for value in row])

    def write_csv(self, path: str | Path) -> int:
        """Stream the table to ``path`` in O(1) memory; returns row count.

        Unlike :meth:`to_csv`, the full CSV text is never materialized —
        use this for very large grids.  The bytes written are identical
        to what :meth:`to_csv` produces.
        """
        lines = 0
        with Path(path).open("w", newline="") as handle:
            for line in self.iter_csv():
                handle.write(line)
                lines += 1
        return max(0, lines - 1)  # exclude the header

    def to_csv(self, path: str | Path | None = None) -> str:
        """Render as CSV (and write it to ``path`` when given)."""
        text = "".join(self.iter_csv())
        if path is not None:
            # newline="" matches write_csv: the rendered "\n" line
            # endings reach the file untranslated on every platform.
            Path(path).write_text(text, newline="")
        return text

    def to_json(self, path: str | Path | None = None) -> str:
        """Render as JSON (and write it to ``path`` when given)."""
        text = json.dumps(
            {"columns": list(self.columns), "rows": self.rows}, indent=2, sort_keys=False
        )
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return cls(columns=tuple(payload["columns"]), rows=list(payload["rows"]))

    @classmethod
    def merge_shards(cls, paths: "Sequence[str | Path]") -> "SweepResult":
        """Reassemble ``.repro-shard`` artifacts into one packed result.

        The inverse of a sharded sweep
        (:class:`~repro.experiments.sharding.ShardRunner`): given the
        artifacts of every shard of one plan — in any order, duplicates
        deduplicated — returns a table byte-identical (packed store and
        CSV bytes) to the monolithic
        :meth:`~repro.experiments.runner.SweepRunner.run` of the same
        spec.  Missing, duplicated-but-different and foreign shards
        raise :class:`~repro.experiments.sharding.ShardError`.  The
        merge is columnar end to end: no row dict is materialized.
        """
        from repro.experiments.sharding import merge_shard_paths

        return merge_shard_paths(paths).result()


__all__ = ["SweepResult"]
