"""Declarative specification of a simulation parameter sweep.

A :class:`SweepSpec` declares grids over workloads, chips, batch sizes,
pod sizes, policies and gating parameters; :meth:`SweepSpec.points`
expands the grid into an ordered list of :class:`SweepPoint` objects,
each of which maps to exactly one
:class:`~repro.core.config.SimulationConfig`.  Points are value objects
(picklable, content-hashable) so the runner can dispatch them to worker
processes and cache their results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.config import SimulationConfig
from repro.gating.bet import DEFAULT_PARAMETERS, GatingParameters
from repro.gating.report import PolicyName
from repro.experiments.keys import point_key, stable_hash

#: Label attached to rows swept with the paper's default gating parameters.
DEFAULT_GATING_LABEL = "default"


def _as_tuple(value) -> tuple:
    if value is None:
        return (None,)
    if isinstance(value, (str, int, float)):
        return (value,)
    if isinstance(value, Iterable):
        items = tuple(value)
        return items if items else (None,)
    return (value,)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-specified grid point: a workload under one configuration."""

    index: int
    workload: str
    config: SimulationConfig
    gating_label: str = DEFAULT_GATING_LABEL

    @property
    def cache_key(self) -> str:
        """Content-addressed key of this point (stable across processes).

        Computed once per instance (the runner consults it for the row
        cache before and after evaluating the point).
        """
        cached = self.__dict__.get("_cache_key")
        if cached is None:
            cached = stable_hash(
                {
                    "point": point_key(self.workload, self.config),
                    "label": self.gating_label,
                }
            )
            object.__setattr__(self, "_cache_key", cached)
        return cached


@dataclass
class SweepSpec:
    """A grid of simulations to run.

    Every axis accepts a single value or a sequence; ``None`` entries in
    ``batch_sizes``/``num_chips`` mean "use the workload's default".
    ``gating_parameters`` accepts :class:`GatingParameters` values or
    ``(label, parameters)`` pairs — labels end up in the result table so
    sensitivity sweeps stay identifiable.  ``NoPG`` is always evaluated
    (it is the baseline every savings/overhead column normalizes
    against), even when not listed in ``policies``.
    """

    workloads: Sequence[str]
    chips: Sequence[str] = ("NPU-D",)
    batch_sizes: Sequence[int | None] = (None,)
    num_chips: Sequence[int | None] = (None,)
    policies: Sequence[PolicyName | str] = field(
        default_factory=lambda: tuple(SimulationConfig().policies)
    )
    gating_parameters: Sequence[GatingParameters | tuple[str, GatingParameters]] = (
        (DEFAULT_GATING_LABEL, DEFAULT_PARAMETERS),
    )
    apply_fusion: bool = True

    def __post_init__(self) -> None:
        self.workloads = _as_tuple(self.workloads)
        if any(w is None for w in self.workloads):
            raise ValueError("a sweep needs at least one workload")
        self.chips = _as_tuple(self.chips)
        self.batch_sizes = _as_tuple(self.batch_sizes)
        self.num_chips = _as_tuple(self.num_chips)
        policies = tuple(PolicyName.parse(p) for p in _as_tuple(self.policies))
        if PolicyName.NOPG not in policies:
            policies = (PolicyName.NOPG, *policies)
        self.policies = policies
        entries = self.gating_parameters
        if (
            isinstance(entries, (tuple, list))
            and len(entries) == 2
            and isinstance(entries[0], str)
            and isinstance(entries[1], GatingParameters)
        ):
            # A single bare (label, parameters) pair, not a sequence of
            # two entries — without this, the label string would be
            # unpacked character-by-character into bogus grid points.
            entries = (entries,)
        labeled: list[tuple[str, GatingParameters]] = []
        for entry in _as_tuple(entries):
            if isinstance(entry, GatingParameters):
                labeled.append((f"g{len(labeled)}", entry))
                continue
            if (
                isinstance(entry, (tuple, list))
                and len(entry) == 2
                and isinstance(entry[1], GatingParameters)
            ):
                labeled.append((str(entry[0]), entry[1]))
                continue
            raise TypeError(
                "gating_parameters entries must be GatingParameters or "
                f"(label, GatingParameters) pairs, got {entry!r}"
            )
        self.gating_parameters = tuple(labeled)

    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        """Number of grid points (rows are ``num_points * len(policies)``)."""
        return (
            len(self.workloads)
            * len(self.chips)
            * len(self.batch_sizes)
            * len(self.num_chips)
            * len(self.gating_parameters)
        )

    def _grid_token(self) -> tuple:
        """Hashable fingerprint of every axis (parameters by identity)."""
        from repro.gating.bet import parameters_token

        return (
            tuple(self.workloads),
            tuple(self.chips),
            tuple(self.batch_sizes),
            tuple(self.num_chips),
            tuple(self.policies),
            tuple(
                (label, parameters_token(parameters))
                for label, parameters in self.gating_parameters
            ),
            self.apply_fusion,
        )

    def points(self) -> list[SweepPoint]:
        """Expand the grid in deterministic (row-major) order.

        The expansion is memoized per grid fingerprint: repeated runs of
        one spec (e.g. a cold/warm benchmark pair) reuse the same point
        objects and therefore their memoized cache keys.
        """
        cached = self.__dict__.get("_points_cache")
        token = self._grid_token()
        if cached is not None and cached[0] == token:
            return list(cached[1])
        points = self._expand_points()
        self.__dict__["_points_cache"] = (token, points)
        return list(points)

    def _expand_points(self) -> list[SweepPoint]:
        points: list[SweepPoint] = []
        for workload in self.workloads:
            for chip in self.chips:
                for batch_size in self.batch_sizes:
                    for num_chips in self.num_chips:
                        for label, parameters in self.gating_parameters:
                            config = SimulationConfig(
                                chip=chip,
                                num_chips=num_chips,
                                batch_size=batch_size,
                                policies=tuple(self.policies),
                                gating_parameters=parameters,
                                apply_fusion=self.apply_fusion,
                            )
                            points.append(
                                SweepPoint(
                                    index=len(points),
                                    workload=workload,
                                    config=config,
                                    gating_label=label,
                                )
                            )
        return points

    def describe(self) -> str:
        """One-line summary, e.g. ``3 workloads x 2 chips x 5 policies``."""
        parts = [f"{len(self.workloads)} workload(s)", f"{len(self.chips)} chip(s)"]
        if self.batch_sizes != (None,):
            parts.append(f"{len(self.batch_sizes)} batch size(s)")
        if self.num_chips != (None,):
            parts.append(f"{len(self.num_chips)} pod size(s)")
        if len(self.gating_parameters) > 1:
            parts.append(f"{len(self.gating_parameters)} gating point(s)")
        parts.append(f"{len(self.policies)} policy(ies)")
        return " x ".join(parts)


__all__ = ["DEFAULT_GATING_LABEL", "SweepPoint", "SweepSpec"]
