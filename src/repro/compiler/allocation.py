"""SRAM scratchpad allocation with buffer lifetimes.

The NPU SRAM is a software-managed scratchpad: the compiler decides the
address and lifetime of every buffer.  ReGate's software-managed SRAM
power gating consumes exactly this information — "the output of the SRAM
allocation pass, which includes the lifetime (start/end instruction
index), start address, and size of each allocated buffer" (§4.3) — to
derive the idle intervals of each 4 KB segment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hardware.chips import KiB, NPUChipSpec


@dataclass(frozen=True)
class BufferRequest:
    """A request to allocate an SRAM buffer for an instruction range."""

    name: str
    size_bytes: int
    start_index: int
    end_index: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"buffer {self.name!r} has non-positive size")
        if self.end_index < self.start_index:
            raise ValueError(f"buffer {self.name!r} has end before start")


@dataclass(frozen=True)
class BufferAllocation:
    """A placed SRAM buffer."""

    request: BufferRequest
    start_address: int

    @property
    def end_address(self) -> int:
        return self.start_address + self.request.size_bytes

    def overlaps_address(self, other: "BufferAllocation") -> bool:
        return not (
            self.end_address <= other.start_address
            or other.end_address <= self.start_address
        )

    def overlaps_lifetime(self, other: "BufferAllocation") -> bool:
        return not (
            self.request.end_index < other.request.start_index
            or other.request.end_index < self.request.start_index
        )


@dataclass
class SegmentLifetime:
    """Busy intervals (in instruction indices) of one 4 KB SRAM segment."""

    segment_index: int
    busy_intervals: list[tuple[int, int]] = field(default_factory=list)

    def busy_at(self, index: int) -> bool:
        return any(start <= index <= end for start, end in self.busy_intervals)

    @property
    def ever_used(self) -> bool:
        return bool(self.busy_intervals)


class SramAllocator:
    """First-fit SRAM allocator producing per-segment lifetimes."""

    def __init__(self, chip: NPUChipSpec):
        self.chip = chip
        self.segment_bytes = chip.sram_segment_kb * KiB
        self.capacity = int(chip.sram_bytes)

    def allocate(self, requests: list[BufferRequest]) -> list[BufferAllocation]:
        """Place every buffer, raising if the live set exceeds capacity.

        Buffers are placed in order of start index using first-fit against
        the buffers whose lifetimes overlap.
        """
        placed: list[BufferAllocation] = []
        for request in sorted(requests, key=lambda r: (r.start_index, -r.size_bytes)):
            live = [
                allocation
                for allocation in placed
                if not (
                    allocation.request.end_index < request.start_index
                    or request.end_index < allocation.request.start_index
                )
            ]
            live.sort(key=lambda allocation: allocation.start_address)
            address = 0
            for allocation in live:
                if address + request.size_bytes <= allocation.start_address:
                    break
                address = max(address, allocation.end_address)
            if address + request.size_bytes > self.capacity:
                raise MemoryError(
                    f"SRAM allocation failed for {request.name!r}: "
                    f"{request.size_bytes} bytes do not fit"
                )
            placed.append(BufferAllocation(request=request, start_address=address))
        return placed

    # ------------------------------------------------------------------ #
    def segment_lifetimes(
        self, allocations: list[BufferAllocation]
    ) -> list[SegmentLifetime]:
        """Compute the busy intervals of every SRAM segment."""
        num_segments = self.capacity // self.segment_bytes
        lifetimes = [SegmentLifetime(segment_index=i) for i in range(num_segments)]
        for allocation in allocations:
            first = allocation.start_address // self.segment_bytes
            last = (allocation.end_address - 1) // self.segment_bytes
            interval = (allocation.request.start_index, allocation.request.end_index)
            for segment in range(first, min(last + 1, num_segments)):
                lifetimes[segment].busy_intervals.append(interval)
        for lifetime in lifetimes:
            lifetime.busy_intervals.sort()
        return lifetimes

    def peak_usage_bytes(self, allocations: list[BufferAllocation]) -> int:
        """Highest address ever used (peak SRAM footprint)."""
        if not allocations:
            return 0
        return max(allocation.end_address for allocation in allocations)

    def used_segments(self, allocations: list[BufferAllocation]) -> int:
        """Number of segments touched by at least one buffer."""
        return sum(1 for life in self.segment_lifetimes(allocations) if life.ever_used)


__all__ = [
    "BufferAllocation",
    "BufferRequest",
    "SegmentLifetime",
    "SramAllocator",
]
