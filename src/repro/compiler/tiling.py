"""Tile-size selection and SRAM demand estimation.

The paper quantifies the SRAM demand of a tensor operator as "the
minimum tile size that maximizes the on-chip data reuse"; for streaming
operators whose reuse does not depend on tile size, the demand is the
minimum tile that hides the HBM latency (§3, Figure 7).  This pass
computes that demand per operator and derives the tile counts used by
the performance simulator (number of weight panels pushed into an SA,
number of output tiles post-processed by the VUs, number of DMA bursts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.chips import NPUChipSpec
from repro.workloads.base import Operator, OpKind


@dataclass(frozen=True)
class TileInfo:
    """Tiling decision for one operator."""

    sram_demand_bytes: float
    num_weight_tiles: int  # weight panels loaded into the SA
    num_output_tiles: int  # output tiles handed to the VUs
    num_dma_bursts: int  # discrete HBM transfers
    tile_m: int = 0
    tile_k: int = 0
    tile_n: int = 0

    @property
    def double_buffered_bytes(self) -> float:
        """Demand including double buffering of the streamed operand."""
        return self.sram_demand_bytes


class TilingPass:
    """Computes :class:`TileInfo` for each operator on a given chip."""

    def __init__(self, chip: NPUChipSpec, double_buffer: bool = True):
        self.chip = chip
        self.double_buffer = double_buffer
        self._streaming_demand: float | None = None

    # ------------------------------------------------------------------ #
    def streaming_demand_bytes(self) -> float:
        """Minimum SRAM needed to hide HBM latency for a streaming operator."""
        if self._streaming_demand is None:
            inflight = (
                self.chip.hbm_bandwidth_bytes * self.chip.hbm.access_latency_ns * 1e-9
            )
            factor = 2.0 if self.double_buffer else 1.0
            self._streaming_demand = inflight * factor
        return self._streaming_demand

    def matmul_demand_bytes(self, m: int, k: int, n: int, dtype_bytes: int) -> float:
        """SRAM demand of a matmul with full data reuse.

        Holding the weight matrix, one activation panel and one output
        panel on chip lets every HBM byte be read exactly once, which is
        the reuse-maximizing point the paper uses for Figure 7.
        """
        weights = k * n * dtype_bytes
        # Activation and output panels are streamed tile-by-tile; a panel
        # of ``sa_width`` rows is enough to keep the SA busy.
        panel_rows = min(m, 4 * self.chip.sa_width)
        activations = panel_rows * k * dtype_bytes
        outputs = panel_rows * n * dtype_bytes
        factor = 2.0 if self.double_buffer else 1.0
        demand = weights + factor * (activations + outputs)
        return max(demand, self.streaming_demand_bytes())

    # ------------------------------------------------------------------ #
    def tile(self, op: Operator) -> TileInfo:
        """Compute tiling information for ``op``."""
        width = self.chip.sa_width
        if op.kind.uses_sa and op.dims is not None:
            dims = op.dims
            demand = self.matmul_demand_bytes(dims.m, dims.k, dims.n, op.dtype_bytes)
            weight_tiles = math.ceil(dims.k / width) * math.ceil(dims.n / width)
            output_tiles = max(1, math.ceil(dims.m / width)) * math.ceil(dims.n / width)
            dma_bursts = max(1, math.ceil(dims.n / width))
            return TileInfo(
                sram_demand_bytes=demand,
                num_weight_tiles=weight_tiles,
                num_output_tiles=output_tiles,
                num_dma_bursts=dma_bursts,
                tile_m=min(dims.m, width),
                tile_k=min(dims.k, width),
                tile_n=min(dims.n, width),
            )
        if op.kind is OpKind.COLLECTIVE:
            demand = min(op.hbm_read_bytes, 8 * self.streaming_demand_bytes())
            return TileInfo(
                sram_demand_bytes=max(demand, self.streaming_demand_bytes()),
                num_weight_tiles=0,
                num_output_tiles=0,
                num_dma_bursts=max(1, int(op.ici_bytes // (4 * 1024 * 1024)) or 1),
            )
        # Streaming / elementwise / embedding operators.
        demand = self.streaming_demand_bytes()
        bursts = max(1, int(op.hbm_bytes // (4 * 1024 * 1024)) or 1)
        vu_tiles = max(1, int(op.vu_flops // (self.chip.vu_alus * 64)) or 1)
        return TileInfo(
            sram_demand_bytes=demand,
            num_weight_tiles=0,
            num_output_tiles=vu_tiles,
            num_dma_bursts=bursts,
        )

    def graph_demands(self, operators: list[Operator]) -> list[tuple[Operator, TileInfo]]:
        """Tile every operator of a graph."""
        return [(op, self.tile(op)) for op in operators]


__all__ = ["TileInfo", "TilingPass"]
