"""Tile-size selection and SRAM demand estimation.

The paper quantifies the SRAM demand of a tensor operator as "the
minimum tile size that maximizes the on-chip data reuse"; for streaming
operators whose reuse does not depend on tile size, the demand is the
minimum tile that hides the HBM latency (§3, Figure 7).  This pass
computes that demand per operator and derives the tile counts used by
the performance simulator (number of weight panels pushed into an SA,
number of output tiles post-processed by the VUs, number of DMA bursts).

Two implementations produce bit-identical doubles: the scalar
:meth:`TilingPass.tile` (the object-path oracle) and the vectorized
:meth:`TilingPass.tile_table`, which rewrites a whole
:class:`~repro.workloads.table.GraphTable` with masked array ops (the
columnar compiler frontend).  The array expressions mirror the scalar
ones operation for operation — the same contract the columnar simulator
core upholds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hardware.chips import NPUChipSpec
from repro.workloads.base import Operator, OpKind

#: 4 MiB DMA burst granularity (the scalar expressions below use the
#: literal; the array path shares this constant).
DMA_BURST_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class TileInfo:
    """Tiling decision for one operator."""

    sram_demand_bytes: float
    num_weight_tiles: int  # weight panels loaded into the SA
    num_output_tiles: int  # output tiles handed to the VUs
    num_dma_bursts: int  # discrete HBM transfers
    tile_m: int = 0
    tile_k: int = 0
    tile_n: int = 0

    @property
    def double_buffered_bytes(self) -> float:
        """Demand including double buffering of the streamed operand."""
        return self.sram_demand_bytes


class TilingPass:
    """Computes :class:`TileInfo` for each operator on a given chip."""

    def __init__(self, chip: NPUChipSpec, double_buffer: bool = True):
        self.chip = chip
        self.double_buffer = double_buffer
        self._streaming_demand: float | None = None

    # ------------------------------------------------------------------ #
    def streaming_demand_bytes(self) -> float:
        """Minimum SRAM needed to hide HBM latency for a streaming operator."""
        if self._streaming_demand is None:
            inflight = (
                self.chip.hbm_bandwidth_bytes * self.chip.hbm.access_latency_ns * 1e-9
            )
            factor = 2.0 if self.double_buffer else 1.0
            self._streaming_demand = inflight * factor
        return self._streaming_demand

    def matmul_demand_bytes(self, m: int, k: int, n: int, dtype_bytes: int) -> float:
        """SRAM demand of a matmul with full data reuse.

        Holding the weight matrix, one activation panel and one output
        panel on chip lets every HBM byte be read exactly once, which is
        the reuse-maximizing point the paper uses for Figure 7.
        """
        weights = k * n * dtype_bytes
        # Activation and output panels are streamed tile-by-tile; a panel
        # of ``sa_width`` rows is enough to keep the SA busy.
        panel_rows = min(m, 4 * self.chip.sa_width)
        activations = panel_rows * k * dtype_bytes
        outputs = panel_rows * n * dtype_bytes
        factor = 2.0 if self.double_buffer else 1.0
        demand = weights + factor * (activations + outputs)
        return max(demand, self.streaming_demand_bytes())

    # ------------------------------------------------------------------ #
    def tile(self, op: Operator) -> TileInfo:
        """Compute tiling information for ``op``."""
        width = self.chip.sa_width
        if op.kind.uses_sa and op.dims is not None:
            dims = op.dims
            demand = self.matmul_demand_bytes(dims.m, dims.k, dims.n, op.dtype_bytes)
            weight_tiles = math.ceil(dims.k / width) * math.ceil(dims.n / width)
            output_tiles = max(1, math.ceil(dims.m / width)) * math.ceil(dims.n / width)
            dma_bursts = max(1, math.ceil(dims.n / width))
            return TileInfo(
                sram_demand_bytes=demand,
                num_weight_tiles=weight_tiles,
                num_output_tiles=output_tiles,
                num_dma_bursts=dma_bursts,
                tile_m=min(dims.m, width),
                tile_k=min(dims.k, width),
                tile_n=min(dims.n, width),
            )
        if op.kind is OpKind.COLLECTIVE:
            demand = min(op.hbm_read_bytes, 8 * self.streaming_demand_bytes())
            return TileInfo(
                sram_demand_bytes=max(demand, self.streaming_demand_bytes()),
                num_weight_tiles=0,
                num_output_tiles=0,
                num_dma_bursts=max(1, int(op.ici_bytes // (4 * 1024 * 1024)) or 1),
            )
        # Streaming / elementwise / embedding operators.
        demand = self.streaming_demand_bytes()
        bursts = max(1, int(op.hbm_bytes // (4 * 1024 * 1024)) or 1)
        vu_tiles = max(1, int(op.vu_flops // (self.chip.vu_alus * 64)) or 1)
        return TileInfo(
            sram_demand_bytes=demand,
            num_weight_tiles=0,
            num_output_tiles=vu_tiles,
            num_dma_bursts=bursts,
        )

    def graph_demands(self, operators: list[Operator]) -> list[tuple[Operator, TileInfo]]:
        """Tile every operator of a graph."""
        return [(op, self.tile(op)) for op in operators]

    # ------------------------------------------------------------------ #
    # Vectorized counterparts (columnar compiler frontend)
    # ------------------------------------------------------------------ #
    def demand_arrays(
        self,
        dims_m: np.ndarray,
        dims_k: np.ndarray,
        dims_n: np.ndarray,
        has_dims: np.ndarray,
        uses_sa: np.ndarray,
        is_collective: np.ndarray,
        dtype_bytes: np.ndarray,
        hbm_read: np.ndarray,
    ) -> np.ndarray:
        """Vectorized ``tile(op).sram_demand_bytes`` over column arrays.

        Mirrors the scalar demand expressions bit-for-bit; used by the
        fusion pass to size all fusion candidates in one batch and by
        :meth:`tile_table`.
        """
        streaming_demand = self.streaming_demand_bytes()
        width = self.chip.sa_width
        factor = 2.0 if self.double_buffer else 1.0
        matmul_mask = uses_sa & has_dims
        weights = dims_k * dims_n * dtype_bytes
        panel_rows = np.minimum(dims_m, 4 * width)
        activations = panel_rows * dims_k * dtype_bytes
        outputs = panel_rows * dims_n * dtype_bytes
        matmul_demand = np.maximum(
            weights + factor * (activations + outputs), streaming_demand
        )
        collective_demand = np.maximum(
            np.minimum(hbm_read, 8 * streaming_demand), streaming_demand
        )
        return np.where(
            matmul_mask,
            matmul_demand,
            np.where(is_collective, collective_demand, streaming_demand),
        )

    def operator_demands(self, operators: list[Operator]) -> np.ndarray:
        """Vectorized demands for an object-path operator list."""
        dims = [op.dims for op in operators]
        as_float = lambda values: np.asarray(values, dtype=np.float64)  # noqa: E731
        return self.demand_arrays(
            dims_m=as_float([d.m if d is not None else 1 for d in dims]),
            dims_k=as_float([d.k if d is not None else 1 for d in dims]),
            dims_n=as_float([d.n if d is not None else 1 for d in dims]),
            has_dims=np.asarray([d is not None for d in dims], dtype=bool),
            uses_sa=np.asarray([op.kind.uses_sa for op in operators], dtype=bool),
            is_collective=np.asarray(
                [op.kind.is_collective for op in operators], dtype=bool
            ),
            dtype_bytes=as_float([op.dtype_bytes for op in operators]),
            hbm_read=as_float([op.hbm_read_bytes for op in operators]),
        )

    def tile_table(self, table, demand: np.ndarray | None = None) -> "TileTable":
        """Vectorized :meth:`tile` over a whole ``GraphTable``.

        Produces, per operator, exactly the :class:`TileInfo` fields the
        scalar pass computes one at a time, as aligned arrays.
        ``demand`` short-circuits the SRAM-demand computation with a
        precomputed array — only valid when it was produced by *this*
        pass configuration (the fusion pass hands its fuse-decision
        demands through; fusion never changes any input of the demand
        expressions).
        """
        width = self.chip.sa_width
        dims_m, dims_k, dims_n = table.dims_m, table.dims_k, table.dims_n
        matmul_mask = table.uses_sa & table.has_dims
        is_collective = table.is_collective
        hbm_bytes = table.hbm_bytes

        if demand is None:
            demand = self.demand_arrays(
                dims_m=dims_m,
                dims_k=dims_k,
                dims_n=dims_n,
                has_dims=table.has_dims,
                uses_sa=table.uses_sa,
                is_collective=is_collective,
                dtype_bytes=table.dtype_bytes,
                hbm_read=table.hbm_read_bytes,
            )
        ceil_k = np.ceil(dims_k / width)
        ceil_m = np.ceil(dims_m / width)
        ceil_n = np.ceil(dims_n / width)
        matmul_weight_tiles = ceil_k * ceil_n
        matmul_output_tiles = np.maximum(1.0, ceil_m) * ceil_n
        matmul_dma = np.maximum(1.0, ceil_n)

        collective_dma = np.maximum(1.0, table.ici_bytes // DMA_BURST_BYTES)
        stream_dma = np.maximum(1.0, hbm_bytes // DMA_BURST_BYTES)
        stream_vu_tiles = np.maximum(
            1.0, table.vu_flops // (self.chip.vu_alus * 64)
        )

        num_weight_tiles = np.where(matmul_mask, matmul_weight_tiles, 0.0)
        num_output_tiles = np.where(
            matmul_mask,
            matmul_output_tiles,
            np.where(is_collective, 0.0, stream_vu_tiles),
        )
        num_dma_bursts = np.where(
            matmul_mask, matmul_dma, np.where(is_collective, collective_dma, stream_dma)
        )
        return TileTable(
            sram_demand_bytes=demand,
            num_weight_tiles=num_weight_tiles,
            num_output_tiles=num_output_tiles,
            num_dma_bursts=num_dma_bursts,
            tile_m=np.where(matmul_mask, np.minimum(dims_m, width), 0.0),
            tile_k=np.where(matmul_mask, np.minimum(dims_k, width), 0.0),
            tile_n=np.where(matmul_mask, np.minimum(dims_n, width), 0.0),
        )


@dataclass(frozen=True)
class TileTable:
    """Aligned per-operator arrays of one graph's tiling decisions."""

    sram_demand_bytes: np.ndarray
    num_weight_tiles: np.ndarray
    num_output_tiles: np.ndarray
    num_dma_bursts: np.ndarray
    tile_m: np.ndarray
    tile_k: np.ndarray
    tile_n: np.ndarray


__all__ = ["DMA_BURST_BYTES", "TileInfo", "TileTable", "TilingPass"]
