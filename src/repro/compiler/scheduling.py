"""Tile-level VLIW instruction scheduling.

The scheduler lowers a (tiled) operator into a statically scheduled
:class:`~repro.isa.instructions.Program` of VLIW bundles — push/pop
operations on the systolic arrays, vector post-processing on the VUs,
and DMA transfers.  The paper's compiler performs this step before the
power-management passes; here it is used to drive the idleness analysis
and ``setpm`` instrumentation on concrete traces (Figure 15) and to
validate the pipeline power-state handling.

Full workloads are simulated analytically (``repro.simulator.engine``);
the scheduler is intentionally bounded so traces stay small.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.tiling import TileInfo
from repro.hardware.chips import NPUChipSpec
from repro.isa.instructions import Instruction, Opcode, Program, SlotKind, VLIWBundle
from repro.workloads.base import Operator


@dataclass(frozen=True)
class ScheduleConfig:
    """Knobs of the tile-level scheduler."""

    push_cycles: int = 8  # cycles to feed one 8x128 slice into an SA
    pop_cycles: int = 8  # cycles to drain one output slice from an SA
    vu_cycles_per_tile: int = 1  # VU cycles to post-process one SA output slice
    dma_cycles: int = 64  # cycles per DMA burst (tile fetch)
    max_steady_state_tiles: int = 64  # bound on the emitted trace length


def schedule_matmul_pipeline(
    num_sa: int,
    num_vu: int,
    num_tiles: int,
    config: ScheduleConfig | None = None,
    dma_every_tiles: int = 0,
) -> Program:
    """Emit the steady-state schedule of a tiled matmul (Figure 15 style).

    Every ``push_cycles`` the SAs accept a new input slice and produce an
    output slice which the VUs post-process in ``vu_cycles_per_tile``
    cycles; optionally a DMA burst is issued every ``dma_every_tiles``
    tiles to fetch the next weight panel.
    """
    config = config or ScheduleConfig()
    program = Program()
    cycle = 0
    for tile in range(min(num_tiles, config.max_steady_state_tiles)):
        bundle = VLIWBundle(cycle=cycle)
        for sa in range(num_sa):
            bundle.add(
                Instruction(
                    opcode=Opcode.POP,
                    slot=SlotKind.SA,
                    unit_index=sa,
                    duration_cycles=config.pop_cycles,
                )
            )
        if dma_every_tiles and tile % dma_every_tiles == 0:
            bundle.add(
                Instruction(
                    opcode=Opcode.DMA_IN,
                    slot=SlotKind.DMA,
                    duration_cycles=config.dma_cycles,
                )
            )
        program.append(bundle)
        # While the VUs post-process the freshly popped slice, the SAs
        # start pushing the next input slice (weight-stationary overlap).
        vu_bundle = VLIWBundle(cycle=cycle + config.pop_cycles)
        for sa in range(num_sa):
            vu_bundle.add(
                Instruction(
                    opcode=Opcode.PUSH,
                    slot=SlotKind.SA,
                    unit_index=sa,
                    duration_cycles=config.push_cycles,
                )
            )
        for vu in range(num_vu):
            vu_bundle.add(
                Instruction(
                    opcode=Opcode.VADD,
                    slot=SlotKind.VU,
                    unit_index=vu,
                    duration_cycles=config.vu_cycles_per_tile,
                )
            )
        program.append(vu_bundle)
        cycle += config.pop_cycles + config.push_cycles
    return program


class TileScheduler:
    """Schedules a single operator into a bounded VLIW trace."""

    def __init__(self, chip: NPUChipSpec, config: ScheduleConfig | None = None):
        self.chip = chip
        self.config = config or ScheduleConfig()

    def schedule(self, op: Operator, tile_info: TileInfo) -> Program:
        """Lower one operator invocation into a representative trace."""
        if op.kind.uses_sa and op.dims is not None:
            tiles = min(
                max(1, tile_info.num_output_tiles), self.config.max_steady_state_tiles
            )
            dma_every = max(1, tiles // max(1, tile_info.num_dma_bursts))
            return schedule_matmul_pipeline(
                num_sa=self.chip.num_sa,
                num_vu=self.chip.num_vu,
                num_tiles=tiles,
                config=self.config,
                dma_every_tiles=dma_every,
            )
        return self._schedule_streaming(op, tile_info)

    def _schedule_streaming(self, op: Operator, tile_info: TileInfo) -> Program:
        """Vector/streaming operator: DMA in, VU compute, DMA out."""
        program = Program()
        bursts = min(tile_info.num_dma_bursts, self.config.max_steady_state_tiles)
        vu_cycles = max(
            1,
            int(
                op.vu_flops
                / max(1.0, self.chip.vu_alus)
                / max(1, bursts)
            ),
        )
        vu_cycles = min(vu_cycles, 4096)
        cycle = 0
        for _ in range(max(1, bursts)):
            bundle = VLIWBundle(cycle=cycle)
            if op.hbm_bytes > 0:
                bundle.add(
                    Instruction(
                        opcode=Opcode.DMA_IN,
                        slot=SlotKind.DMA,
                        duration_cycles=self.config.dma_cycles,
                    )
                )
            if op.ici_bytes > 0:
                bundle.add(
                    Instruction(
                        opcode=Opcode.ICI_SEND,
                        slot=SlotKind.ICI,
                        duration_cycles=self.config.dma_cycles,
                    )
                )
            program.append(bundle)
            if op.vu_flops > 0:
                vu_bundle = VLIWBundle(cycle=cycle + self.config.dma_cycles)
                for vu in range(self.chip.num_vu):
                    vu_bundle.add(
                        Instruction(
                            opcode=Opcode.VADD,
                            slot=SlotKind.VU,
                            unit_index=vu,
                            duration_cycles=vu_cycles,
                        )
                    )
                program.append(vu_bundle)
            cycle += self.config.dma_cycles + vu_cycles + 1
        return program


__all__ = ["ScheduleConfig", "TileScheduler", "schedule_matmul_pipeline"]
