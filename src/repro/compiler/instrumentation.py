"""``setpm`` instrumentation pass (§4.3 of the paper).

Given the idle intervals produced by the idleness analysis and the
break-even times of each component, this pass inserts ``setpm``
instructions into a scheduled program: a power-off at the start of a
sufficiently long idle interval and a power-on early enough before the
next use that the wake-up delay is hidden.

The BET-based policy: an interval is instrumented only if it is longer
than the component's break-even time *and* longer than twice its
power-on/off delay (otherwise gating would either waste energy or expose
wake-up latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.compiler.allocation import BufferAllocation, SramAllocator
from repro.compiler.idleness import IdleInterval, IdlenessAnalysis
from repro.gating.bet import GatingParameters
from repro.hardware.components import Component, PowerState
from repro.isa.instructions import Program, SetpmInstruction, VLIWBundle


@dataclass
class SetpmPlan:
    """The instrumentation decisions for one program."""

    power_off_points: list[tuple[int, SetpmInstruction]] = field(default_factory=list)
    power_on_points: list[tuple[int, SetpmInstruction]] = field(default_factory=list)
    skipped_intervals: list[IdleInterval] = field(default_factory=list)

    @property
    def num_setpm(self) -> int:
        return len(self.power_off_points) + len(self.power_on_points)

    def setpm_per_kcycle(self, total_cycles: int) -> float:
        """Executed ``setpm`` instructions per 1,000 cycles (Figure 20 metric)."""
        if total_cycles <= 0:
            return 0.0
        return 1000.0 * self.num_setpm / total_cycles


class InstrumentationPass:
    """Inserts ``setpm`` instructions for software-managed power gating."""

    def __init__(self, parameters: GatingParameters, instrumented: tuple[Component, ...] = (Component.VU,)):
        self.parameters = parameters
        self.instrumented = instrumented

    def should_gate(self, interval: IdleInterval) -> bool:
        """BET policy: gate only intervals long enough to pay off."""
        timing = self.parameters.timing(interval.component)
        threshold = max(timing.bet_cycles, 2 * timing.delay_cycles)
        return interval.effective_cycles > threshold

    def run(self, program: Program, analysis: IdlenessAnalysis) -> tuple[Program, SetpmPlan]:
        """Instrument ``program``; returns a new program and the plan."""
        plan = SetpmPlan()
        insertions: dict[int, list[SetpmInstruction]] = {}
        for interval in analysis.intervals:
            if interval.component not in self.instrumented:
                continue
            if not self.should_gate(interval):
                plan.skipped_intervals.append(interval)
                continue
            timing = self.parameters.timing(interval.component)
            bitmap = 1 << interval.unit_index
            off = SetpmInstruction(
                target=interval.component, mode=PowerState.OFF, unit_bitmap=bitmap
            )
            wake_cycle = max(interval.start_cycle, interval.end_cycle - timing.delay_cycles)
            on = SetpmInstruction(
                target=interval.component, mode=PowerState.ON, unit_bitmap=bitmap
            )
            plan.power_off_points.append((interval.start_cycle, off))
            plan.power_on_points.append((wake_cycle, on))
            insertions.setdefault(interval.start_cycle, []).append(off)
            insertions.setdefault(wake_cycle, []).append(on)

        instrumented = Program()
        existing_cycles = {bundle.cycle for bundle in program.bundles}
        pending = dict(insertions)
        for bundle in program.bundles:
            new_bundle = VLIWBundle(cycle=bundle.cycle)
            for instruction in bundle.instructions:
                new_bundle.add(instruction)
            for setpm in pending.pop(bundle.cycle, []):
                try:
                    new_bundle.add(setpm)
                except ValueError:
                    # Misc slot already taken this cycle: issue one cycle later.
                    pending.setdefault(bundle.cycle + 1, []).append(setpm)
            instrumented.append(new_bundle)
        # Any remaining insertions fall on cycles without an existing bundle.
        extra_cycles = sorted(cycle for cycle in pending if cycle not in existing_cycles)
        bundles = instrumented.bundles
        for cycle in extra_cycles:
            bundle = VLIWBundle(cycle=cycle)
            for setpm in pending[cycle][:1]:
                bundle.add(setpm)
            bundles.append(bundle)
        bundles.sort(key=lambda b: b.cycle)
        result = Program()
        last = -1
        for bundle in bundles:
            if bundle.cycle <= last:
                continue
            result.append(bundle)
            last = bundle.cycle
        return result, plan


def instrument_sram_regions(
    allocator: SramAllocator,
    allocations: list[BufferAllocation],
    total_instructions: int,
) -> SetpmPlan:
    """Plan SRAM ``setpm`` instructions from buffer lifetimes.

    The compiler powers off the SRAM region above the peak live address
    for the whole program, and switches segments off outside their
    buffers' lifetimes.  Following the paper's observation, ``setpm`` for
    SRAM only needs to be issued when the capacity demand changes
    (operator boundaries), so the plan contains one off/on pair per
    contiguous allocated region.
    """
    plan = SetpmPlan()
    if not allocations:
        # The whole SRAM can be turned off for this program.
        off = SetpmInstruction(
            target=Component.SRAM,
            mode=PowerState.OFF,
            address_range=(0, allocator.capacity),
        )
        plan.power_off_points.append((0, off))
        return plan
    peak = allocator.peak_usage_bytes(allocations)
    if peak < allocator.capacity:
        off = SetpmInstruction(
            target=Component.SRAM,
            mode=PowerState.OFF,
            address_range=(peak, allocator.capacity),
        )
        plan.power_off_points.append((0, off))
        on = SetpmInstruction(
            target=Component.SRAM,
            mode=PowerState.AUTO,
            address_range=(peak, allocator.capacity),
        )
        plan.power_on_points.append((max(0, total_instructions - 1), on))
    return plan


__all__ = ["InstrumentationPass", "SetpmPlan", "instrument_sram_regions"]
