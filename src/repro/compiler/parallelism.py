"""Parallelism configuration search.

The paper's SLO study (§3 and Table 4) sweeps "all possible NPU pod
configurations (NPU version, number of chips, data/tensor/pipeline
parallelisms, batch size)" and picks the most energy-efficient
SLO-compliant configuration per workload.  This module enumerates and
validates those configurations; the actual sweep is driven from
:mod:`repro.core.slo`.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.hardware.chips import NPUChipSpec
from repro.workloads.base import ParallelismConfig
from repro.workloads.registry import WorkloadSpec


def divisors(value: int) -> list[int]:
    """All positive divisors of ``value`` in ascending order."""
    if value < 1:
        raise ValueError("value must be positive")
    small, large = [], []
    for candidate in range(1, int(math.isqrt(value)) + 1):
        if value % candidate == 0:
            small.append(candidate)
            if candidate != value // candidate:
                large.append(value // candidate)
    return small + large[::-1]


def enumerate_parallelism(
    num_chips: int,
    max_tensor: int = 8,
    max_pipeline: int = 16,
) -> Iterator[ParallelismConfig]:
    """Yield every (data, tensor, pipeline) factorization of ``num_chips``."""
    for tensor in divisors(num_chips):
        if tensor > max_tensor:
            continue
        remaining = num_chips // tensor
        for pipeline in divisors(remaining):
            if pipeline > max_pipeline:
                continue
            data = remaining // pipeline
            yield ParallelismConfig(data=data, tensor=tensor, pipeline=pipeline)


def valid_parallelism(
    spec: WorkloadSpec,
    parallelism: ParallelismConfig,
    chip: NPUChipSpec,
    batch_size: int,
) -> bool:
    """Whether a configuration fits in HBM and divides the batch sensibly."""
    if parallelism.data > batch_size:
        return False
    footprint = spec.memory_per_chip(parallelism, batch_size)
    return footprint <= chip.hbm.capacity_bytes


def best_parallelism(
    spec: WorkloadSpec,
    num_chips: int,
    chip: NPUChipSpec,
    batch_size: int,
) -> ParallelismConfig | None:
    """Pick a reasonable parallelism for ``num_chips`` (least sharding that fits).

    Among valid configurations the one with the smallest tensor and
    pipeline degrees is preferred (least communication), matching the
    heuristic in :func:`repro.workloads.registry.llm_parallelism`.
    """
    candidates = [
        candidate
        for candidate in enumerate_parallelism(num_chips)
        if valid_parallelism(spec, candidate, chip, batch_size)
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda c: (c.tensor * c.pipeline, c.pipeline, c.tensor))


__all__ = [
    "best_parallelism",
    "divisors",
    "enumerate_parallelism",
    "valid_parallelism",
]
