"""ML compiler passes for the NPU backend.

The paper integrates its power-management support into the device
backend of an ML compiler (§4.3): after instruction scheduling and SRAM
allocation, a *component idleness analysis* pass extracts idle intervals
and a *setpm instrumentation* pass inserts power-management
instructions.  This package implements that pipeline over the operator
IR defined in :mod:`repro.workloads.base`:

* :mod:`repro.compiler.tiling`        — tile-size selection and SRAM demand.
* :mod:`repro.compiler.fusion`        — operator fusion.
* :mod:`repro.compiler.parallelism`   — pod partitioning search.
* :mod:`repro.compiler.allocation`    — SRAM buffer allocation and lifetimes.
* :mod:`repro.compiler.scheduling`    — tile-level VLIW instruction traces.
* :mod:`repro.compiler.idleness`      — component idleness analysis.
* :mod:`repro.compiler.instrumentation` — ``setpm`` insertion.
"""

from repro.compiler.tiling import TileInfo, TilingPass
from repro.compiler.fusion import FusionPass
from repro.compiler.parallelism import enumerate_parallelism, valid_parallelism
from repro.compiler.allocation import BufferAllocation, SramAllocator
from repro.compiler.idleness import IdlenessAnalysis, IdleInterval
from repro.compiler.instrumentation import InstrumentationPass, SetpmPlan

__all__ = [
    "BufferAllocation",
    "FusionPass",
    "IdleInterval",
    "IdlenessAnalysis",
    "InstrumentationPass",
    "SetpmPlan",
    "SramAllocator",
    "TileInfo",
    "TilingPass",
    "enumerate_parallelism",
    "valid_parallelism",
]
