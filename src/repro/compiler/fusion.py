"""Operator fusion pass.

Consecutive small operators are fused so their intermediate tensors stay
in SRAM, eliminating round trips to HBM.  This mirrors the common ML
compiler optimization (XLA/TVM style) that the paper's simulator
frontend applies; the SRAM-demand study in §3 explicitly fuses "as many
consecutive operators as possible when they are small enough to fit
entirely into the 128 MB SRAM".

The pass has two implementations that produce bit-identical fused
graphs and group boundaries:

* :meth:`FusionPass.run` — the object-path rewrite loop over
  :class:`~repro.workloads.base.Operator` objects (the reference
  oracle);
* :meth:`FusionPass.run_table` — a vectorized rewrite of a
  :class:`~repro.workloads.table.GraphTable` with masked array ops (the
  columnar compiler frontend): the fuse mask, the HBM read/write
  reductions and the group boundaries are each one array expression.

SRAM demands are returned explicitly (aligned with the operators /
rows) rather than stashed on operator objects, so reusing a pass —
or an operator — across runs can never serve stale state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.tiling import TilingPass
from repro.hardware.chips import NPUChipSpec
from repro.workloads.base import Operator, OperatorGraph, OpKind
from repro.workloads.table import KIND_CODE, GraphTable


@dataclass
class FusionGroup:
    """A maximal run of operators fused into a single kernel.

    ``demands`` holds the per-operator SRAM demand (bytes) the pass
    computed while deciding the group's boundaries, aligned with
    ``operators`` — an explicit result rather than attribute-stashed
    state, so groups stay valid however operators are reused.
    """

    operators: list[Operator] = field(default_factory=list)
    demands: list[float] = field(default_factory=list)

    @property
    def name(self) -> str:
        return "+".join(op.name for op in self.operators)

    @property
    def sram_demand_bytes(self) -> float:
        return sum(self.demands)


@dataclass(frozen=True)
class TableFusionResult:
    """Vectorized fusion output: the rewritten table plus group structure.

    ``group_id`` maps each (pre- and post-fusion, the boundaries are
    positional) operator row to its fusion group in program order;
    ``demands`` is the per-row SRAM demand the fuse decisions used.
    """

    table: GraphTable
    group_id: np.ndarray
    demands: np.ndarray

    @property
    def num_groups(self) -> int:
        if self.group_id.size == 0:
            return 0
        return int(self.group_id[-1]) + 1


_FUSABLE_KIND_CODES = tuple(
    KIND_CODE[kind] for kind in (OpKind.ELEMENTWISE, OpKind.SOFTMAX, OpKind.LAYERNORM)
)


class FusionPass:
    """Fuses eligible elementwise consumers into their producers.

    The pass operates on the operator list in program order.  A fusable
    elementwise/softmax/layernorm operator whose working set fits in the
    SRAM together with its producer is merged: its HBM read traffic for
    the producer's output and the producer's HBM write traffic for that
    intermediate are removed.
    """

    _FUSABLE_KINDS = (OpKind.ELEMENTWISE, OpKind.SOFTMAX, OpKind.LAYERNORM)

    def __init__(self, chip: NPUChipSpec):
        self.chip = chip
        self.tiling = TilingPass(chip)

    def operator_demands(self, operators: list[Operator]) -> list[float]:
        """Per-operator SRAM demands, aligned with ``operators``.

        One tiling per operator; vectorized in a single batch when the
        columnar fast path is enabled (bit-identical either way).  The
        demands are *returned*, never cached on the pass or the
        operators, so reuse across runs cannot alias.
        """
        # Imported lazily: the columnar module reaches this one through
        # the engine at import time.
        from repro.simulator import columnar

        if columnar.fast_path_enabled() and len(operators) > 1:
            return self.tiling.operator_demands(operators).tolist()
        return [self.tiling.tile(op).sram_demand_bytes for op in operators]

    def run(self, graph: OperatorGraph) -> tuple[OperatorGraph, list[FusionGroup]]:
        """Apply fusion, returning the rewritten graph and fusion groups.

        The original graph is not modified.
        """
        demands = self.operator_demands(graph.operators)
        sram_bytes = self.chip.sram_bytes
        fused_ops: list[Operator] = []
        groups: list[FusionGroup] = []
        current = FusionGroup()

        previous: Operator | None = None
        previous_demand = 0.0
        for op, demand in zip(graph.operators, demands):
            fusable = (
                previous is not None
                and op.kind in self._FUSABLE_KINDS
                and op.fusable
                and op.count == previous.count
                and previous_demand + demand <= sram_bytes
            )
            if fusable:
                # The intermediate tensor stays in SRAM: drop the consumer's
                # read of it and the producer's write of it.
                rewritten = Operator(
                    name=op.name,
                    kind=op.kind,
                    sa_flops=op.sa_flops,
                    vu_flops=op.vu_flops,
                    hbm_read_bytes=max(0.0, op.hbm_read_bytes - previous.hbm_write_bytes),
                    hbm_write_bytes=op.hbm_write_bytes,
                    ici_bytes=op.ici_bytes,
                    collective=op.collective,
                    dims=op.dims,
                    count=op.count,
                    fusable=op.fusable,
                    dtype_bytes=op.dtype_bytes,
                )
                previous_rewritten = fused_ops[-1]
                fused_ops[-1] = Operator(
                    name=previous_rewritten.name,
                    kind=previous_rewritten.kind,
                    sa_flops=previous_rewritten.sa_flops,
                    vu_flops=previous_rewritten.vu_flops,
                    hbm_read_bytes=previous_rewritten.hbm_read_bytes,
                    hbm_write_bytes=max(
                        0.0, previous_rewritten.hbm_write_bytes - op.hbm_read_bytes
                    ),
                    ici_bytes=previous_rewritten.ici_bytes,
                    collective=previous_rewritten.collective,
                    dims=previous_rewritten.dims,
                    count=previous_rewritten.count,
                    fusable=previous_rewritten.fusable,
                    dtype_bytes=previous_rewritten.dtype_bytes,
                )
                fused_ops.append(rewritten)
                current.operators.append(op)
                current.demands.append(demand)
                previous = op
                previous_demand = demand
                continue
            if current.operators:
                groups.append(current)
            current = FusionGroup(operators=[op], demands=[demand])
            fused_ops.append(op)
            previous = op
            previous_demand = demand
        if current.operators:
            groups.append(current)

        fused_graph = OperatorGraph(
            name=graph.name,
            phase=graph.phase,
            operators=fused_ops,
            parallelism=graph.parallelism,
            iteration_unit=graph.iteration_unit,
            work_per_iteration=graph.work_per_iteration,
            model_name=graph.model_name,
            batch_size=graph.batch_size,
        )
        return fused_graph, groups

    # ------------------------------------------------------------------ #
    # Vectorized rewrite (columnar compiler frontend)
    # ------------------------------------------------------------------ #
    def run_table(self, table: GraphTable) -> TableFusionResult:
        """Vectorized :meth:`run` over a :class:`GraphTable`.

        The fuse decision and both traffic rewrites only consult
        *original* neighbor columns (exactly like the object loop, whose
        ``previous`` variable always holds the unrewritten operator), so
        the whole rewrite is three masked array expressions.
        """
        n = table.n_ops
        if n == 0:
            return TableFusionResult(
                table=table,
                group_id=np.zeros(0, dtype=np.int64),
                demands=np.zeros(0, dtype=np.float64),
            )
        demands = self.tiling.demand_arrays(
            dims_m=table.dims_m,
            dims_k=table.dims_k,
            dims_n=table.dims_n,
            has_dims=table.has_dims,
            uses_sa=table.uses_sa,
            is_collective=table.is_collective,
            dtype_bytes=table.dtype_bytes,
            hbm_read=table.hbm_read_bytes,
        )
        kind = table.kind
        fusable_kind = kind == _FUSABLE_KIND_CODES[0]
        for code in _FUSABLE_KIND_CODES[1:]:
            fusable_kind = fusable_kind | (kind == code)
        # fused[i]: row i is merged into its predecessor.
        fused = np.zeros(n, dtype=bool)
        fused[1:] = (
            fusable_kind[1:]
            & table.fusable[1:]
            & (table.count[1:] == table.count[:-1])
            & (demands[:-1] + demands[1:] <= self.chip.sram_bytes)
        )
        read = table.hbm_read_bytes
        write = table.hbm_write_bytes
        new_read = read
        new_write = write
        if bool(fused.any()):
            prev_write = np.empty_like(write)
            prev_write[0] = 0.0
            prev_write[1:] = write[:-1]
            new_read = np.where(fused, np.maximum(0.0, read - prev_write), read)
            # producer[i]: row i+1 fused into row i.
            producer = np.zeros(n, dtype=bool)
            producer[:-1] = fused[1:]
            next_read = np.empty_like(read)
            next_read[-1] = 0.0
            next_read[:-1] = read[1:]
            new_write = np.where(
                producer, np.maximum(0.0, write - next_read), write
            )
        group_id = np.cumsum(~fused) - 1
        fused_table = table.replace(
            hbm_read_bytes=new_read, hbm_write_bytes=new_write
        )
        return TableFusionResult(
            table=fused_table, group_id=group_id, demands=demands
        )


__all__ = ["FusionGroup", "FusionPass", "TableFusionResult"]
