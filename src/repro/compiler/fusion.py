"""Operator fusion pass.

Consecutive small operators are fused so their intermediate tensors stay
in SRAM, eliminating round trips to HBM.  This mirrors the common ML
compiler optimization (XLA/TVM style) that the paper's simulator
frontend applies; the SRAM-demand study in §3 explicitly fuses "as many
consecutive operators as possible when they are small enough to fit
entirely into the 128 MB SRAM".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.tiling import TilingPass
from repro.hardware.chips import NPUChipSpec
from repro.workloads.base import Operator, OperatorGraph, OpKind


@dataclass
class FusionGroup:
    """A maximal run of operators fused into a single kernel."""

    operators: list[Operator] = field(default_factory=list)

    @property
    def name(self) -> str:
        return "+".join(op.name for op in self.operators)

    @property
    def sram_demand_bytes(self) -> float:
        return sum(getattr(op, "_fused_demand", 0.0) for op in self.operators)


class FusionPass:
    """Fuses eligible elementwise consumers into their producers.

    The pass operates on the operator list in program order.  A fusable
    elementwise/softmax/layernorm operator whose working set fits in the
    SRAM together with its producer is merged: its HBM read traffic for
    the producer's output and the producer's HBM write traffic for that
    intermediate are removed.
    """

    _FUSABLE_KINDS = (OpKind.ELEMENTWISE, OpKind.SOFTMAX, OpKind.LAYERNORM)

    def __init__(self, chip: NPUChipSpec):
        self.chip = chip
        self.tiling = TilingPass(chip)
        # id(op) -> demand, reset at the start of every run().
        self._demand_cache: dict[int, float] = {}

    def _sram_demand(self, op: Operator) -> float:
        """Memoized per-operator SRAM demand (one tiling per operator)."""
        key = id(op)
        demand = self._demand_cache.get(key)
        if demand is None:
            demand = self.tiling.tile(op).sram_demand_bytes
            self._demand_cache[key] = demand
        return demand

    def _fits_in_sram(self, producer: Operator, consumer: Operator) -> bool:
        demand = self._sram_demand(producer) + self._sram_demand(consumer)
        return demand <= self.chip.sram_bytes

    def run(self, graph: OperatorGraph) -> tuple[OperatorGraph, list[FusionGroup]]:
        """Apply fusion, returning the rewritten graph and fusion groups.

        The original graph is not modified.
        """
        # Fresh per-run cache: operator ids are only stable within one
        # run() invocation, and a pass instance may be reused.
        self._demand_cache = {}
        # Size every fusion candidate in one vectorized batch (imported
        # lazily: the columnar module reaches this one through the
        # engine at import time).
        from repro.simulator import columnar

        if columnar.fast_path_enabled() and len(graph.operators) > 1:
            demands = columnar.batch_sram_demands(
                graph.operators, self.chip, self.tiling
            )
            self._demand_cache = {
                id(op): demand
                for op, demand in zip(graph.operators, demands.tolist())
            }
        fused_ops: list[Operator] = []
        groups: list[FusionGroup] = []
        current = FusionGroup()

        previous: Operator | None = None
        for op in graph.operators:
            fusable = (
                previous is not None
                and op.kind in self._FUSABLE_KINDS
                and op.fusable
                and op.count == previous.count
                and self._fits_in_sram(previous, op)
            )
            if fusable:
                # The intermediate tensor stays in SRAM: drop the consumer's
                # read of it and the producer's write of it.
                rewritten = Operator(
                    name=op.name,
                    kind=op.kind,
                    sa_flops=op.sa_flops,
                    vu_flops=op.vu_flops,
                    hbm_read_bytes=max(0.0, op.hbm_read_bytes - previous.hbm_write_bytes),
                    hbm_write_bytes=op.hbm_write_bytes,
                    ici_bytes=op.ici_bytes,
                    collective=op.collective,
                    dims=op.dims,
                    count=op.count,
                    fusable=op.fusable,
                    dtype_bytes=op.dtype_bytes,
                )
                previous_rewritten = fused_ops[-1]
                fused_ops[-1] = Operator(
                    name=previous_rewritten.name,
                    kind=previous_rewritten.kind,
                    sa_flops=previous_rewritten.sa_flops,
                    vu_flops=previous_rewritten.vu_flops,
                    hbm_read_bytes=previous_rewritten.hbm_read_bytes,
                    hbm_write_bytes=max(
                        0.0, previous_rewritten.hbm_write_bytes - op.hbm_read_bytes
                    ),
                    ici_bytes=previous_rewritten.ici_bytes,
                    collective=previous_rewritten.collective,
                    dims=previous_rewritten.dims,
                    count=previous_rewritten.count,
                    fusable=previous_rewritten.fusable,
                    dtype_bytes=previous_rewritten.dtype_bytes,
                )
                fused_ops.append(rewritten)
                current.operators.append(op)
                previous = op
                continue
            if current.operators:
                groups.append(current)
            current = FusionGroup(operators=[op])
            fused_ops.append(op)
            previous = op
        if current.operators:
            groups.append(current)

        fused_graph = OperatorGraph(
            name=graph.name,
            phase=graph.phase,
            operators=fused_ops,
            parallelism=graph.parallelism,
            iteration_unit=graph.iteration_unit,
            work_per_iteration=graph.work_per_iteration,
            model_name=graph.model_name,
            batch_size=graph.batch_size,
        )
        return fused_graph, groups


__all__ = ["FusionGroup", "FusionPass"]
