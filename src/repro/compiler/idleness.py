"""Component idleness analysis (compiler pass, §4.3 of the paper).

The pass extracts, from a statically scheduled program, the idle
intervals of each functional unit: the distance in cycles between two
consecutive instructions in the same VLIW slot.  If a DMA operation
falls between two VU instructions, the paper treats the distance as
infinite (the DMA latency is always much longer than the VU break-even
time), which we model with ``math.inf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hardware.components import Component
from repro.isa.instructions import Opcode, Program, SlotKind

_SLOT_TO_COMPONENT = {
    SlotKind.SA: Component.SA,
    SlotKind.VU: Component.VU,
    SlotKind.DMA: Component.HBM,
    SlotKind.ICI: Component.ICI,
}


@dataclass(frozen=True)
class IdleInterval:
    """An idle interval of one functional unit."""

    component: Component
    unit_index: int
    start_cycle: int
    end_cycle: int
    effective_cycles: float  # may be math.inf when a DMA guarantees slack

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


@dataclass
class IdlenessAnalysis:
    """Result of the idleness analysis pass over one program."""

    intervals: list[IdleInterval] = field(default_factory=list)
    total_cycles: int = 0
    units: dict[Component, int] = field(default_factory=dict)

    def for_component(self, component: Component) -> list[IdleInterval]:
        return [iv for iv in self.intervals if iv.component is component]

    def idle_cycles(self, component: Component) -> int:
        return sum(iv.cycles for iv in self.for_component(component))

    def idle_fraction(self, component: Component) -> float:
        """Idle unit-cycles over total unit-cycles, averaged over the
        functional units of this component that appear in the program."""
        num_units = self.units.get(component, 1)
        if self.total_cycles == 0 or num_units == 0:
            return 0.0
        return self.idle_cycles(component) / (self.total_cycles * num_units)


class IdlenessPass:
    """Runs the idleness analysis on a scheduled program."""

    def __init__(self, treat_dma_as_infinite: bool = True):
        self.treat_dma_as_infinite = treat_dma_as_infinite

    def run(self, program: Program) -> IdlenessAnalysis:
        """Analyze ``program`` and return per-unit idle intervals."""
        analysis = IdlenessAnalysis(total_cycles=program.num_cycles)
        busy: dict[tuple[Component, int], list[tuple[int, int]]] = {}
        dma_cycles: list[int] = []
        for bundle in program.bundles:
            for instruction in bundle.instructions:
                if instruction.opcode in (Opcode.SETPM, Opcode.NOP):
                    continue
                component = _SLOT_TO_COMPONENT.get(instruction.slot)
                if component is None:
                    continue
                key = (component, instruction.unit_index)
                busy.setdefault(key, []).append(
                    (bundle.cycle, bundle.cycle + instruction.duration_cycles)
                )
                if instruction.slot is SlotKind.DMA:
                    dma_cycles.append(bundle.cycle)
        for component in set(component for component, _ in busy):
            analysis.units[component] = len(
                {unit for comp, unit in busy if comp is component}
            )
        for (component, unit_index), spans in busy.items():
            spans.sort()
            previous_end = 0
            for start, end in spans:
                if start > previous_end:
                    effective: float = start - previous_end
                    if (
                        self.treat_dma_as_infinite
                        and component is Component.VU
                        and any(previous_end <= c < start for c in dma_cycles)
                    ):
                        effective = math.inf
                    analysis.intervals.append(
                        IdleInterval(
                            component=component,
                            unit_index=unit_index,
                            start_cycle=previous_end,
                            end_cycle=start,
                            effective_cycles=effective,
                        )
                    )
                previous_end = max(previous_end, end)
            if previous_end < analysis.total_cycles:
                analysis.intervals.append(
                    IdleInterval(
                        component=component,
                        unit_index=unit_index,
                        start_cycle=previous_end,
                        end_cycle=analysis.total_cycles,
                        effective_cycles=analysis.total_cycles - previous_end,
                    )
                )
        analysis.intervals.sort(key=lambda iv: (iv.component.value, iv.unit_index, iv.start_cycle))
        return analysis


__all__ = ["IdleInterval", "IdlenessAnalysis", "IdlenessPass"]
