"""Command-line interface for the ReGate reproduction.

Usage::

    python -m repro list
    python -m repro chips
    python -m repro simulate llama3-70b-prefill --chip NPU-D
    python -m repro simulate dlrm-m --chip NPU-E --num-chips 16 --policy ReGate-Full
    python -m repro sweep -w llama3-8b-prefill -w dlrm-s --chip NPU-C --chip NPU-D \
        --parallel 4 --cache sweep-cache.json --csv sweep.csv

``simulate`` is a thin wrapper over
:func:`repro.core.regate.simulate_workload`; ``sweep`` drives the
:mod:`repro.experiments` runner over a workload x chip x policy grid
with optional multiprocessing and an on-disk result cache.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table, percentage
from repro.core.config import SimulationConfig
from repro.core.regate import simulate_workload
from repro.gating.report import PolicyName
from repro.hardware.chips import chips_in_order, get_chip
from repro.hardware.components import Component
from repro.hardware.power import ChipPowerModel
from repro.workloads.registry import get_workload, list_workloads


def _cmd_list(_: argparse.Namespace) -> str:
    rows = []
    for name in list_workloads():
        spec = get_workload(name)
        rows.append([name, spec.family, spec.default_num_chips, spec.default_batch_size])
    return format_table(
        ["workload", "family", "default #chips", "default batch"],
        rows,
        title="Registered workloads (Table 1)",
    )


def _cmd_chips(_: argparse.Namespace) -> str:
    rows = []
    for chip in chips_in_order():
        power = ChipPowerModel(chip)
        rows.append(
            [
                chip.name,
                chip.technology_nm,
                round(chip.peak_sa_flops / 1e12, 1),
                chip.sram_mb,
                chip.hbm.capacity_gb,
                round(power.total_static_w, 1),
                round(power.tdp_w, 1),
            ]
        )
    return format_table(
        ["NPU", "node(nm)", "TFLOPS", "SRAM(MB)", "HBM(GB)", "static(W)", "TDP(W)"],
        rows,
        title="NPU generations (Table 2)",
    )


def _parse_policies(names: list[str] | None) -> tuple[PolicyName, ...]:
    if not names:
        return SimulationConfig().policies
    try:
        selected = [PolicyName.parse(name) for name in names]
    except KeyError as error:
        raise SystemExit(error.args[0])
    if PolicyName.NOPG not in selected:
        selected.insert(0, PolicyName.NOPG)
    return tuple(selected)


def _cmd_simulate(args: argparse.Namespace) -> str:
    config = SimulationConfig(
        chip=args.chip,
        num_chips=args.num_chips,
        batch_size=args.batch_size,
        policies=_parse_policies(args.policy),
    )
    result = simulate_workload(args.workload, config)
    nopg = result.report(PolicyName.NOPG)
    lines = [
        f"workload      : {result.workload}",
        f"chip          : {result.chip.name} x{result.num_chips} "
        f"({result.parallelism.describe()})",
        f"batch size    : {result.batch_size}",
        f"iteration time: {nopg.total_time_s * 1e3:.3f} ms",
        f"static share  : {percentage(nopg.static_fraction())}",
        "",
    ]
    rows = []
    for policy in result.reports:
        report = result.report(policy)
        rows.append(
            [
                policy.value,
                f"{report.total_energy_j:.2f}",
                percentage(result.energy_savings(policy)),
                f"{report.average_power_w:.1f}",
                percentage(result.performance_overhead(policy), 3),
            ]
        )
    lines.append(
        format_table(
            ["design", "energy (J/chip/iter)", "savings", "avg power (W)", "overhead"],
            rows,
        )
    )
    if args.utilization:
        lines.append("")
        util_rows = [
            [c.pretty, percentage(result.temporal_utilization(c))]
            for c in Component.gateable()
        ]
        util_rows.append(["SA (spatial)", percentage(result.sa_spatial_utilization())])
        lines.append(format_table(["component", "utilization"], util_rows))
    return "\n".join(lines)


def _parse_shard(text: str) -> tuple[int, int]:
    """Parse ``--shard I/N`` (0-based: shards of a 3-way plan are 0/3..2/3)."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(f"--shard expects I/N (e.g. 0/3), got {text!r}")
    if count < 1 or not 0 <= index < count:
        raise SystemExit(
            f"--shard index must satisfy 0 <= I < N, got {index}/{count}"
        )
    return index, count


def _spec_from_args(args: argparse.Namespace):
    """Build the SweepSpec described by the shared grid flags."""
    from repro.experiments import SweepSpec

    spec_kwargs = dict(
        workloads=tuple(args.workload),
        chips=tuple(args.chip or ["NPU-D"]),
        batch_sizes=tuple(args.batch_size) if args.batch_size else (None,),
        num_chips=tuple(args.num_chips) if args.num_chips else (None,),
    )
    if args.policy:
        # SweepSpec resolves policy names itself and always prepends NoPG.
        spec_kwargs["policies"] = tuple(args.policy)
    try:
        return SweepSpec(**spec_kwargs)
    except KeyError as error:
        # Same message/exit behavior as `simulate` with an unknown policy.
        raise SystemExit(error.args[0])


def _cmd_sweep(args: argparse.Namespace) -> str:
    from repro.experiments import ShardRunner, SimulationCache, SweepRunner

    spec = _spec_from_args(args)
    cache = (
        SimulationCache(args.cache, shared_dir=args.shared_cache)
        if args.cache or args.shared_cache
        else None
    )
    lines = [f"sweep grid    : {spec.describe()}"]
    if args.shard_dir and not args.shard:
        raise SystemExit("--shard-dir requires --shard I/N")
    if args.shard:
        index, count = _parse_shard(args.shard)
        if not args.shard_dir:
            raise SystemExit("--shard requires --shard-dir PATH")
        runner = ShardRunner(spec, count, cache=cache, max_workers=args.parallel)
        artifact = runner.run(index)
        path = artifact.write(args.shard_dir)
        result = artifact.result()
        lines += [
            f"shard         : {index}/{count} "
            f"({len(runner.plan[index].point_indices)} of "
            f"{spec.num_points} points; plan {runner.plan.digest})",
            f"shard written : {path}",
            f"result rows   : {len(result)}",
        ]
    else:
        runner = SweepRunner(spec, cache=cache, max_workers=args.parallel)
        result = runner.run()
        lines.append(f"result rows   : {len(result)}")
    if cache is not None:
        stats = cache.stats()
        store = ", ".join(
            text for text in (args.cache, args.shared_cache) if text
        )
        lines.append(
            f"cache         : {stats['row_hits']} hits / {stats['row_misses']} misses "
            f"(sweep points; {store})"
        )
    if args.csv:
        # Streamed row by row: very large grids export in O(1) memory.
        result.write_csv(args.csv)
        lines.append(f"csv written   : {args.csv}")
    if args.json:
        result.to_json(args.json)
        lines.append(f"json written  : {args.json}")
    lines.append("")
    rows = [
        [
            row["workload"],
            row["chip"],
            row["policy"],
            f"{row['total_energy_j']:.3f}",
            percentage(row["savings_vs_nopg"]),
            f"{row['average_power_w']:.1f}",
            percentage(row["overhead_vs_nopg"], 3),
        ]
        for row in result
    ]
    lines.append(
        format_table(
            ["workload", "NPU", "design", "energy (J/chip/iter)", "savings",
             "avg power (W)", "overhead"],
            rows,
        )
    )
    return "\n".join(lines)


def _cmd_merge_shards(args: argparse.Namespace) -> str:
    from repro.experiments.sharding import (
        ShardError,
        merge_artifacts,
        read_artifacts,
    )

    try:
        # Lenient by default: a corrupt artifact from a crashed worker
        # is skipped (and listed below) instead of aborting the merge;
        # --strict restores abort-on-first-corrupt.
        artifacts, skipped = read_artifacts(args.paths, strict=args.strict)
        if not artifacts:
            raise ShardError("no readable shard artifacts to merge")
        merged = merge_artifacts(artifacts)
        missing = sorted(
            set(range(merged.shard_count)) - set(merged.shard_indices)
        )
        if args.output:
            # Partial merges are allowed when writing an artifact: the
            # combined artifact merges again later with the rest.  The
            # skipped-artifact list rides along in the manifest so
            # repair tooling / re-runs can consume it without having to
            # scrape this command's stderr.
            extra = (
                {
                    "skipped": [
                        {"path": str(skipped_path), "reason": reason}
                        for skipped_path, reason in skipped
                    ]
                }
                if skipped
                else None
            )
            path = merged.write(args.output, extra_manifest=extra)
        else:
            if missing:
                raise ShardError(
                    f"missing shard(s) {missing} of {merged.shard_count}; "
                    "pass every artifact (or merge partially via "
                    "merge_artifacts/`repro merge-shards --output`)"
                )
            path = None
    except ShardError as error:
        raise SystemExit(f"error: {error}")
    result = merged.result()
    covered = len(merged.shard_indices)
    lines = [
        f"spec digest   : {merged.spec_digest}",
        f"shards merged : {covered}/{merged.shard_count}",
        f"result rows   : {len(result)} ({len(merged.points)} points)",
    ]
    if missing:
        # Name the holes so a partial-run operator knows what to
        # re-launch, instead of diffing covered/N by hand.
        lines.append(
            f"missing shards: {missing} (re-run these, then re-merge)"
        )
    for skipped_path, reason in skipped:
        lines.append(f"skipped       : {skipped_path} ({reason})")
    if skipped:
        lines.append(
            f"skipped total : {len(skipped)} unreadable artifact(s) "
            "(--strict aborts instead)"
        )
    if path is not None:
        lines.append(f"shard written : {path}")
    if args.csv:
        result.write_csv(args.csv)
        lines.append(f"csv written   : {args.csv}")
    if args.json:
        result.to_json(args.json)
        lines.append(f"json written  : {args.json}")
    return "\n".join(lines)


def _launch_backend(args: argparse.Namespace, injector) -> object | str:
    """The scheduler backend: a name for local ones, an instance for
    remote ones (which need hosts and the fault injector up front)."""
    from pathlib import Path

    from repro.experiments.remote import (
        LoopbackBackend,
        SshBackend,
        parse_hosts,
    )

    if args.backend not in ("ssh", "loopback"):
        if args.hosts or args.hosts_file:
            raise SystemExit(
                f"--hosts only applies to the ssh/loopback backends, "
                f"not {args.backend!r}"
            )
        return args.backend
    hosts: list[str] = []
    if args.hosts:
        hosts += parse_hosts(args.hosts)
    if args.hosts_file:
        try:
            hosts += parse_hosts(Path(args.hosts_file).read_text())
        except OSError as error:
            raise SystemExit(f"cannot read --hosts-file: {error}")
    common = dict(
        remote_root=args.remote_root,
        injector=injector,
        quarantine_after=args.quarantine_after,
    )
    if args.backend == "ssh":
        if not hosts:
            raise SystemExit(
                "the ssh backend needs --hosts user@host[,...] or --hosts-file"
            )
        return SshBackend(
            hosts,
            python=args.remote_python,
            pythonpath=args.remote_pythonpath,
            **common,
        )
    return LoopbackBackend(
        Path(args.dir) / "fleet",
        host_names=hosts or ("loop-a", "loop-b"),
        **common,
    )


def _cmd_launch(args: argparse.Namespace) -> str:
    from repro.experiments.scheduler import (
        FaultInjector,
        LaunchError,
        LaunchScheduler,
        RetryPolicy,
    )
    from repro.experiments.sharding import ShardError

    spec = _spec_from_args(args) if args.workload else None
    if spec is None and not args.resume:
        raise SystemExit(
            "launch needs a grid (-w/--workload ...) unless --resume "
            "restores one from the launch directory"
        )
    if args.shards is None and not args.resume:
        raise SystemExit("launch needs --shards N (or --resume)")
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        base_delay_s=args.base_delay,
    )
    try:
        injector = FaultInjector.from_env()
        scheduler = LaunchScheduler(
            args.dir,
            spec,
            args.shards,
            backend=_launch_backend(args, injector),
            max_workers=args.max_workers,
            retry=retry,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            shard_timeout=args.shard_timeout,
            speculate=not args.no_speculate,
            injector=injector,
            shared_cache=args.shared_cache,
            gc_max_age_days=args.gc_max_age_days,
            gc_max_bytes=args.gc_max_bytes,
            csv_path=args.csv,
            resume=args.resume,
            serve=args.serve,
            catalog=args.catalog,
        )
        report = scheduler.run()
    except (LaunchError, ShardError) as error:
        raise SystemExit(f"error: {error}")
    if not report.complete:
        # Print the summary ourselves, then exit with the partial code
        # (main() only prints on success/exit 0).
        print(report.describe())
        raise SystemExit(report.exit_code)
    return report.describe()


def _cmd_launch_status(args: argparse.Namespace) -> str:
    from repro.experiments.status import StatusError, fetch_status, render_status

    try:
        payload = fetch_status(args.url, timeout=args.timeout)
    except StatusError as error:
        raise SystemExit(f"error: {error}")
    if args.json:
        import json

        return json.dumps(payload, indent=2)
    return render_status(payload)


def _cmd_cache_gc(args: argparse.Namespace) -> str:
    from repro.experiments.cache import SharedCacheDir

    report = SharedCacheDir(args.dir).gc(
        max_age_days=args.max_age_days,
        max_bytes=args.max_bytes,
        dry_run=args.dry_run,
        # Auditing (--dry-run) always checks entry integrity; destructive
        # runs only pay the full read with an explicit --verify.
        verify=args.verify or args.dry_run,
    )
    lines = [report.describe()]
    if args.dry_run:
        for path, reason in report.removed:
            lines.append(f"  {path} ({reason})")
    return "\n".join(lines)


def _open_catalog(args: argparse.Namespace):
    from repro.experiments.catalog import CatalogError, ExperimentCatalog

    try:
        return ExperimentCatalog(args.db)
    except CatalogError as error:
        raise SystemExit(f"error: {error}")


def _cmd_catalog_list(args: argparse.Namespace) -> str:
    catalog = _open_catalog(args)
    entries = catalog.entries()
    summary = catalog.summary()
    lines = [
        f"catalog       : {catalog.path}",
        f"entries       : {summary['entries']} "
        f"(by status {summary['by_status'] or '{}'}; "
        f"by kind {summary['by_kind'] or '{}'})",
    ]
    lines += [entry.describe() for entry in entries]
    return "\n".join(lines)


def _cmd_catalog_query(args: argparse.Namespace) -> str:
    catalog = _open_catalog(args)
    entries = catalog.query(
        spec_digest=args.spec, status=args.status, kind=args.kind
    )
    if args.json:
        import json

        return json.dumps([entry.to_json() for entry in entries], indent=2)
    if not entries:
        return "no matching catalog entries"
    return "\n".join(entry.describe() for entry in entries)


def _cmd_catalog_verify(args: argparse.Namespace) -> str:
    catalog = _open_catalog(args)
    report = catalog.verify(spec_digest=args.spec)
    if report.flagged:
        # Like a partial launch: print the findings, then exit nonzero
        # so CI and scripts can gate on catalog health.
        print(report.describe())
        raise SystemExit(1)
    return report.describe()


def _cmd_catalog_repair(args: argparse.Namespace) -> str:
    catalog = _open_catalog(args)
    report = catalog.repair(spec_digest=args.spec)
    return report.describe()


def _cmd_catalog_gc(args: argparse.Namespace) -> str:
    catalog = _open_catalog(args)
    evicted = catalog.gc()
    lines = [f"evicted       : {len(evicted)} entr(ies) with no artifact on disk"]
    lines += [f"  {entry.path} ({entry.shard_key})" for entry in evicted]
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> str:
    import dataclasses

    from repro.serving import (
        Autoscaler,
        PodSpec,
        ServiceModel,
        ServingError,
        TraceError,
        carbon_table,
        curve_table,
        diurnal_trace,
        load_trace,
        poisson_trace,
        rollup_carbon,
        simulate_serving,
        utilization_curve,
        write_trace_csv,
    )
    from repro.serving.simulate import DEFAULT_LOAD_FACTORS

    try:
        if args.arrival == "trace" or args.trace:
            if not args.trace:
                raise SystemExit("--arrival trace needs --trace FILE")
            trace = load_trace(args.trace, args.workload or ())
        else:
            if not args.workload:
                raise SystemExit(
                    f"{args.arrival} arrivals need at least one -w/--workload"
                )
            rates: list[float] | float = args.rate or 10.0
            if args.arrival == "poisson":
                trace = poisson_trace(
                    args.workload, rates, args.duration, seed=args.seed
                )
            else:
                trace = diurnal_trace(
                    args.workload,
                    rates,
                    args.duration,
                    seed=args.seed,
                    period_s=args.period,
                    amplitude=args.amplitude,
                )
    except TraceError as error:
        raise SystemExit(f"error: {error}")

    model = ServiceModel(policies=_parse_policies(args.policy))
    scaler = Autoscaler(
        model,
        chip=args.chip,
        target_utilization=args.target_utilization,
        max_replicas=args.max_replicas,
    )
    try:
        if args.replicas is not None:
            # Manual fleet: one pod shape for every workload, replica
            # count forced (the demand numbers stay for context).
            plans = {
                name: dataclasses.replace(
                    scaler.size(
                        trace,
                        name,
                        pod=PodSpec(
                            workload=name, chip=args.chip, max_batch=args.max_batch
                        ),
                    ),
                    replicas=args.replicas,
                )
                for name in trace.workloads
            }
        else:
            plans = scaler.plan_fleet(trace)
        report = simulate_serving(trace, plans, model, max_wait_s=args.max_wait)
    except (ServingError, TraceError) as error:
        raise SystemExit(f"error: {error}")

    counts = trace.request_counts()
    lines = [
        f"trace         : {len(trace)} request(s) over "
        f"{trace.span_ns / 1e9:.3f}s "
        f"({', '.join(f'{name}: {count}' for name, count in counts.items()) or 'empty'})",
        "fleet         :",
    ]
    lines += [f"  {plan.describe()}" for plan in plans.values()]
    lines += ["", report.metrics_table()]

    payload = report.to_json()
    if args.curve:
        factors = tuple(args.load_factor) if args.load_factor else DEFAULT_LOAD_FACTORS
        try:
            points = utilization_curve(
                trace, plans, model, load_factors=factors, max_wait_s=args.max_wait
            )
        except TraceError as error:
            raise SystemExit(f"error: {error}")
        lines += ["", curve_table(points)]
        payload["curve"] = [
            {
                "load_factor": point.load_factor,
                "qps": point.qps,
                "utilization": point.utilization,
                "p99_latency_ms": point.p99_latency_ms,
                "savings": {k.value: v for k, v in point.savings.items()},
                "energy_per_request_j": {
                    k.value: v for k, v in point.energy_per_request_j.items()
                },
            }
            for point in points
        ]
    if args.carbon:
        rollup = rollup_carbon(report, model)
        lines += ["", carbon_table(rollup)]
        payload["carbon"] = rollup.to_json()
    if args.save_trace:
        write_trace_csv(trace, args.save_trace)
        lines.append(f"trace written : {args.save_trace}")
    if args.json:
        import json as _json
        from pathlib import Path as _Path

        _Path(args.json).write_text(_json.dumps(payload, indent=2))
        lines.append(f"json written  : {args.json}")
    return "\n".join(lines)


def _cmd_perf(args: argparse.Namespace) -> str:
    from repro.analysis.perf import (
        check_regression,
        compare_payloads,
        format_report,
        profile_benchmark,
        run_perf_suite,
        write_payload,
    )

    if args.profile:
        try:
            result, table, dump = profile_benchmark(
                args.profile,
                grid=args.grid,
                repeat=args.repeat,
                dump_path=f"perf-{args.profile}.prof",
                top=args.profile_top,
            )
        except KeyError as error:
            raise SystemExit(error.args[0])
        return (
            f"{result.name}: object {result.object_s * 1000:.2f} ms, "
            f"columnar {result.columnar_s * 1000:.2f} ms, "
            f"speedup {result.speedup:.2f}x\n"
            f"{table}"
            f"profile dump  : {dump}"
        )

    if args.compare:
        import json as _json
        from pathlib import Path as _Path

        old_path, new_path = args.compare
        old = _json.loads(_Path(old_path).read_text())
        new = _json.loads(_Path(new_path).read_text())
        report, failures = compare_payloads(old, new, tolerance=args.tolerance)
        if failures:
            print(report)
            raise SystemExit(
                f"performance regression vs {old_path}:\n  " + "\n  ".join(failures)
            )
        return (
            report
            + f"\nregression    : ok (within {args.tolerance:.0%} of {old_path})"
        )

    try:
        payload = run_perf_suite(grid=args.grid, repeat=args.repeat)
    except KeyError as error:
        raise SystemExit(error.args[0])
    lines = [format_report(payload)]
    if args.output:
        write_payload(payload, args.output)
        lines.append(f"\nbench written : {args.output}")
    if args.check:
        import json as _json
        from pathlib import Path as _Path

        baseline = _json.loads(_Path(args.check).read_text())
        failures = check_regression(payload, baseline, tolerance=args.tolerance)
        if failures:
            print("\n".join(lines))
            raise SystemExit(
                "performance regression vs "
                f"{args.check}:\n  " + "\n  ".join(failures)
            )
        lines.append(
            f"regression    : ok (within {args.tolerance:.0%} of {args.check})"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReGate reproduction: NPU power-gating simulation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered workloads").set_defaults(
        handler=_cmd_list
    )
    subparsers.add_parser("chips", help="list NPU generations").set_defaults(
        handler=_cmd_chips
    )

    simulate = subparsers.add_parser("simulate", help="simulate one workload")
    simulate.add_argument("workload", help="workload name (see `repro list`)")
    simulate.add_argument("--chip", default="NPU-D", help="NPU generation (default NPU-D)")
    simulate.add_argument("--num-chips", type=int, default=None, help="pod size override")
    simulate.add_argument("--batch-size", type=int, default=None, help="batch override")
    simulate.add_argument(
        "--policy",
        action="append",
        help="evaluate only these policies (repeatable); NoPG is always included",
    )
    simulate.add_argument(
        "--utilization", action="store_true", help="also print component utilization"
    )
    simulate.set_defaults(handler=_cmd_simulate)

    def add_grid_arguments(
        target: argparse.ArgumentParser, required: bool = True
    ) -> None:
        """The workload x chip x policy grid flags (sweep and launch)."""
        target.add_argument(
            "-w", "--workload", action="append", required=required,
            help="workload to sweep (repeatable)",
        )
        target.add_argument(
            "--chip", action="append",
            help="NPU generation to sweep (repeatable; default NPU-D)",
        )
        target.add_argument(
            "--batch-size", action="append", type=int,
            help="batch size grid point (repeatable; default: workload default)",
        )
        target.add_argument(
            "--num-chips", action="append", type=int,
            help="pod size grid point (repeatable; default: workload default)",
        )
        target.add_argument(
            "--policy", action="append",
            help="evaluate only these policies (repeatable); NoPG is always "
                 "included",
        )

    sweep = subparsers.add_parser(
        "sweep", help="run a cached workload x chip x policy parameter sweep"
    )
    add_grid_arguments(sweep)
    sweep.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="run points on N worker processes (default: serial)",
    )
    sweep.add_argument(
        "--cache", metavar="PATH",
        help="JSON cache file; a warm cache skips all simulation",
    )
    sweep.add_argument(
        "--shared-cache", metavar="DIR",
        help="cross-run shared cache directory (one file per entry, atomic "
             "renames); shards on a shared filesystem reuse each other's "
             "simulated profiles",
    )
    sweep.add_argument(
        "--shard", metavar="I/N",
        help="run only shard I of an N-way deterministic partition of the "
             "grid (0-based, e.g. 0/3) and write a .repro-shard artifact; "
             "merge with `repro merge-shards`",
    )
    sweep.add_argument(
        "--shard-dir", metavar="PATH",
        help="directory the shard artifact is written into (with --shard)",
    )
    sweep.add_argument("--csv", metavar="PATH", help="write the full table as CSV")
    sweep.add_argument("--json", metavar="PATH", help="write the full table as JSON")
    sweep.set_defaults(handler=_cmd_sweep)

    merge = subparsers.add_parser(
        "merge-shards",
        help="merge .repro-shard artifacts into one result (byte-identical "
             "to the monolithic sweep)",
    )
    merge.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="shard artifacts (or directories containing *.repro-shard)",
    )
    merge.add_argument(
        "--output", metavar="PATH",
        help="write a combined .repro-shard artifact instead of requiring "
             "full coverage (partial merges merge again later)",
    )
    merge.add_argument(
        "--strict", action="store_true",
        help="abort on the first unreadable artifact instead of skipping "
             "it with a warning",
    )
    merge.add_argument("--csv", metavar="PATH", help="write the merged table as CSV")
    merge.add_argument("--json", metavar="PATH", help="write the merged table as JSON")
    merge.set_defaults(handler=_cmd_merge_shards)

    launch = subparsers.add_parser(
        "launch",
        help="run a full sharded sweep through the fault-tolerant scheduler "
             "(retries, heartbeats, speculation, crash-safe resume)",
    )
    add_grid_arguments(launch, required=False)
    launch.add_argument(
        "--shards", type=int, metavar="N",
        help="shard count of the deterministic plan (restored from the "
             "launch directory with --resume)",
    )
    launch.add_argument(
        "--dir", required=True, metavar="PATH",
        help="launch directory (journal, landed shards, logs, partial merge)",
    )
    launch.add_argument(
        "--backend", choices=("process", "thread", "ssh", "loopback"),
        default="process",
        help="worker backend: one killable subprocess per shard attempt "
             "(default), in-process threads, a fleet of SSH hosts, or the "
             "hermetic loopback fleet (remote code path, local processes)",
    )
    launch.add_argument(
        "--hosts", metavar="H1[,H2...]",
        help="remote hosts for --backend ssh (user@host) or loopback "
             "(fake host names; default loop-a,loop-b)",
    )
    launch.add_argument(
        "--hosts-file", metavar="PATH",
        help="file of hosts, one per line ('#' comments); merged with --hosts",
    )
    launch.add_argument(
        "--remote-root", default=".repro-remote", metavar="PATH",
        help="staging root on the remote hosts (default .repro-remote, "
             "relative to the remote home)",
    )
    launch.add_argument(
        "--remote-python", default="python3", metavar="BIN",
        help="python executable on the ssh hosts (default python3)",
    )
    launch.add_argument(
        "--remote-pythonpath", default=None, metavar="PATH",
        help="PYTHONPATH exported to ssh workers (a remote checkout's src/ "
             "when repro is not installed there)",
    )
    launch.add_argument(
        "--quarantine-after", type=int, default=3, metavar="K",
        help="quarantine a host after K consecutive failed attempts; its "
             "shards rebalance onto surviving hosts (default 3)",
    )
    launch.add_argument(
        "--serve", metavar="[HOST]:PORT",
        help="serve live progress as JSON over HTTP while the launch runs "
             "(GET /status, /journal, /catalog with --catalog; read-only; "
             "host defaults to 127.0.0.1)",
    )
    launch.add_argument(
        "--max-workers", type=int, default=None, metavar="N",
        help="concurrent shard attempts (default: min(shards, cores, 8))",
    )
    launch.add_argument(
        "--max-attempts", type=int, default=6, metavar="N",
        help="retry budget per shard (default 6)",
    )
    launch.add_argument(
        "--base-delay", type=float, default=0.25, metavar="SECONDS",
        help="first retry backoff; doubles per failure, capped (default 0.25)",
    )
    launch.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="worker heartbeat period (default 1.0)",
    )
    launch.add_argument(
        "--heartbeat-timeout", type=float, default=30.0, metavar="SECONDS",
        help="declare a worker dead after this much heartbeat silence "
             "(default 30)",
    )
    launch.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock cap per shard attempt (default: none)",
    )
    launch.add_argument(
        "--no-speculate", action="store_true",
        help="disable straggler speculation (re-issuing the slowest shard "
             "once >80%% have landed)",
    )
    launch.add_argument(
        "--shared-cache", metavar="DIR",
        help="cross-run shared cache directory the workers read and write",
    )
    launch.add_argument(
        "--gc-max-age-days", type=float, default=None, metavar="DAYS",
        help="garbage-collect shared-cache entries older than this at "
             "teardown",
    )
    launch.add_argument(
        "--gc-max-bytes", type=int, default=None, metavar="BYTES",
        help="shrink the shared cache to this size at teardown (LRU)",
    )
    launch.add_argument(
        "--csv", metavar="PATH",
        help="write the merged table as CSV (byte-identical to the "
             "monolithic sweep when the launch completes)",
    )
    launch.add_argument(
        "--resume", action="store_true",
        help="continue a killed launch: restore landed shards from --dir "
             "and re-run only the rest",
    )
    launch.add_argument(
        "--catalog", metavar="PATH", default=None,
        help="cross-run experiment catalog (SQLite file, or a directory "
             "getting catalog.sqlite): register landed artifacts and adopt "
             "shards prior runs already computed instead of re-running them",
    )
    launch.set_defaults(handler=_cmd_launch)

    launch_status = subparsers.add_parser(
        "launch-status",
        help="render the live progress of a `repro launch --serve` run",
    )
    launch_status.add_argument(
        "url", metavar="URL",
        help="the progress endpoint, e.g. http://127.0.0.1:8765 "
             "(printed by the launch when --serve is active)",
    )
    launch_status.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="HTTP timeout (default 10)",
    )
    launch_status.add_argument(
        "--json", action="store_true",
        help="print the raw /status JSON instead of the rendered summary",
    )
    launch_status.set_defaults(handler=_cmd_launch_status)

    cache = subparsers.add_parser(
        "cache", help="manage the cross-run shared cache directory"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_gc = cache_sub.add_parser(
        "gc",
        help="evict shared-cache entries by age and/or total size "
             "(LRU by mtime; safe against concurrent runs)",
    )
    cache_gc.add_argument("dir", metavar="DIR", help="shared cache directory")
    cache_gc.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="drop entries older than this many days",
    )
    cache_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="drop least-recently-written entries until the cache fits",
    )
    cache_gc.add_argument(
        "--dry-run", action="store_true",
        help="list what would be removed without unlinking anything "
             "(also audits entry integrity and reports corrupt entries)",
    )
    cache_gc.add_argument(
        "--verify", action="store_true",
        help="read every entry and evict corrupt/unreadable ones too "
             "(always on with --dry-run)",
    )
    cache_gc.set_defaults(handler=_cmd_cache_gc)

    catalog = subparsers.add_parser(
        "catalog",
        help="inspect and repair the cross-run experiment catalog "
             "(`repro launch --catalog`)",
    )
    catalog_sub = catalog.add_subparsers(dest="catalog_command", required=True)

    def add_catalog_db(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "db", metavar="PATH",
            help="catalog database (SQLite file, or a directory containing "
                 "catalog.sqlite)",
        )

    catalog_list = catalog_sub.add_parser(
        "list", help="list every cataloged artifact with its status"
    )
    add_catalog_db(catalog_list)
    catalog_list.set_defaults(handler=_cmd_catalog_list)

    catalog_query = catalog_sub.add_parser(
        "query", help="filter catalog entries by spec digest, status or kind"
    )
    add_catalog_db(catalog_query)
    catalog_query.add_argument(
        "--spec", metavar="DIGEST", default=None,
        help="only entries of this spec digest",
    )
    catalog_query.add_argument(
        "--status", metavar="STATUS", default=None,
        choices=("ok", "corrupt", "missing", "outdated"),
        help="only entries with this status",
    )
    catalog_query.add_argument(
        "--kind", metavar="KIND", default=None, choices=("shard", "merged"),
        help="only shard or only merged artifacts",
    )
    catalog_query.add_argument(
        "--json", action="store_true", help="print the raw entries as JSON"
    )
    catalog_query.set_defaults(handler=_cmd_catalog_query)

    catalog_verify = catalog_sub.add_parser(
        "verify",
        help="re-verify recorded digests against the artifacts on disk; "
             "marks corrupt/missing/outdated entries and exits nonzero if "
             "any are flagged",
    )
    add_catalog_db(catalog_verify)
    catalog_verify.add_argument(
        "--spec", metavar="DIGEST", default=None,
        help="only verify entries of this spec digest",
    )
    catalog_verify.set_defaults(handler=_cmd_catalog_verify)

    catalog_repair = catalog_sub.add_parser(
        "repair",
        help="verify, evict every flagged entry, and report exactly which "
             "shards need re-running",
    )
    add_catalog_db(catalog_repair)
    catalog_repair.add_argument(
        "--spec", metavar="DIGEST", default=None,
        help="only repair entries of this spec digest",
    )
    catalog_repair.set_defaults(handler=_cmd_catalog_repair)

    catalog_gc = catalog_sub.add_parser(
        "gc",
        help="drop entries whose artifact directory no longer exists "
             "(cheap; no digest re-checking)",
    )
    add_catalog_db(catalog_gc)
    catalog_gc.set_defaults(handler=_cmd_catalog_gc)

    serve = subparsers.add_parser(
        "serve",
        help="trace-driven fleet serving simulation with SLO-aware "
             "autoscaling (queueing + dynamic batching over the NPU "
             "energy model)",
    )
    serve.add_argument(
        "-w", "--workload", action="append",
        help="workload pool to serve (repeatable; required for synthetic "
             "arrivals, optional tag whitelist for --trace)",
    )
    serve.add_argument(
        "--arrival", choices=("poisson", "diurnal", "trace"), default="poisson",
        help="arrival process (default poisson; trace replays --trace FILE)",
    )
    serve.add_argument(
        "--rate", action="append", type=float, metavar="QPS",
        help="mean request rate per workload (repeatable: one per -w, or "
             "one broadcast to all; default 10)",
    )
    serve.add_argument(
        "--duration", type=float, default=60.0, metavar="SECONDS",
        help="synthetic trace length (default 60)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="arrival-process seed (default 0)"
    )
    serve.add_argument(
        "--period", type=float, default=86_400.0, metavar="SECONDS",
        help="diurnal period (default 86400, one day)",
    )
    serve.add_argument(
        "--amplitude", type=float, default=0.8, metavar="FRACTION",
        help="diurnal rate swing around the mean, 0..1 (default 0.8)",
    )
    serve.add_argument(
        "--trace", metavar="PATH",
        help="trace file to replay: CSV (timestamp_s,workload header) or "
             "JSONL with the same keys",
    )
    serve.add_argument(
        "--chip", default="NPU-D", help="NPU generation (default NPU-D)"
    )
    serve.add_argument(
        "--policy", action="append",
        help="evaluate only these gating policies (repeatable); NoPG is "
             "always included",
    )
    serve.add_argument(
        "--replicas", type=int, default=None, metavar="N",
        help="manual replica count per pool (default: SLO-aware autoscaling "
             "sizes each pool from the trace's peak windowed demand)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8, metavar="N",
        help="batch cap of manually sized pods (with --replicas; default 8; "
             "autoscaled pods use the SLO search's batch size)",
    )
    serve.add_argument(
        "--max-wait", type=float, default=0.050, metavar="SECONDS",
        help="batch forming window (default 0.050)",
    )
    serve.add_argument(
        "--target-utilization", type=float, default=0.8, metavar="FRACTION",
        help="autoscaler head-room target in (0, 1] (default 0.8)",
    )
    serve.add_argument(
        "--max-replicas", type=int, default=64, metavar="N",
        help="autoscaler replica cap per pool (default 64)",
    )
    serve.add_argument(
        "--curve", action="store_true",
        help="also emit the power-gating-savings vs fleet-utilization curve "
             "(replays the trace time-compressed across load levels)",
    )
    serve.add_argument(
        "--load-factor", action="append", type=float, metavar="X",
        help="curve load levels (repeatable; default 0.125..4x)",
    )
    serve.add_argument(
        "--carbon", action="store_true",
        help="also emit the operational-carbon rollup and the "
             "carbon-optimal device lifespan at measured utilization",
    )
    serve.add_argument(
        "--save-trace", metavar="PATH",
        help="write the (possibly generated) trace as a CSV trace file",
    )
    serve.add_argument(
        "--json", metavar="PATH",
        help="write the serving report (plus curve/carbon when requested) "
             "as JSON",
    )
    serve.set_defaults(handler=_cmd_serve)

    perf = subparsers.add_parser(
        "perf",
        help="benchmark the columnar fast path against the object-path oracle",
    )
    perf.add_argument(
        "--grid", default="full", choices=("tiny", "small", "full"),
        help="cold-sweep grid size (default: full, the 64-point grid)",
    )
    perf.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="best-of-N timing for each benchmark (default 3)",
    )
    perf.add_argument(
        "--output", default="BENCH_perf.json", metavar="PATH",
        help="write the benchmark payload as JSON (default BENCH_perf.json)",
    )
    perf.add_argument(
        "--check", metavar="PATH",
        help="fail if any speedup regresses vs this committed baseline payload",
    )
    perf.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"),
        help="compare two existing BENCH_perf payloads (per-benchmark speedup "
             "deltas; exits nonzero on regression beyond --tolerance) instead "
             "of running the suite",
    )
    perf.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRACTION",
        help="allowed fractional speedup regression for --check/--compare "
             "(default 0.25)",
    )
    perf.add_argument(
        "--profile", metavar="NAME",
        help="cProfile one benchmark pair instead of running the suite: "
             "prints the top cumulative-time functions and dumps the raw "
             "profile to perf-NAME.prof (inspect with pstats or snakeviz)",
    )
    perf.add_argument(
        "--profile-top", type=int, default=25, metavar="N",
        help="rows of the --profile table (default 25)",
    )
    perf.set_defaults(handler=_cmd_perf)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = args.handler(args)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
