"""Command-line interface for the ReGate reproduction.

Usage::

    python -m repro list
    python -m repro chips
    python -m repro simulate llama3-70b-prefill --chip NPU-D
    python -m repro simulate dlrm-m --chip NPU-E --num-chips 16 --policy ReGate-Full

The CLI is a thin wrapper over :func:`repro.core.regate.simulate_workload`
and prints the same per-policy summary the quickstart example shows.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table, percentage
from repro.core.config import SimulationConfig
from repro.core.regate import simulate_workload
from repro.gating.report import PolicyName
from repro.hardware.chips import chips_in_order, get_chip
from repro.hardware.components import Component
from repro.hardware.power import ChipPowerModel
from repro.workloads.registry import get_workload, list_workloads


def _cmd_list(_: argparse.Namespace) -> str:
    rows = []
    for name in list_workloads():
        spec = get_workload(name)
        rows.append([name, spec.family, spec.default_num_chips, spec.default_batch_size])
    return format_table(
        ["workload", "family", "default #chips", "default batch"],
        rows,
        title="Registered workloads (Table 1)",
    )


def _cmd_chips(_: argparse.Namespace) -> str:
    rows = []
    for chip in chips_in_order():
        power = ChipPowerModel(chip)
        rows.append(
            [
                chip.name,
                chip.technology_nm,
                round(chip.peak_sa_flops / 1e12, 1),
                chip.sram_mb,
                chip.hbm.capacity_gb,
                round(power.total_static_w, 1),
                round(power.tdp_w, 1),
            ]
        )
    return format_table(
        ["NPU", "node(nm)", "TFLOPS", "SRAM(MB)", "HBM(GB)", "static(W)", "TDP(W)"],
        rows,
        title="NPU generations (Table 2)",
    )


def _parse_policies(names: list[str] | None) -> tuple[PolicyName, ...]:
    if not names:
        return SimulationConfig().policies
    lookup = {p.value.lower(): p for p in PolicyName}
    lookup.update({p.name.lower(): p for p in PolicyName})
    selected = []
    for name in names:
        key = name.strip().lower()
        if key not in lookup:
            raise SystemExit(f"unknown policy {name!r}; choose from "
                             f"{', '.join(p.value for p in PolicyName)}")
        selected.append(lookup[key])
    if PolicyName.NOPG not in selected:
        selected.insert(0, PolicyName.NOPG)
    return tuple(selected)


def _cmd_simulate(args: argparse.Namespace) -> str:
    config = SimulationConfig(
        chip=args.chip,
        num_chips=args.num_chips,
        batch_size=args.batch_size,
        policies=_parse_policies(args.policy),
    )
    result = simulate_workload(args.workload, config)
    nopg = result.report(PolicyName.NOPG)
    lines = [
        f"workload      : {result.workload}",
        f"chip          : {result.chip.name} x{result.num_chips} "
        f"({result.parallelism.describe()})",
        f"batch size    : {result.batch_size}",
        f"iteration time: {nopg.total_time_s * 1e3:.3f} ms",
        f"static share  : {percentage(nopg.static_fraction())}",
        "",
    ]
    rows = []
    for policy in result.reports:
        report = result.report(policy)
        rows.append(
            [
                policy.value,
                f"{report.total_energy_j:.2f}",
                percentage(result.energy_savings(policy)),
                f"{report.average_power_w:.1f}",
                percentage(result.performance_overhead(policy), 3),
            ]
        )
    lines.append(
        format_table(
            ["design", "energy (J/chip/iter)", "savings", "avg power (W)", "overhead"],
            rows,
        )
    )
    if args.utilization:
        lines.append("")
        util_rows = [
            [c.pretty, percentage(result.temporal_utilization(c))]
            for c in Component.gateable()
        ]
        util_rows.append(["SA (spatial)", percentage(result.sa_spatial_utilization())])
        lines.append(format_table(["component", "utilization"], util_rows))
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReGate reproduction: NPU power-gating simulation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered workloads").set_defaults(
        handler=_cmd_list
    )
    subparsers.add_parser("chips", help="list NPU generations").set_defaults(
        handler=_cmd_chips
    )

    simulate = subparsers.add_parser("simulate", help="simulate one workload")
    simulate.add_argument("workload", help="workload name (see `repro list`)")
    simulate.add_argument("--chip", default="NPU-D", help="NPU generation (default NPU-D)")
    simulate.add_argument("--num-chips", type=int, default=None, help="pod size override")
    simulate.add_argument("--batch-size", type=int, default=None, help="batch override")
    simulate.add_argument(
        "--policy",
        action="append",
        help="evaluate only these policies (repeatable); NoPG is always included",
    )
    simulate.add_argument(
        "--utilization", action="store_true", help="also print component utilization"
    )
    simulate.set_defaults(handler=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = args.handler(args)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
