"""Tile-level NPU performance simulator and cycle-level systolic model."""

from repro.simulator.engine import (
    GapProfile,
    NPUSimulator,
    OperatorProfile,
    UtilizationError,
    WorkloadProfile,
)
from repro.simulator.systolic import SystolicArraySimulator, SystolicRunResult
from repro.simulator.timing import ComponentTimes, OperatorTimingModel

__all__ = [
    "ComponentTimes",
    "GapProfile",
    "NPUSimulator",
    "OperatorProfile",
    "OperatorTimingModel",
    "SystolicArraySimulator",
    "SystolicRunResult",
    "UtilizationError",
    "WorkloadProfile",
]
