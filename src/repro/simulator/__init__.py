"""Tile-level NPU performance simulator and cycle-level systolic model."""

from repro.simulator.columnar import (
    ProfileTable,
    batch_simulate,
    fast_path_enabled,
    seq_sum,
    set_fast_path,
    use_fast_path,
)
from repro.simulator.engine import (
    GapProfile,
    NPUSimulator,
    OperatorProfile,
    UtilizationError,
    WorkloadProfile,
)
from repro.simulator.systolic import SystolicArraySimulator, SystolicRunResult
from repro.simulator.timing import ComponentTimes, OperatorTimingModel

__all__ = [
    "ComponentTimes",
    "GapProfile",
    "NPUSimulator",
    "OperatorProfile",
    "OperatorTimingModel",
    "ProfileTable",
    "SystolicArraySimulator",
    "SystolicRunResult",
    "UtilizationError",
    "WorkloadProfile",
    "batch_simulate",
    "fast_path_enabled",
    "seq_sum",
    "set_fast_path",
    "use_fast_path",
]
