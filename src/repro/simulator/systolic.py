"""Cycle-level weight-stationary systolic array with PE power gating.

This model simulates, cycle by cycle, the diagonal dataflow of a
weight-stationary systolic array together with ReGate's PE-granularity
power-gating mechanism (Figures 11-13 of the paper):

* row/column gating from the non-zero weight bitmaps (``row_on`` /
  ``col_on``),
* the ``PE_on`` wavefront that wakes PEs one cycle ahead of the input
  data and puts them back into ``W_on`` mode after the data drains.

It is intentionally small (used for functional validation and for
calibrating the closed-form spatial model in
:mod:`repro.gating.sa_gating`); the operator-level simulator uses the
closed-form model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gating.sa_gating import active_pe_mask


@dataclass(frozen=True)
class SystolicRunResult:
    """Outcome of streaming one input tile through the array."""

    output: np.ndarray
    total_cycles: int
    pe_on_cycles: int  # PE-cycles spent fully on (computing or ready)
    pe_weight_only_cycles: int  # PE-cycles in W_on mode
    pe_off_cycles: int  # PE-cycles fully gated
    compute_pe_cycles: int  # PE-cycles doing useful MACs

    @property
    def total_pe_cycles(self) -> int:
        return self.pe_on_cycles + self.pe_weight_only_cycles + self.pe_off_cycles

    @property
    def spatial_utilization(self) -> float:
        """Useful MAC cycles over all PE-cycles (Figure 5 metric)."""
        if self.total_pe_cycles == 0:
            return 0.0
        return self.compute_pe_cycles / self.total_pe_cycles

    @property
    def on_fraction(self) -> float:
        if self.total_pe_cycles == 0:
            return 0.0
        return self.pe_on_cycles / self.total_pe_cycles

    @property
    def off_fraction(self) -> float:
        if self.total_pe_cycles == 0:
            return 0.0
        return self.pe_off_cycles / self.total_pe_cycles


class SystolicArraySimulator:
    """A W x W weight-stationary systolic array."""

    def __init__(self, width: int, power_gating: bool = True):
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width
        self.power_gating = power_gating

    # ------------------------------------------------------------------ #
    def matmul_reference(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Reference result for validation: ``inputs @ weights``."""
        return inputs @ weights

    def run(self, inputs: np.ndarray, weights: np.ndarray) -> SystolicRunResult:
        """Stream ``inputs`` ([M, K]) through the array loaded with ``weights``.

        ``weights`` must be [K, N] with K, N <= width; they are padded
        with zeros to the array size (exactly what the compiler does when
        a matmul does not fill the array).
        """
        m, k = inputs.shape
        k_w, n = weights.shape
        if k != k_w:
            raise ValueError("inner dimensions of inputs and weights differ")
        if k > self.width or n > self.width:
            raise ValueError("weights larger than the array; tile first")
        width = self.width
        padded_weights = np.zeros((width, width), dtype=np.float64)
        padded_weights[:k, :n] = weights
        padded_inputs = np.zeros((m, width), dtype=np.float64)
        padded_inputs[:, :k] = inputs

        if self.power_gating:
            powered_mask = active_pe_mask(padded_weights)
        else:
            powered_mask = np.ones((width, width), dtype=bool)
        num_powered = int(powered_mask.sum())

        # With diagonal skew, input row i enters column j at cycle i + j;
        # the partial sum exits the bottom of column j at cycle i + j + width.
        total_cycles = m + 2 * width
        output = padded_inputs @ padded_weights

        pe_on_cycles = 0
        pe_weight_only_cycles = 0
        pe_off_cycles = 0
        compute_pe_cycles = 0
        for cycle in range(total_cycles):
            if self.power_gating:
                # A powered PE (i, j) is fully ON while the input wavefront
                # for some row r satisfies r + i + j in [cycle-1, cycle]
                # (the PE_on signal arrives one cycle ahead of the data).
                # Equivalently the PE at diagonal d = i + j is ON when
                # cycle - m < d <= cycle.
                diag = np.add.outer(np.arange(width), np.arange(width))
                on_mask = powered_mask & (diag <= cycle) & (diag > cycle - m - 1)
                on = int(on_mask.sum())
                pe_on_cycles += on
                pe_weight_only_cycles += num_powered - on
                pe_off_cycles += width * width - num_powered
                compute_mask = on_mask & (diag <= cycle - 1) & (diag >= cycle - m)
                compute_pe_cycles += int((compute_mask & powered_mask).sum())
            else:
                pe_on_cycles += width * width
                diag = np.add.outer(np.arange(width), np.arange(width))
                compute_mask = (diag <= cycle - 1) & (diag >= cycle - m)
                compute_pe_cycles += int(compute_mask.sum())

        return SystolicRunResult(
            output=output[:, :n],
            total_cycles=total_cycles,
            pe_on_cycles=pe_on_cycles,
            pe_weight_only_cycles=pe_weight_only_cycles,
            pe_off_cycles=pe_off_cycles,
            compute_pe_cycles=compute_pe_cycles,
        )

    # ------------------------------------------------------------------ #
    def leakage_energy_factor(
        self,
        result: SystolicRunResult,
        off_leakage: float = 0.03,
        weight_register_share: float = 0.12,
    ) -> float:
        """Leakage of the gated run relative to an always-on array."""
        if result.total_pe_cycles == 0:
            return 1.0
        w_on_leak = weight_register_share + (1.0 - weight_register_share) * off_leakage
        energy = (
            result.pe_on_cycles
            + result.pe_weight_only_cycles * w_on_leak
            + result.pe_off_cycles * off_leakage
        )
        return energy / result.total_pe_cycles


__all__ = ["SystolicArraySimulator", "SystolicRunResult"]
