"""Columnar (structure-of-arrays) simulation core.

The object-path simulator represents a workload as a list of
:class:`~repro.simulator.engine.OperatorProfile` objects and every
aggregate (busy time, per-component active time, gap structure, energy)
as a Python loop over them.  This module provides the NumPy-backed fast
path: a :class:`ProfileTable` holds one aligned ``float64`` array per
per-operator quantity, built either in one vectorized batch directly
from an :class:`~repro.workloads.base.OperatorGraph`
(:func:`batch_simulate`) or extracted from an existing object-path
profile list (:meth:`ProfileTable.from_profiles`).

**Bit-for-bit equivalence with the object path is a hard contract**, not
a best-effort goal: the golden regression fixtures and the experiment
cache were produced by the loop-based code, and a cold sweep must
produce byte-identical CSVs on either path.  Two rules keep the paths
exactly equal:

* every elementwise expression mirrors the scalar code's operation
  order (IEEE-754 double arithmetic is deterministic, but not
  associative — ``a + b + c`` must stay ``(a + b) + c``);
* reductions that the object path accumulates sequentially use
  :func:`seq_sum` (a ``cumsum``-based strictly left-to-right sum)
  rather than ``np.sum``, whose pairwise summation rounds differently.

The fast path can be globally disabled with :func:`use_fast_path` (or
:func:`set_fast_path`), which makes every consumer fall back to the
original loop implementations — that object path stays in the tree as
the reference oracle for the equivalence tests and the perf harness.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from repro.hardware.chips import NPUChipSpec
from repro.hardware.components import Component
from repro.hardware.power import DynamicEnergyModel
from repro.compiler.tiling import TilingPass
from repro.simulator.timing import (
    HBM_EFFICIENCY,
    ICI_EFFICIENCY,
    OPERATOR_OVERHEAD_CYCLES,
    SA_MAPPING_MIN_M,
)
from repro.workloads.base import OperatorGraph
from repro.workloads.table import GraphTable

# ---------------------------------------------------------------------- #
# Fast-path switch
# ---------------------------------------------------------------------- #
# ``REPRO_FAST_PATH=0`` starts the process on the object-path oracle
# (CI's equivalence job uses it); :func:`set_fast_path` /
# :func:`use_fast_path` still override it at runtime.
_FAST_PATH_ENABLED = os.environ.get("REPRO_FAST_PATH", "1") != "0"


def fast_path_enabled() -> bool:
    """Whether aggregates and policies use the columnar fast path."""
    return _FAST_PATH_ENABLED


def set_fast_path(enabled: bool) -> bool:
    """Enable/disable the fast path globally; returns the previous state."""
    global _FAST_PATH_ENABLED
    previous = _FAST_PATH_ENABLED
    _FAST_PATH_ENABLED = bool(enabled)
    return previous


@contextmanager
def use_fast_path(enabled: bool = True) -> Iterator[None]:
    """Context manager scoping the fast-path switch (reference oracle off)."""
    previous = set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(previous)


# ---------------------------------------------------------------------- #
# Sequential reduction
# ---------------------------------------------------------------------- #
def seq_sum(values: np.ndarray) -> float:
    """Strictly left-to-right sum, bit-identical to Python's ``sum()``.

    ``np.sum`` uses pairwise summation, which rounds differently from
    the sequential accumulation the object path performs; ``cumsum`` is
    defined element-by-element and therefore accumulates in order.
    """
    if values.size == 0:
        return 0.0
    return float(values.cumsum()[-1])


def _as_float_array(values: list) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


def gap_arrays(
    component: Component,
    *,
    latency: np.ndarray,
    active: np.ndarray,
    sa_mapped: np.ndarray,
    num_weight_tiles: np.ndarray,
    num_output_tiles: np.ndarray,
    num_dma_bursts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Per-operator ``(gap_s, num_gaps_per_invocation)`` of one component.

    The single definition of the idle-gap burst model
    (:meth:`~repro.simulator.engine.OperatorProfile.gap_profiles`
    vectorized), shared by :meth:`ProfileTable.gap_table` and the packed
    multi-profile policy evaluation so the two can never drift apart.
    Returns ``None`` for components without per-operator gap structure
    (SRAM/OTHER).
    """
    idle = np.maximum(0.0, latency - active)
    has_gap = idle > 0.0
    if component is Component.SA:
        bursts = np.where(
            sa_mapped & (active > 0.0), np.maximum(1.0, num_weight_tiles), 1.0
        )
    elif component is Component.VU:
        bursts = np.where(
            active > 0.0,
            np.where(
                sa_mapped,
                np.maximum(1.0, num_output_tiles),
                np.maximum(1.0, num_dma_bursts),
            ),
            1.0,
        )
    elif component is Component.HBM:
        bursts = np.where(active > 0.0, np.maximum(1.0, num_dma_bursts), 1.0)
    elif component is Component.ICI:
        bursts = np.ones_like(latency)
    else:
        return None
    gap_s = np.where(has_gap, idle / bursts, 0.0)
    num_per_invocation = np.where(has_gap, bursts, 0.0)
    return gap_s, num_per_invocation


# ---------------------------------------------------------------------- #
# The structure-of-arrays profile
# ---------------------------------------------------------------------- #
class ProfileTable:
    """Aligned per-operator arrays of one simulated workload iteration.

    All arrays have one entry per operator (post-fusion program order).
    ``active``/``dynamic`` map each :class:`Component` to its per-
    invocation active seconds (clamped to the operator latency) and
    dynamic energy.  Derived aggregates (busy time, per-component
    totals, idle-gap tables) are computed once on first use and cached —
    this is what lets the five gating policies share one gap table per
    component instead of rebuilding identical
    :class:`~repro.simulator.engine.GapProfile` lists per policy.
    """

    def __init__(
        self,
        *,
        count: np.ndarray,
        latency_s: np.ndarray,
        sa_mapped: np.ndarray,
        sa_spatial_util: np.ndarray,
        active: dict[Component, np.ndarray],
        dynamic: dict[Component, np.ndarray],
        sram_demand_bytes: np.ndarray,
        num_weight_tiles: np.ndarray,
        num_output_tiles: np.ndarray,
        num_dma_bursts: np.ndarray,
        dims_m: np.ndarray,
        dims_k: np.ndarray,
        dims_n: np.ndarray,
        has_dims: np.ndarray,
    ):
        self.count = count
        self.latency_s = latency_s
        self.sa_mapped = sa_mapped
        self.sa_spatial_util = sa_spatial_util
        self.active = active
        self.dynamic = dynamic
        self.sram_demand_bytes = sram_demand_bytes
        self.num_weight_tiles = num_weight_tiles
        self.num_output_tiles = num_output_tiles
        self.num_dma_bursts = num_dma_bursts
        self.dims_m = dims_m
        self.dims_k = dims_k
        self.dims_n = dims_n
        self.has_dims = has_dims
        self.n_ops = int(count.size)
        # Lazily-filled aggregate caches.
        self._total_time_s: float | None = None
        self._active_totals: dict[Component, float] = {}
        self._dynamic_totals: dict[Component, float] = {}
        self._gap_tables: dict[Component, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._sa_spatial: float | None = None
        self._weighted_active: dict[Component, np.ndarray] = {}
        self._weighted_latency: np.ndarray | None = None
        #: Cross-policy scratchpad: the gating policies memoize derived
        #: arrays here (idle accounting, leakage-factor arrays) keyed by
        #: everything their value depends on, so five policies evaluated
        #: on one profile share the work instead of recomputing it.
        self.memo: dict = {}

    # -- constructors --------------------------------------------------- #
    @classmethod
    def from_profiles(cls, profiles: list) -> "ProfileTable":
        """Extract the arrays from object-path ``OperatorProfile``s."""
        count = _as_float_array([p.count for p in profiles])
        latency = _as_float_array([p.latency_s for p in profiles])
        sa_mapped = np.asarray([p.sa_mapped for p in profiles], dtype=bool)
        sa_util = _as_float_array([p.times.sa_spatial_util for p in profiles])
        active = {
            component: _as_float_array([p.active_s(component) for p in profiles])
            for component in Component.all()
        }
        dynamic = {
            component: _as_float_array(
                [p.dynamic_energy_j[component] for p in profiles]
            )
            for component in Component.all()
        }
        dims = [p.operator.dims for p in profiles]
        return cls(
            count=count,
            latency_s=latency,
            sa_mapped=sa_mapped,
            sa_spatial_util=sa_util,
            active=active,
            dynamic=dynamic,
            sram_demand_bytes=_as_float_array(
                [p.sram_demand_bytes for p in profiles]
            ),
            num_weight_tiles=_as_float_array(
                [p.tile_info.num_weight_tiles for p in profiles]
            ),
            num_output_tiles=_as_float_array(
                [p.tile_info.num_output_tiles for p in profiles]
            ),
            num_dma_bursts=_as_float_array(
                [p.tile_info.num_dma_bursts for p in profiles]
            ),
            dims_m=_as_float_array([d.m if d is not None else 1 for d in dims]),
            dims_k=_as_float_array([d.k if d is not None else 1 for d in dims]),
            dims_n=_as_float_array([d.n if d is not None else 1 for d in dims]),
            has_dims=np.asarray([d is not None for d in dims], dtype=bool),
        )

    def reset_caches(self) -> None:
        """Drop every derived aggregate and memo (keep the base arrays).

        Lets benchmarks and what-if analyses re-run the derived
        accounting cold without rebuilding the table itself.
        """
        self._total_time_s = None
        self._active_totals.clear()
        self._dynamic_totals.clear()
        self._gap_tables.clear()
        self._sa_spatial = None
        self._weighted_active.clear()
        self._weighted_latency = None
        self.memo.clear()

    # -- scalar aggregates ---------------------------------------------- #
    def total_time_s(self) -> float:
        """Busy time of one iteration: ``sum(latency * count)``."""
        if self._total_time_s is None:
            self._total_time_s = seq_sum(self.weighted_latency())
        return self._total_time_s

    def active_total_s(self, component: Component) -> float:
        """Total active seconds of one component per iteration."""
        cached = self._active_totals.get(component)
        if cached is None:
            cached = seq_sum(self.weighted_active(component))
            self._active_totals[component] = cached
        return cached

    def dynamic_total_j(self, component: Component) -> float:
        """Total dynamic energy of one component per iteration."""
        cached = self._dynamic_totals.get(component)
        if cached is None:
            cached = seq_sum(self.dynamic[component] * self.count)
            self._dynamic_totals[component] = cached
        return cached

    def sa_spatial_utilization(self) -> float:
        """SA-active-time-weighted spatial utilization (Figure 5)."""
        if self._sa_spatial is None:
            active = self.weighted_active(Component.SA)
            mask = active > 0.0
            weighted = seq_sum(np.where(mask, self.sa_spatial_util * active, 0.0))
            total = seq_sum(np.where(mask, active, 0.0))
            self._sa_spatial = 0.0 if total <= 0 else weighted / total
        return self._sa_spatial

    def weighted_active(self, component: Component) -> np.ndarray:
        """Per-operator ``active * count`` array, computed once."""
        cached = self._weighted_active.get(component)
        if cached is None:
            cached = self.active[component] * self.count
            self._weighted_active[component] = cached
        return cached

    def weighted_latency(self) -> np.ndarray:
        """Per-operator ``latency * count`` array, computed once."""
        if self._weighted_latency is None:
            self._weighted_latency = self.latency_s * self.count
        return self._weighted_latency

    def sram_demand_distribution(self) -> list[tuple[float, float]]:
        """(demand_bytes, time_s) pairs, one per operator (Figure 7)."""
        times = self.weighted_latency()
        return list(zip(self.sram_demand_bytes.tolist(), times.tolist()))

    # -- idle-gap tables ------------------------------------------------ #
    def gap_table(
        self, component: Component
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-operator idle-gap family of one component.

        Returns ``(gap_s, num_gaps_per_invocation, num_gaps_total)``
        arrays aligned with the operator order; operators without an
        idle gap for this component hold zeros in all three (adding a
        zero term to a running float sum is exact, so the zero-padded
        arrays reduce bit-identically to the object path's filtered gap
        lists).  Computed once per profile and shared by every policy
        evaluation — the memoization the sensitivity sweeps rely on.
        """
        cached = self._gap_tables.get(component)
        if cached is not None:
            return cached

        family = gap_arrays(
            component,
            latency=self.latency_s,
            active=self.active[component],
            sa_mapped=self.sa_mapped,
            num_weight_tiles=self.num_weight_tiles,
            num_output_tiles=self.num_output_tiles,
            num_dma_bursts=self.num_dma_bursts,
        )
        if family is None:
            # SRAM/OTHER have no per-operator idle-gap structure; the
            # object path produces an empty gap list for them.
            zeros = np.zeros_like(self.latency_s)
            table = (zeros, zeros, zeros)
        else:
            gap_s, num_per_invocation = family
            table = (gap_s, num_per_invocation, num_per_invocation * self.count)
        self._gap_tables[component] = table
        return table


# ---------------------------------------------------------------------- #
# Batch simulation (vectorized timing + tiling + dynamic energy)
# ---------------------------------------------------------------------- #
class BatchSimulation:
    """Raw arrays of one batch simulation plus the derived ProfileTable.

    The raw per-component times (un-clamped), the dispatch overhead and
    the tile shapes are what the engine needs to materialize the
    object-path ``OperatorProfile`` list; the :class:`ProfileTable` is
    what the aggregates and policies consume.
    """

    def __init__(
        self,
        *,
        table: ProfileTable,
        sa_s: np.ndarray,
        vu_s: np.ndarray,
        hbm_s: np.ndarray,
        ici_s: np.ndarray,
        overhead_s: float,
        tile_m: np.ndarray,
        tile_k: np.ndarray,
        tile_n: np.ndarray,
    ):
        self.table = table
        self.sa_s = sa_s
        self.vu_s = vu_s
        self.hbm_s = hbm_s
        self.ici_s = ici_s
        self.overhead_s = overhead_s
        self.tile_m = tile_m
        self.tile_k = tile_k
        self.tile_n = tile_n


def batch_simulate_table(
    table: GraphTable,
    chip: NPUChipSpec,
    dynamic_model: DynamicEnergyModel | None = None,
    tiling: TilingPass | None = None,
    sram_demand: np.ndarray | None = None,
) -> BatchSimulation:
    """Simulate every operator of a :class:`GraphTable` in one batch.

    Produces, for each operator, exactly the values
    ``OperatorTimingModel.times`` + ``TilingPass.tile`` +
    ``NPUSimulator._dynamic_energy`` compute one at a time — the scalar
    expression structure is mirrored operation-for-operation so the
    results are bit-identical doubles.  This is the core of the
    columnar compiler frontend: the input arrays come straight from the
    workload builders (or :meth:`GraphTable.from_graph`), so no
    per-operator Python object is ever touched.
    """
    dyn = dynamic_model or DynamicEnergyModel(chip)
    tiling = tiling or TilingPass(chip)
    width = chip.sa_width

    count = table.count
    sa_flops = table.sa_flops
    vu_flops = table.vu_flops
    hbm_bytes = table.hbm_bytes
    ici_bytes = table.ici_bytes
    dtype_bytes = table.dtype_bytes
    uses_sa = table.uses_sa
    is_ptp = table.is_ptp
    has_dims = table.has_dims
    dims_m, dims_k, dims_n = table.dims_m, table.dims_k, table.dims_n

    # -- timing (OperatorTimingModel) ----------------------------------- #
    sa_mapped = uses_sa & has_dims & (sa_flops > 0.0) & (dims_m >= SA_MAPPING_MIN_M)
    # padding_efficiency / pipeline_fill_efficiency with the scalar
    # code's `dim <= 0 -> 0.0` guards (the max(..., 1.0) only rewrites
    # denominators of masked-out entries, never a live one).
    pad_k = np.where(
        dims_k > 0, dims_k / np.maximum(np.ceil(dims_k / width) * width, 1.0), 0.0
    )
    pad_n = np.where(
        dims_n > 0, dims_n / np.maximum(np.ceil(dims_n / width) * width, 1.0), 0.0
    )
    fill_m = np.where(dims_m > 0, dims_m / (dims_m + 2.0 * width), 0.0)
    util = np.maximum(pad_k * pad_n * fill_m, 1e-4)
    sa_s = np.where(sa_mapped, sa_flops / (chip.peak_sa_flops * util), 0.0)
    sa_util = np.where(sa_mapped, util, 0.0)

    eff_vu_flops = vu_flops + np.where(sa_mapped, 0.0, sa_flops)
    vu_s = np.where(eff_vu_flops > 0.0, eff_vu_flops / chip.peak_vu_flops, 0.0)

    hbm_s = np.where(
        hbm_bytes > 0.0,
        hbm_bytes / (chip.hbm_bandwidth_bytes * HBM_EFFICIENCY),
        0.0,
    )

    ici_bandwidth = chip.ici_bandwidth_bytes * ICI_EFFICIENCY
    ici_s = np.where(
        ici_bytes > 0.0,
        ici_bytes / np.where(is_ptp, ici_bandwidth * 0.5, ici_bandwidth),
        0.0,
    )

    overhead_s = OPERATOR_OVERHEAD_CYCLES * chip.cycle_time_s
    latency = np.maximum(np.maximum(np.maximum(sa_s, vu_s), hbm_s), ici_s) + overhead_s

    active = {
        Component.SA: np.minimum(sa_s, latency),
        Component.VU: np.minimum(vu_s, latency),
        Component.HBM: np.minimum(hbm_s, latency),
        Component.ICI: np.minimum(ici_s, latency),
        Component.SRAM: np.minimum(
            np.maximum(np.maximum(sa_s, vu_s), hbm_s), latency
        ),
        Component.OTHER: latency,
    }

    # -- tiling (TilingPass, vectorized) --------------------------------- #
    tiles = tiling.tile_table(table, demand=sram_demand)

    # -- dynamic energy (NPUSimulator._dynamic_energy) ------------------- #
    dyn_sa_flops = np.where(sa_mapped, sa_flops, 0.0)
    dyn_vu_flops = vu_flops + np.where(sa_mapped, 0.0, sa_flops)
    sram_bytes = (
        2.0 * hbm_bytes
        + dyn_sa_flops * 2.0 * dtype_bytes / width
        + dyn_vu_flops * dtype_bytes
    )
    e_sa = dyn.sa_energy(dyn_sa_flops)
    e_vu = dyn.vu_energy(dyn_vu_flops)
    e_sram = dyn.sram_energy(sram_bytes)
    e_hbm = dyn.hbm_energy(hbm_bytes)
    e_ici = dyn.ici_energy(ici_bytes)
    # Mirrors sum(energies.values()) over the insertion order SA, VU,
    # SRAM, HBM, ICI (sequential left-to-right adds).
    e_other = dyn.other_energy(e_sa + e_vu + e_sram + e_hbm + e_ici)
    dynamic = {
        Component.SA: e_sa,
        Component.VU: e_vu,
        Component.SRAM: e_sram,
        Component.HBM: e_hbm,
        Component.ICI: e_ici,
        Component.OTHER: e_other,
    }

    profile_table = ProfileTable(
        count=count,
        latency_s=latency,
        sa_mapped=sa_mapped,
        sa_spatial_util=sa_util,
        active=active,
        dynamic=dynamic,
        sram_demand_bytes=tiles.sram_demand_bytes,
        num_weight_tiles=tiles.num_weight_tiles,
        num_output_tiles=tiles.num_output_tiles,
        num_dma_bursts=tiles.num_dma_bursts,
        dims_m=dims_m,
        dims_k=dims_k,
        dims_n=dims_n,
        has_dims=has_dims,
    )
    return BatchSimulation(
        table=profile_table,
        sa_s=sa_s,
        vu_s=vu_s,
        hbm_s=hbm_s,
        ici_s=ici_s,
        overhead_s=overhead_s,
        tile_m=tiles.tile_m,
        tile_k=tiles.tile_k,
        tile_n=tiles.tile_n,
    )


def batch_simulate(
    graph: OperatorGraph | GraphTable,
    chip: NPUChipSpec,
    dynamic_model: DynamicEnergyModel | None = None,
    tiling: TilingPass | None = None,
) -> BatchSimulation:
    """Vectorized whole-graph simulation (object-graph compatibility API).

    Accepts either IR: an :class:`OperatorGraph` is converted to its
    columnar form once (one C-level pass over the operator list) and
    handed to :func:`batch_simulate_table`.
    """
    if not isinstance(graph, GraphTable):
        graph = GraphTable.from_graph(graph)
    return batch_simulate_table(graph, chip, dynamic_model, tiling)


__all__ = [
    "BatchSimulation",
    "ProfileTable",
    "batch_simulate",
    "batch_simulate_table",
    "fast_path_enabled",
    "gap_arrays",
    "seq_sum",
    "set_fast_path",
    "use_fast_path",
]
