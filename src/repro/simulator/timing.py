"""Per-component timing models for one tensor operator.

The operator-level simulator computes, for every operator, how long each
chip component is active: the systolic arrays (matrix FLOPs at the
achieved spatial efficiency), the vector units, the HBM (DMA traffic at
the effective bandwidth), and the ICI links (collective traffic at the
effective ring bandwidth).  The operator latency is the maximum of those
times plus a fixed dispatch overhead — the compiler double-buffers tiles
so compute, DMA and communication overlap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gating.sa_gating import spatial_utilization
from repro.hardware.chips import NPUChipSpec
from repro.hardware.components import Component
from repro.workloads.base import CollectiveKind, Operator, OpKind

# Effective fractions of peak bandwidth sustained in practice.
HBM_EFFICIENCY = 0.85
ICI_EFFICIENCY = 0.65
# Matmuls whose M dimension is below this threshold cannot amortize the
# systolic-array warm-up latency and are mapped to the vector units
# (the paper observes this for small-batch LLM decode).
SA_MAPPING_MIN_M = 16
# Fixed per-operator dispatch/launch overhead.
OPERATOR_OVERHEAD_CYCLES = 500.0


@dataclass(frozen=True)
class ComponentTimes:
    """Active time of each component for one operator invocation."""

    sa_s: float
    vu_s: float
    hbm_s: float
    ici_s: float
    overhead_s: float
    sa_mapped: bool
    sa_spatial_util: float

    @property
    def latency_s(self) -> float:
        """Operator latency with perfect overlap of the bound resources."""
        return max(self.sa_s, self.vu_s, self.hbm_s, self.ici_s) + self.overhead_s

    @property
    def bound_component(self) -> Component:
        """The component that determines the operator latency."""
        times = {
            Component.SA: self.sa_s,
            Component.VU: self.vu_s,
            Component.HBM: self.hbm_s,
            Component.ICI: self.ici_s,
        }
        return max(times, key=times.get)

    def active(self, component: Component) -> float:
        """Active seconds of one component."""
        mapping = {
            Component.SA: self.sa_s,
            Component.VU: self.vu_s,
            Component.HBM: self.hbm_s,
            Component.ICI: self.ici_s,
        }
        if component is Component.SRAM:
            return max(self.sa_s, self.vu_s, self.hbm_s)
        if component is Component.OTHER:
            return self.latency_s
        return mapping[component]


class OperatorTimingModel:
    """Computes :class:`ComponentTimes` for operators on one chip."""

    def __init__(self, chip: NPUChipSpec):
        self.chip = chip

    # ------------------------------------------------------------------ #
    def maps_to_sa(self, op: Operator) -> bool:
        """Whether the operator's matrix work runs on the systolic arrays."""
        if not op.kind.uses_sa or op.dims is None or op.sa_flops <= 0:
            return False
        return op.dims.m >= SA_MAPPING_MIN_M

    def sa_time(self, op: Operator) -> tuple[float, float]:
        """(seconds, spatial utilization) of the SA work of one invocation."""
        if not self.maps_to_sa(op):
            return 0.0, 0.0
        util = spatial_utilization(op.dims, self.chip.sa_width)
        util = max(util, 1e-4)
        effective_flops = self.chip.peak_sa_flops * util
        return op.sa_flops / effective_flops, util

    def vu_time(self, op: Operator, sa_mapped: bool) -> float:
        """Seconds of vector-unit work of one invocation."""
        flops = op.vu_flops + (0.0 if sa_mapped else op.sa_flops)
        if flops <= 0:
            return 0.0
        return flops / self.chip.peak_vu_flops

    def hbm_time(self, op: Operator) -> float:
        """Seconds of HBM/DMA activity of one invocation."""
        if op.hbm_bytes <= 0:
            return 0.0
        return op.hbm_bytes / (self.chip.hbm_bandwidth_bytes * HBM_EFFICIENCY)

    def ici_time(self, op: Operator) -> float:
        """Seconds of ICI activity of one invocation."""
        if op.ici_bytes <= 0:
            return 0.0
        bandwidth = self.chip.ici_bandwidth_bytes * ICI_EFFICIENCY
        if op.collective in (CollectiveKind.ALL_TO_ALL, CollectiveKind.SEND_RECV):
            # Point-to-point patterns only use a subset of the links.
            bandwidth *= 0.5
        return op.ici_bytes / bandwidth

    # ------------------------------------------------------------------ #
    def times(self, op: Operator) -> ComponentTimes:
        """Full per-component timing of one operator invocation."""
        sa_mapped = self.maps_to_sa(op)
        sa_s, util = self.sa_time(op)
        return ComponentTimes(
            sa_s=sa_s,
            vu_s=self.vu_time(op, sa_mapped),
            hbm_s=self.hbm_time(op),
            ici_s=self.ici_time(op),
            overhead_s=OPERATOR_OVERHEAD_CYCLES * self.chip.cycle_time_s,
            sa_mapped=sa_mapped,
            sa_spatial_util=util,
        )


__all__ = [
    "ComponentTimes",
    "HBM_EFFICIENCY",
    "ICI_EFFICIENCY",
    "OPERATOR_OVERHEAD_CYCLES",
    "OperatorTimingModel",
    "SA_MAPPING_MIN_M",
]
