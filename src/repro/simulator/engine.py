"""Operator-level NPU performance and activity simulator.

For every operator of a workload graph the simulator computes the
per-component active times, the dynamic energy, the SRAM capacity
demand, and the structure of the idle periods (how many gaps of which
characteristic length each component sees).  The power-gating policies
in :mod:`repro.gating.policies` consume this :class:`WorkloadProfile` to
account static energy under the different gating schemes — the same
split the paper uses between its performance simulator backend and its
power/energy analysis.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import ClassVar

from repro.compiler.fusion import FusionPass
from repro.compiler.tiling import TileInfo, TilingPass
from repro.hardware.chips import NPUChipSpec
from repro.hardware.components import Component
from repro.hardware.power import ChipPowerModel
from repro.simulator import columnar
from repro.simulator.columnar import BatchSimulation, ProfileTable
from repro.simulator.timing import ComponentTimes, OperatorTimingModel
from repro.workloads.base import Operator, OperatorGraph, OpKind
from repro.workloads.table import GraphTable, LazyList

_LOG = logging.getLogger(__name__)

#: Slack for floating-point noise when checking utilization bounds.
UTILIZATION_TOLERANCE = 1e-9


class UtilizationError(ValueError):
    """A component's active time exceeds the total busy time.

    Per-operator active times are clamped to the operator latency, so a
    structurally valid profile can never trip this; seeing it means a
    timing-model (or hand-built profile) bug rather than rounding noise.
    """


@dataclass(frozen=True)
class GapProfile:
    """A family of identical idle gaps of one component."""

    component: Component
    gap_s: float  # duration of each gap
    num_gaps: float  # number of such gaps per workload iteration

    @property
    def total_idle_s(self) -> float:
        return self.gap_s * self.num_gaps


@dataclass
class OperatorProfile:
    """Simulation results for one operator (per single invocation)."""

    operator: Operator
    times: ComponentTimes
    tile_info: TileInfo
    dynamic_energy_j: dict[Component, float]

    @property
    def count(self) -> int:
        return self.operator.count

    @property
    def latency_s(self) -> float:
        return self.times.latency_s

    @property
    def sa_mapped(self) -> bool:
        return self.times.sa_mapped

    @property
    def sram_demand_bytes(self) -> float:
        return self.tile_info.sram_demand_bytes

    def active_s(self, component: Component) -> float:
        """Active seconds of one component during one invocation."""
        return min(self.times.active(component), self.latency_s)

    # ------------------------------------------------------------------ #
    def gap_profiles(self) -> list[GapProfile]:
        """Idle-gap structure of this operator (per invocation).

        Gaps are never merged across operator boundaries, which slightly
        underestimates gap lengths (a conservative choice: it can only
        make the gating policies gate less, never more).
        """
        gaps: list[GapProfile] = []
        latency = self.latency_s

        # Systolic arrays -------------------------------------------------
        sa_active = self.active_s(Component.SA)
        sa_idle = max(0.0, latency - sa_active)
        if sa_idle > 0:
            if self.sa_mapped and sa_active > 0:
                bursts = max(1, self.tile_info.num_weight_tiles)
                gaps.append(
                    GapProfile(Component.SA, gap_s=sa_idle / bursts, num_gaps=bursts)
                )
            else:
                gaps.append(GapProfile(Component.SA, gap_s=sa_idle, num_gaps=1))

        # Vector units -----------------------------------------------------
        vu_active = self.active_s(Component.VU)
        vu_idle = max(0.0, latency - vu_active)
        if vu_idle > 0:
            if vu_active > 0 and self.sa_mapped:
                bursts = max(1, self.tile_info.num_output_tiles)
                gaps.append(
                    GapProfile(Component.VU, gap_s=vu_idle / bursts, num_gaps=bursts)
                )
            elif vu_active > 0:
                bursts = max(1, self.tile_info.num_dma_bursts)
                gaps.append(
                    GapProfile(Component.VU, gap_s=vu_idle / bursts, num_gaps=bursts)
                )
            else:
                gaps.append(GapProfile(Component.VU, gap_s=vu_idle, num_gaps=1))

        # HBM ----------------------------------------------------------------
        hbm_active = self.active_s(Component.HBM)
        hbm_idle = max(0.0, latency - hbm_active)
        if hbm_idle > 0:
            if hbm_active > 0:
                bursts = max(1, self.tile_info.num_dma_bursts)
                gaps.append(
                    GapProfile(Component.HBM, gap_s=hbm_idle / bursts, num_gaps=bursts)
                )
            else:
                gaps.append(GapProfile(Component.HBM, gap_s=hbm_idle, num_gaps=1))

        # ICI ----------------------------------------------------------------
        ici_active = self.active_s(Component.ICI)
        ici_idle = max(0.0, latency - ici_active)
        if ici_idle > 0:
            gaps.append(GapProfile(Component.ICI, gap_s=ici_idle, num_gaps=1))
        return gaps


class _LazyOperatorProfiles(LazyList):
    """Operator-profile list materialized from a batch on first access.

    A cold columnar simulation produces its aggregates from the
    :class:`~repro.simulator.columnar.ProfileTable`; the per-operator
    :class:`OperatorProfile` objects are only needed when somebody
    actually walks :attr:`WorkloadProfile.profiles`, so their
    construction is deferred to that first access.  Materialization
    yields exactly the objects the eager path would have built.
    """

    __slots__ = ()


@dataclass
class WorkloadProfile:
    """Aggregated simulation results for one workload iteration on one chip.

    Every aggregate has two implementations producing bit-identical
    doubles: a vectorized reduction over the memoized
    :class:`~repro.simulator.columnar.ProfileTable` (the default), and
    the original object-path loop, kept as the reference oracle and
    selected with :func:`repro.simulator.columnar.use_fast_path`.
    """

    graph: OperatorGraph
    chip: NPUChipSpec
    profiles: list[OperatorProfile] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Columnar table memoization
    # ------------------------------------------------------------------ #
    def _profiles_token(self) -> tuple:
        """Cheap fingerprint of the profile list for cache invalidation."""
        profiles = self.profiles
        if isinstance(profiles, _LazyOperatorProfiles) and profiles.pending:
            # Fingerprinting would force materialization; an untouched
            # lazy list cannot have been mutated, so its identity is
            # fingerprint enough.  (After materialization the token
            # changes and the table is rebuilt — bit-identically.)
            return ("lazy", id(profiles))
        return (len(profiles), tuple(map(id, profiles)))

    @property
    def table(self) -> ProfileTable:
        """The columnar view of this profile, built once and memoized.

        Appending/replacing entries of :attr:`profiles` invalidates the
        cache automatically (the fingerprint covers list length and
        element identities); after mutating an :class:`OperatorProfile`
        *in place*, call :meth:`invalidate_caches` explicitly.
        """
        cache = self.__dict__
        token = self._profiles_token()
        table = cache.get("_table")
        if table is None or cache.get("_table_token") != token:
            table = ProfileTable.from_profiles(self.profiles)
            cache["_table"] = table
            cache["_table_token"] = token
        return table

    def invalidate_caches(self) -> None:
        """Drop the memoized columnar table and its derived aggregates."""
        self.__dict__.pop("_table", None)
        self.__dict__.pop("_table_token", None)

    def _fast_table(self) -> ProfileTable | None:
        """The memoized table, or ``None`` when the fast path is off.

        Also returns ``None`` when the profile list holds duck-typed
        stand-ins (e.g. hand-built test doubles) that the columnar
        extraction cannot read — those fall back to the object path.
        """
        if not columnar.fast_path_enabled():
            return None
        try:
            return self.table
        except AttributeError:
            return None

    def _attach_table(self, table: ProfileTable) -> None:
        """Install a pre-built table (the batch-simulation fast path)."""
        self.__dict__["_table"] = table
        self.__dict__["_table_token"] = self._profiles_token()

    # ------------------------------------------------------------------ #
    @property
    def total_time_s(self) -> float:
        """Busy execution time of one workload iteration."""
        table = self._fast_table()
        if table is not None:
            return table.total_time_s()
        return sum(p.latency_s * p.count for p in self.profiles)

    @property
    def total_cycles(self) -> float:
        return self.chip.seconds_to_cycles(self.total_time_s)

    def active_s(self, component: Component) -> float:
        """Total active seconds of one component per iteration."""
        table = self._fast_table()
        if table is not None:
            return table.active_total_s(component)
        return sum(p.active_s(component) * p.count for p in self.profiles)

    def temporal_utilization(self, component: Component, strict: bool = False) -> float:
        """Active time over busy time (the Figures 4, 6, 8, 9 metric).

        An over-unity ratio indicates a timing-model bug (per-operator
        active times are clamped to the operator latency, so it cannot
        arise structurally).  It is logged as a warning and clamped; with
        ``strict=True`` it raises :class:`UtilizationError` instead.
        """
        total = self.total_time_s
        if total <= 0:
            return 0.0
        ratio = self.active_s(component) / total
        if ratio > 1.0 + UTILIZATION_TOLERANCE:
            message = (
                f"temporal utilization of {component.value} on {self.graph.name!r} "
                f"is {ratio:.9f} > 1: active time exceeds busy time "
                "(timing-model bug?)"
            )
            if strict:
                raise UtilizationError(message)
            _LOG.warning("%s; clamping to 1.0", message)
        return min(1.0, ratio)

    def dynamic_energy_j(self, component: Component) -> float:
        """Total dynamic energy of one component per iteration."""
        table = self._fast_table()
        if table is not None:
            return table.dynamic_total_j(component)
        return sum(p.dynamic_energy_j[component] * p.count for p in self.profiles)

    def total_dynamic_energy_j(self) -> float:
        return sum(self.dynamic_energy_j(c) for c in Component.all())

    # ------------------------------------------------------------------ #
    def sa_spatial_utilization(self) -> float:
        """SA-active-time-weighted spatial utilization (Figure 5 metric)."""
        table = self._fast_table()
        if table is not None:
            return table.sa_spatial_utilization()
        weighted = 0.0
        total = 0.0
        for profile in self.profiles:
            active = profile.active_s(Component.SA) * profile.count
            if active <= 0:
                continue
            weighted += profile.times.sa_spatial_util * active
            total += active
        if total <= 0:
            return 0.0
        return weighted / total

    def sram_demand_distribution(self) -> list[tuple[float, float]]:
        """(demand_bytes, time_s) pairs, one per operator (Figure 7)."""
        table = self._fast_table()
        if table is not None:
            return table.sram_demand_distribution()
        return [
            (profile.sram_demand_bytes, profile.latency_s * profile.count)
            for profile in self.profiles
        ]

    def gap_profiles(self, component: Component) -> list[GapProfile]:
        """All idle-gap families of one component per iteration."""
        table = self._fast_table()
        if table is not None:
            gap_s, _, num_total = table.gap_table(component)
            return [
                GapProfile(component=component, gap_s=gap, num_gaps=num)
                for gap, num in zip(gap_s.tolist(), num_total.tolist())
                if num > 0
            ]
        gaps: list[GapProfile] = []
        for profile in self.profiles:
            for gap in profile.gap_profiles():
                if gap.component is component:
                    gaps.append(
                        GapProfile(
                            component=component,
                            gap_s=gap.gap_s,
                            num_gaps=gap.num_gaps * profile.count,
                        )
                    )
        return gaps

    def idle_s(self, component: Component) -> float:
        """Total idle seconds of one component per iteration."""
        return max(0.0, self.total_time_s - self.active_s(component))


class NPUSimulator:
    """Simulates a workload graph on one NPU chip."""

    #: Process-wide count of full-graph simulations.  Instrumentation for
    #: the experiment cache: a warm sweep must not increment this.
    simulate_calls: ClassVar[int] = 0

    @classmethod
    def reset_simulate_calls(cls) -> int:
        """Reset the instrumentation counter, returning the old value."""
        previous = NPUSimulator.simulate_calls
        NPUSimulator.simulate_calls = 0
        return previous

    def __init__(self, chip: NPUChipSpec, apply_fusion: bool = True):
        self.chip = chip
        self.apply_fusion = apply_fusion
        self.timing = OperatorTimingModel(chip)
        self.tiling = TilingPass(chip)
        self.power_model = ChipPowerModel.for_chip(chip)

    # ------------------------------------------------------------------ #
    def _dynamic_energy(self, op: Operator, times: ComponentTimes) -> dict[Component, float]:
        dyn = self.power_model.dynamic
        sa_flops = op.sa_flops if times.sa_mapped else 0.0
        vu_flops = op.vu_flops + (0.0 if times.sa_mapped else op.sa_flops)
        # SRAM traffic: staging HBM transfers plus operand/result streaming
        # for the compute units (with full reuse inside the SA).
        sram_bytes = (
            2.0 * op.hbm_bytes
            + sa_flops * 2.0 * op.dtype_bytes / self.chip.sa_width
            + vu_flops * op.dtype_bytes
        )
        energies = {
            Component.SA: dyn.sa_energy(sa_flops),
            Component.VU: dyn.vu_energy(vu_flops),
            Component.SRAM: dyn.sram_energy(sram_bytes),
            Component.HBM: dyn.hbm_energy(op.hbm_bytes),
            Component.ICI: dyn.ici_energy(op.ici_bytes),
        }
        energies[Component.OTHER] = dyn.other_energy(sum(energies.values()))
        return energies

    def simulate_operator(self, op: Operator) -> OperatorProfile:
        """Simulate a single operator."""
        times = self.timing.times(op)
        tile_info = self.tiling.tile(op)
        return OperatorProfile(
            operator=op,
            times=times,
            tile_info=tile_info,
            dynamic_energy_j=self._dynamic_energy(op, times),
        )

    def simulate(self, graph: OperatorGraph | GraphTable) -> WorkloadProfile:
        """Simulate one iteration of a workload graph.

        Accepts either IR.  On the columnar fast path the graph runs
        through the array-native frontend end to end — vectorized
        fusion, tiling, timing and dynamic energy over a
        :class:`~repro.workloads.table.GraphTable` — and the fused
        :class:`OperatorGraph` plus the per-operator profile objects are
        only materialized when somebody walks them.  The per-operator
        loop below is the reference oracle
        (``columnar.use_fast_path(False)``).  Both produce bit-identical
        profiles.
        """
        NPUSimulator.simulate_calls += 1
        if columnar.fast_path_enabled():
            table = graph if isinstance(graph, GraphTable) else GraphTable.from_graph(graph)
            table.validate()
            demand = None
            if self.apply_fusion:
                fusion = FusionPass(self.chip).run_table(table)
                table = fusion.table
                # Fusion never changes an input of the demand expressions,
                # so its fuse-decision demands are reusable — but only when
                # the simulator's tiling matches the fusion pass's default
                # (double-buffered) configuration.
                if self.tiling.double_buffer:
                    demand = fusion.demands
            batch = columnar.batch_simulate_table(
                table, self.chip, self.power_model.dynamic, self.tiling,
                sram_demand=demand,
            )
            fused_graph = table.lazy_graph()
            profile = WorkloadProfile(
                graph=fused_graph,
                chip=self.chip,
                profiles=_LazyOperatorProfiles(
                    lambda: self._materialize(fused_graph, batch)
                ),
            )
            profile._attach_table(batch.table)
            return profile
        if isinstance(graph, GraphTable):
            graph = graph.to_graph()
        graph.validate()
        if self.apply_fusion:
            graph, _groups = FusionPass(self.chip).run(graph)
        profile = WorkloadProfile(graph=graph, chip=self.chip)
        for op in graph.operators:
            profile.profiles.append(self.simulate_operator(op))
        return profile

    # ------------------------------------------------------------------ #
    def _materialize(
        self, graph: OperatorGraph, batch: BatchSimulation
    ) -> list[OperatorProfile]:
        """Build the per-operator objects from one batch simulation."""
        table = batch.table
        profiles: list[OperatorProfile] = []
        components = Component.all()
        dynamic_columns = [table.dynamic[c].tolist() for c in components]
        sa_s = batch.sa_s.tolist()
        vu_s = batch.vu_s.tolist()
        hbm_s = batch.hbm_s.tolist()
        ici_s = batch.ici_s.tolist()
        sa_mapped = table.sa_mapped.tolist()
        sa_util = table.sa_spatial_util.tolist()
        demand = table.sram_demand_bytes.tolist()
        weight_tiles = table.num_weight_tiles.tolist()
        output_tiles = table.num_output_tiles.tolist()
        dma_bursts = table.num_dma_bursts.tolist()
        tile_m = batch.tile_m.tolist()
        tile_k = batch.tile_k.tolist()
        tile_n = batch.tile_n.tolist()
        for index, op in enumerate(graph.operators):
            times = ComponentTimes(
                sa_s=sa_s[index],
                vu_s=vu_s[index],
                hbm_s=hbm_s[index],
                ici_s=ici_s[index],
                overhead_s=batch.overhead_s,
                sa_mapped=sa_mapped[index],
                sa_spatial_util=sa_util[index],
            )
            tile_info = TileInfo(
                sram_demand_bytes=demand[index],
                num_weight_tiles=int(weight_tiles[index]),
                num_output_tiles=int(output_tiles[index]),
                num_dma_bursts=int(dma_bursts[index]),
                tile_m=int(tile_m[index]),
                tile_k=int(tile_k[index]),
                tile_n=int(tile_n[index]),
            )
            energy = {
                component: dynamic_columns[position][index]
                for position, component in enumerate(components)
            }
            profiles.append(
                OperatorProfile(
                    operator=op, times=times, tile_info=tile_info,
                    dynamic_energy_j=energy,
                )
            )
        return profiles


__all__ = [
    "GapProfile",
    "NPUSimulator",
    "OperatorProfile",
    "UTILIZATION_TOLERANCE",
    "UtilizationError",
    "WorkloadProfile",
]
