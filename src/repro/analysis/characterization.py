"""Characterization study (§3 of the paper): Figures 2-9.

These helpers run the simulator across workloads and NPU generations and
return the exact series the paper plots: energy efficiency per
generation (Figure 2), the static/dynamic energy breakdown per component
(Figure 3), the temporal utilization of SAs, VUs, ICI and HBM (Figures
4, 6, 8, 9), the SA spatial utilization (Figure 5), and the SRAM demand
distribution (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DEFAULT_DUTY_CYCLE, DEFAULT_PUE, SimulationConfig
from repro.core.regate import simulate_workload
from repro.core.results import SimulationResult
from repro.gating.report import PolicyName
from repro.hardware.components import Component
from repro.hardware.power import ChipPowerModel
from repro.workloads.registry import get_workload

#: The NPU generations covered by the characterization figures.
CHARACTERIZATION_CHIPS = ("NPU-A", "NPU-B", "NPU-C", "NPU-D")

#: Workload groups as presented in the paper's figures.
LLM_MODELS = ("llama3-8b", "llama2-13b", "llama3-70b", "llama3.1-405b")
LLM_PHASES = ("training", "prefill", "decode")
DLRM_WORKLOADS = ("dlrm-s-inference", "dlrm-m-inference", "dlrm-l-inference")
DIFFUSION_WORKLOADS = ("dit-xl-inference", "gligen-inference")


def all_characterization_workloads() -> list[str]:
    """Every workload appearing in the §3 study."""
    names = [f"{model}-{phase}" for model in LLM_MODELS for phase in LLM_PHASES]
    names.extend(DLRM_WORKLOADS)
    names.extend(DIFFUSION_WORKLOADS)
    return names


def simulate_on(workload: str, chip: str, policy: PolicyName = PolicyName.NOPG) -> SimulationResult:
    """Simulate a workload on one NPU generation with its default pod size."""
    config = SimulationConfig(chip=chip, policies=(policy,))
    return simulate_workload(workload, config)


# ---------------------------------------------------------------------- #
# Figure 2: energy efficiency across NPU generations
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class EfficiencyPoint:
    """One bar of Figure 2."""

    workload: str
    chip: str
    energy_per_work_j: float
    iteration_unit: str


def energy_efficiency(
    workloads: list[str] | None = None,
    chips: tuple[str, ...] = CHARACTERIZATION_CHIPS,
) -> list[EfficiencyPoint]:
    """Energy per unit of work for each workload on each generation."""
    workloads = workloads or all_characterization_workloads()
    points = []
    for workload in workloads:
        for chip in chips:
            result = simulate_on(workload, chip)
            points.append(
                EfficiencyPoint(
                    workload=workload,
                    chip=chip,
                    energy_per_work_j=result.energy_per_work(PolicyName.NOPG),
                    iteration_unit=result.iteration_unit,
                )
            )
    return points


# ---------------------------------------------------------------------- #
# Figure 3: energy breakdown
# ---------------------------------------------------------------------- #
@dataclass
class EnergyBreakdown:
    """Normalized energy shares of one workload on one generation."""

    workload: str
    chip: str
    idle_fraction: float
    static_fractions: dict[Component, float] = field(default_factory=dict)
    dynamic_fractions: dict[Component, float] = field(default_factory=dict)

    @property
    def busy_static_fraction(self) -> float:
        """Static share of the busy (non-idle) energy."""
        busy = 1.0 - self.idle_fraction
        if busy <= 0:
            return 0.0
        return sum(self.static_fractions.values()) / busy


def energy_breakdown(
    workload: str,
    chip: str,
    duty_cycle: float = DEFAULT_DUTY_CYCLE,
) -> EnergyBreakdown:
    """Static/dynamic/idle energy shares for one workload (Figure 3)."""
    result = simulate_on(workload, chip)
    report = result.report(PolicyName.NOPG)
    power_model = ChipPowerModel(result.chip)
    idle_seconds = report.total_time_s * (1.0 - duty_cycle) / duty_cycle
    idle_energy = power_model.idle_power_w * idle_seconds
    total = report.total_energy_j + idle_energy
    breakdown = EnergyBreakdown(
        workload=workload,
        chip=chip,
        idle_fraction=idle_energy / total,
    )
    for component in Component.all():
        breakdown.static_fractions[component] = (
            report.static_energy_j.get(component, 0.0) / total
        )
        breakdown.dynamic_fractions[component] = (
            report.dynamic_energy_j.get(component, 0.0) / total
        )
    return breakdown


# ---------------------------------------------------------------------- #
# Figures 4, 6, 8, 9: temporal utilization; Figure 5: spatial utilization
# ---------------------------------------------------------------------- #
def temporal_utilization(
    component: Component,
    workloads: list[str],
    chips: tuple[str, ...] = CHARACTERIZATION_CHIPS,
) -> dict[tuple[str, str], float]:
    """Temporal utilization of one component per (workload, chip)."""
    table = {}
    for workload in workloads:
        for chip in chips:
            result = simulate_on(workload, chip)
            table[(workload, chip)] = result.temporal_utilization(component)
    return table


def sa_spatial_utilization(
    workloads: list[str],
    chips: tuple[str, ...] = CHARACTERIZATION_CHIPS,
) -> dict[tuple[str, str], float]:
    """SA spatial utilization per (workload, chip) (Figure 5)."""
    table = {}
    for workload in workloads:
        for chip in chips:
            result = simulate_on(workload, chip)
            table[(workload, chip)] = result.sa_spatial_utilization()
    return table


# ---------------------------------------------------------------------- #
# Figure 7: SRAM demand distribution
# ---------------------------------------------------------------------- #
def sram_demand_cdf(workload: str, chip: str = "NPU-D") -> list[tuple[float, float]]:
    """CDF of SRAM demand weighted by operator execution time.

    Returns (demand_bytes, cumulative_time_fraction) points sorted by
    demand — the Figure 7 series.
    """
    result = simulate_on(workload, chip)
    pairs = sorted(result.profile.sram_demand_distribution(), key=lambda p: p[0])
    total_time = sum(duration for _, duration in pairs)
    if total_time <= 0:
        return []
    cdf = []
    cumulative = 0.0
    for demand, duration in pairs:
        cumulative += duration
        cdf.append((demand, cumulative / total_time))
    return cdf


def sram_demand_percentile(
    workload: str, percentile: float, chip: str = "NPU-D"
) -> float:
    """SRAM demand (bytes) at a given execution-time percentile."""
    if not 0.0 <= percentile <= 1.0:
        raise ValueError("percentile must be in [0, 1]")
    cdf = sram_demand_cdf(workload, chip)
    for demand, fraction in cdf:
        if fraction >= percentile:
            return demand
    return cdf[-1][0] if cdf else 0.0


__all__ = [
    "CHARACTERIZATION_CHIPS",
    "DIFFUSION_WORKLOADS",
    "DLRM_WORKLOADS",
    "EfficiencyPoint",
    "EnergyBreakdown",
    "LLM_MODELS",
    "LLM_PHASES",
    "all_characterization_workloads",
    "energy_breakdown",
    "energy_efficiency",
    "sa_spatial_utilization",
    "simulate_on",
    "sram_demand_cdf",
    "sram_demand_percentile",
    "temporal_utilization",
]
