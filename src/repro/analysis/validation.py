"""Simulator validation (Figure 16 analogue).

The paper validates its performance simulator against real TPUv4 chips,
reporting the Pearson correlation (R^2) of profiled vs. simulated
execution times across models, batch sizes and parallelism settings, and
across representative single operators.

We have no TPUs, so the reproduction validates the operator-level
simulator against an *independent first-principles roofline reference*:
the reference ignores the per-operator decomposition and instead bounds
the whole graph by aggregate FLOPs, HBM bytes and ICI bytes with perfect
overlap.  The two models are computed differently, so a high correlation
across a sweep of configurations is a meaningful internal-consistency
check — the same role Figure 16 plays in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.regate import simulate_graph, simulate_workload
from repro.gating.report import PolicyName
from repro.hardware.chips import NPUChipSpec, get_chip
from repro.simulator.timing import HBM_EFFICIENCY, ICI_EFFICIENCY
from repro.workloads.base import OperatorGraph, ParallelismConfig
from repro.workloads.llm import build_decode_graph, build_prefill_graph
from repro.workloads.registry import get_workload


def roofline_reference_time_s(graph: OperatorGraph, chip: NPUChipSpec) -> float:
    """Aggregate roofline execution-time estimate for a whole graph.

    Bounds the execution by total matrix FLOPs at peak SA throughput,
    total vector FLOPs at peak VU throughput, total HBM traffic at
    effective bandwidth and total ICI traffic at effective bandwidth,
    assuming perfect overlap across operators.
    """
    sa_time = graph.total_sa_flops / chip.peak_sa_flops
    vu_time = graph.total_vu_flops / chip.peak_vu_flops
    hbm_time = graph.total_hbm_bytes / (chip.hbm_bandwidth_bytes * HBM_EFFICIENCY)
    ici_time = graph.total_ici_bytes / (chip.ici_bandwidth_bytes * ICI_EFFICIENCY)
    return max(sa_time, vu_time, hbm_time, ici_time)


def pearson_r_squared(xs: list[float], ys: list[float]) -> float:
    """Squared Pearson correlation coefficient of two series."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two paired samples")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    r = cov / math.sqrt(var_x * var_y)
    return r * r


@dataclass(frozen=True)
class ValidationSeries:
    """Paired simulated/reference times for one validation scenario."""

    name: str
    simulated_s: list[float]
    reference_s: list[float]

    @property
    def r_squared(self) -> float:
        return pearson_r_squared(self.simulated_s, self.reference_s)


def validate_llm(
    model: str,
    phase: str,
    chip: str = "NPU-D",
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16),
    tensor_degrees: tuple[int, ...] = (1, 2, 4, 8),
) -> ValidationSeries:
    """Validate end-to-end LLM times across batch and parallelism sweeps."""
    chip_spec = get_chip(chip)
    simulated, reference = [], []
    for batch in batch_sizes:
        for tensor in tensor_degrees:
            parallelism = ParallelismConfig(data=1, tensor=tensor, pipeline=1)
            if phase == "prefill":
                graph = build_prefill_graph(model, batch, 4096, parallelism)
            else:
                graph = build_decode_graph(model, batch, 4096, 512, parallelism)
            config = SimulationConfig(
                chip=chip, parallelism=parallelism, policies=(PolicyName.NOPG,)
            )
            result = simulate_graph(graph, config)
            simulated.append(result.report(PolicyName.NOPG).total_time_s)
            reference.append(roofline_reference_time_s(graph, chip_spec))
    return ValidationSeries(
        name=f"{model}-{phase}", simulated_s=simulated, reference_s=reference
    )


def validate_single_operators(chip: str = "NPU-D") -> dict[str, ValidationSeries]:
    """Validate representative operators (MatMul, LayerNorm, collectives)."""
    from repro.workloads.base import (
        CollectiveKind,
        OperatorGraph,
        WorkloadPhase,
        collective_op,
        elementwise_op,
        matmul_op,
    )

    chip_spec = get_chip(chip)
    scenarios: dict[str, ValidationSeries] = {}

    def run(name: str, operators) -> ValidationSeries:
        simulated, reference = [], []
        for op in operators:
            graph = OperatorGraph(
                name=f"single-{name}", phase=WorkloadPhase.INFERENCE, operators=[op]
            )
            config = SimulationConfig(chip=chip, policies=(PolicyName.NOPG,))
            result = simulate_graph(graph, config)
            simulated.append(result.report(PolicyName.NOPG).total_time_s)
            reference.append(roofline_reference_time_s(graph, chip_spec))
        return ValidationSeries(name=name, simulated_s=simulated, reference_s=reference)

    sizes = (256, 512, 1024, 2048, 4096, 8192)
    scenarios["matmul"] = run(
        "matmul", [matmul_op(f"matmul_{n}", m=n, k=n, n=n) for n in sizes]
    )
    scenarios["layernorm"] = run(
        "layernorm",
        [
            elementwise_op(f"layernorm_{n}", elements=n * 8192, flops_per_element=16.0)
            for n in sizes
        ],
    )
    scenarios["reducescatter"] = run(
        "reducescatter",
        [
            collective_op(
                f"reducescatter_{n}",
                CollectiveKind.REDUCE_SCATTER,
                payload_bytes=n * 1024 * 1024,
                num_chips=8,
            )
            for n in sizes
        ],
    )
    scenarios["allgather"] = run(
        "allgather",
        [
            collective_op(
                f"allgather_{n}",
                CollectiveKind.ALL_GATHER,
                payload_bytes=n * 1024 * 1024,
                num_chips=8,
            )
            for n in sizes
        ],
    )
    return scenarios


__all__ = [
    "ValidationSeries",
    "pearson_r_squared",
    "roofline_reference_time_s",
    "validate_llm",
    "validate_single_operators",
]
