"""Analyses that regenerate the paper's tables and figures."""

from repro.analysis import characterization, evaluation, sensitivity, validation
from repro.analysis.tables import format_table

__all__ = [
    "characterization",
    "evaluation",
    "format_table",
    "sensitivity",
    "validation",
]
