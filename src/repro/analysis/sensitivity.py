"""Sensitivity analyses (§6.5): Figures 21, 22 and 23.

The effectiveness of power gating depends on circuit-level parameters:
the leakage of gated logic and drowsy/off SRAM (threshold and retention
voltages), the power-gate/wake-up delay, and the chip generation.  These
sweeps mirror the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.regate import simulate_workload
from repro.gating.bet import (
    DEFAULT_PARAMETERS,
    FIGURE21_LEAKAGE_POINTS,
    FIGURE22_DELAY_MULTIPLIERS,
)
from repro.gating.report import PolicyName

#: Workloads shown in the sensitivity figures.
SENSITIVITY_WORKLOADS = (
    "llama3.1-405b-training",
    "llama3.1-405b-prefill",
    "llama3.1-405b-decode",
    "dlrm-l-inference",
    "dit-xl-inference",
)

GATING_POLICIES = (
    PolicyName.REGATE_BASE,
    PolicyName.REGATE_HW,
    PolicyName.REGATE_FULL,
)


@dataclass(frozen=True)
class SensitivityPoint:
    """Energy savings (and overhead) of one policy at one sweep point."""

    workload: str
    policy: PolicyName
    parameter: str
    savings: float
    overhead: float


# ---------------------------------------------------------------------- #
# Figure 21: leakage-ratio sweep
# ---------------------------------------------------------------------- #
def leakage_sensitivity(
    workload: str,
    chip: str = "NPU-D",
    points: tuple[tuple[float, float, float], ...] = FIGURE21_LEAKAGE_POINTS,
) -> list[SensitivityPoint]:
    """Energy savings for each (logic-off, SRAM-sleep, SRAM-off) leakage point."""
    results = []
    for logic_off, sram_sleep, sram_off in points:
        parameters = DEFAULT_PARAMETERS.with_leakage(logic_off, sram_sleep, sram_off)
        config = SimulationConfig(chip=chip, gating_parameters=parameters)
        result = simulate_workload(workload, config)
        label = f"{logic_off}/{sram_sleep}/{sram_off}"
        for policy in GATING_POLICIES:
            results.append(
                SensitivityPoint(
                    workload=workload,
                    policy=policy,
                    parameter=label,
                    savings=result.energy_savings(policy),
                    overhead=result.performance_overhead(policy),
                )
            )
    return results


# ---------------------------------------------------------------------- #
# Figure 22: wake-up delay sweep
# ---------------------------------------------------------------------- #
def delay_sensitivity(
    workload: str,
    chip: str = "NPU-D",
    multipliers: tuple[float, ...] = FIGURE22_DELAY_MULTIPLIERS,
) -> list[SensitivityPoint]:
    """Energy savings and overhead for scaled power-gate/wake-up delays."""
    results = []
    for multiplier in multipliers:
        parameters = DEFAULT_PARAMETERS.with_delay_multiplier(multiplier)
        config = SimulationConfig(chip=chip, gating_parameters=parameters)
        result = simulate_workload(workload, config)
        for policy in GATING_POLICIES:
            results.append(
                SensitivityPoint(
                    workload=workload,
                    policy=policy,
                    parameter=f"{multiplier}x",
                    savings=result.energy_savings(policy),
                    overhead=result.performance_overhead(policy),
                )
            )
    return results


# ---------------------------------------------------------------------- #
# Figure 23: NPU generations (including the projected NPU-E)
# ---------------------------------------------------------------------- #
def generation_sensitivity(
    workload: str,
    chips: tuple[str, ...] = ("NPU-A", "NPU-B", "NPU-C", "NPU-D", "NPU-E"),
) -> list[SensitivityPoint]:
    """Energy savings of each design on every NPU generation (Figure 23)."""
    results = []
    for chip in chips:
        config = SimulationConfig(chip=chip)
        result = simulate_workload(workload, config)
        for policy in (*GATING_POLICIES, PolicyName.IDEAL):
            results.append(
                SensitivityPoint(
                    workload=workload,
                    policy=policy,
                    parameter=chip,
                    savings=result.energy_savings(policy),
                    overhead=result.performance_overhead(policy),
                )
            )
    return results


__all__ = [
    "GATING_POLICIES",
    "SENSITIVITY_WORKLOADS",
    "SensitivityPoint",
    "delay_sensitivity",
    "generation_sensitivity",
    "leakage_sensitivity",
]
