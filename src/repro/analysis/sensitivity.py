"""Sensitivity analyses (§6.5): Figures 21, 22 and 23.

The effectiveness of power gating depends on circuit-level parameters:
the leakage of gated logic and drowsy/off SRAM (threshold and retention
voltages), the power-gate/wake-up delay, and the chip generation.  These
sweeps mirror the paper's.

All three analyses are expressed as :class:`~repro.experiments.SweepSpec`
grids executed by the :class:`~repro.experiments.SweepRunner`.  Gating
parameters only affect the policy evaluation, not the performance
simulation, so a shared :class:`~repro.experiments.SimulationCache`
simulates each (workload, chip) profile once and re-evaluates it at
every sweep point; callers may pass their own cache to share profiles
across analyses as well.

On the columnar fast path the runner prices each figure's grid through
the grid-batched policy kernel
(:meth:`~repro.gating.policies.PowerGatingPolicy.grid_evaluate`): per
policy, a single vectorized call covers every (workload profile ×
gating-parameter point) cell — the figures' sweeps no longer re-enter
the evaluator once per parameter point.  ``workload`` may be a single
name or a sequence; passing all of :data:`SENSITIVITY_WORKLOADS` at
once (or using :func:`sensitivity_suite`) hands the kernel the widest
profile batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments import SimulationCache, SweepRunner, SweepSpec
from repro.gating.bet import (
    DEFAULT_PARAMETERS,
    FIGURE21_LEAKAGE_POINTS,
    FIGURE22_DELAY_MULTIPLIERS,
)
from repro.gating.report import PolicyName

#: Workloads shown in the sensitivity figures.
SENSITIVITY_WORKLOADS = (
    "llama3.1-405b-training",
    "llama3.1-405b-prefill",
    "llama3.1-405b-decode",
    "dlrm-l-inference",
    "dit-xl-inference",
)

GATING_POLICIES = (
    PolicyName.REGATE_BASE,
    PolicyName.REGATE_HW,
    PolicyName.REGATE_FULL,
)


@dataclass(frozen=True)
class SensitivityPoint:
    """Energy savings (and overhead) of one policy at one sweep point."""

    workload: str
    policy: PolicyName
    parameter: str
    savings: float
    overhead: float


def _run(
    spec: SweepSpec,
    policies: tuple[PolicyName, ...],
    parameter_column: str,
    cache: SimulationCache | None,
) -> list[SensitivityPoint]:
    """Execute a sweep and project its rows onto sensitivity points.

    With ``cache=None`` the runner's own run-scoped cache still shares
    the workload profile across the sweep's gating-parameter points.
    """
    table = SweepRunner(spec, cache=cache).run()
    wanted = {policy.value: policy for policy in policies}
    return [
        SensitivityPoint(
            workload=row["workload"],
            policy=wanted[row["policy"]],
            parameter=str(row[parameter_column]),
            savings=row["savings_vs_nopg"],
            overhead=row["overhead_vs_nopg"],
        )
        for row in table
        if row["policy"] in wanted
    ]


def _as_workloads(workload: "str | Sequence[str]") -> tuple[str, ...]:
    if isinstance(workload, str):
        return (workload,)
    return tuple(workload)


# ---------------------------------------------------------------------- #
# Figure 21: leakage-ratio sweep
# ---------------------------------------------------------------------- #
def leakage_sensitivity(
    workload: "str | Sequence[str]",
    chip: str = "NPU-D",
    points: tuple[tuple[float, float, float], ...] = FIGURE21_LEAKAGE_POINTS,
    cache: SimulationCache | None = None,
) -> list[SensitivityPoint]:
    """Energy savings for each (logic-off, SRAM-sleep, SRAM-off) leakage point."""
    spec = SweepSpec(
        workloads=_as_workloads(workload),
        chips=(chip,),
        policies=GATING_POLICIES,
        gating_parameters=tuple(
            (
                f"{logic_off}/{sram_sleep}/{sram_off}",
                DEFAULT_PARAMETERS.with_leakage(logic_off, sram_sleep, sram_off),
            )
            for logic_off, sram_sleep, sram_off in points
        ),
    )
    return _run(spec, GATING_POLICIES, "gating_label", cache)


# ---------------------------------------------------------------------- #
# Figure 22: wake-up delay sweep
# ---------------------------------------------------------------------- #
def delay_sensitivity(
    workload: "str | Sequence[str]",
    chip: str = "NPU-D",
    multipliers: tuple[float, ...] = FIGURE22_DELAY_MULTIPLIERS,
    cache: SimulationCache | None = None,
) -> list[SensitivityPoint]:
    """Energy savings and overhead for scaled power-gate/wake-up delays."""
    spec = SweepSpec(
        workloads=_as_workloads(workload),
        chips=(chip,),
        policies=GATING_POLICIES,
        gating_parameters=tuple(
            (f"{multiplier}x", DEFAULT_PARAMETERS.with_delay_multiplier(multiplier))
            for multiplier in multipliers
        ),
    )
    return _run(spec, GATING_POLICIES, "gating_label", cache)


# ---------------------------------------------------------------------- #
# Figure 23: NPU generations (including the projected NPU-E)
# ---------------------------------------------------------------------- #
def generation_sensitivity(
    workload: "str | Sequence[str]",
    chips: tuple[str, ...] = ("NPU-A", "NPU-B", "NPU-C", "NPU-D", "NPU-E"),
    cache: SimulationCache | None = None,
) -> list[SensitivityPoint]:
    """Energy savings of each design on every NPU generation (Figure 23)."""
    policies = (*GATING_POLICIES, PolicyName.IDEAL)
    spec = SweepSpec(
        workloads=_as_workloads(workload), chips=chips, policies=policies
    )
    return _run(spec, policies, "chip", cache)


# ---------------------------------------------------------------------- #
# The full 3-figure suite
# ---------------------------------------------------------------------- #
def sensitivity_suite(
    workloads: Sequence[str] = SENSITIVITY_WORKLOADS,
    chip: str = "NPU-D",
    cache: SimulationCache | None = None,
) -> dict[str, list[SensitivityPoint]]:
    """Run Figures 21, 22 and 23 for all workloads with one shared cache.

    Each figure is a single multi-workload sweep, so per policy the
    runner prices the whole (workload-profile × parameter-point) grid in
    one grid-kernel call; the shared cache simulates every (workload,
    chip) profile exactly once across the three figures.
    """
    cache = cache if cache is not None else SimulationCache()
    workloads = tuple(workloads)
    return {
        "figure21": leakage_sensitivity(workloads, chip=chip, cache=cache),
        "figure22": delay_sensitivity(workloads, chip=chip, cache=cache),
        "figure23": generation_sensitivity(workloads, cache=cache),
    }


__all__ = [
    "GATING_POLICIES",
    "SENSITIVITY_WORKLOADS",
    "SensitivityPoint",
    "delay_sensitivity",
    "generation_sensitivity",
    "leakage_sensitivity",
    "sensitivity_suite",
]
