"""Evaluation analyses (§6.2-§6.4): Figures 17, 18, 19, 20 and 24.

Each helper runs the five designs (NoPG, ReGate-Base, ReGate-HW,
ReGate-Full, Ideal) on one workload and extracts the series the paper
plots: per-component energy-saving breakdowns, average/peak power,
performance overhead, ``setpm`` instruction rates, and operational
carbon reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.carbon.operational import OperationalCarbonModel
from repro.core.config import SimulationConfig
from repro.core.regate import simulate_workload
from repro.core.results import SimulationResult
from repro.gating.report import PolicyName
from repro.hardware.components import Component

#: The workloads in the paper's evaluation figures (NPU-D defaults).
EVALUATION_WORKLOADS = (
    "llama3-8b-training",
    "llama2-13b-training",
    "llama3-70b-training",
    "llama3.1-405b-training",
    "llama3-8b-prefill",
    "llama2-13b-prefill",
    "llama3-70b-prefill",
    "llama3.1-405b-prefill",
    "llama3-8b-decode",
    "llama2-13b-decode",
    "llama3-70b-decode",
    "llama3.1-405b-decode",
    "dlrm-s-inference",
    "dlrm-m-inference",
    "dlrm-l-inference",
    "dit-xl-inference",
    "gligen-inference",
)

GATING_POLICIES = (
    PolicyName.REGATE_BASE,
    PolicyName.REGATE_HW,
    PolicyName.REGATE_FULL,
    PolicyName.IDEAL,
)


def evaluate(workload: str, chip: str = "NPU-D", config: SimulationConfig | None = None) -> SimulationResult:
    """Run all five policies on one workload."""
    config = config or SimulationConfig(chip=chip)
    if config.resolve_chip().name != chip:
        config = config.with_chip(chip)
    return simulate_workload(workload, config)


# ---------------------------------------------------------------------- #
# Figure 17: energy savings breakdown
# ---------------------------------------------------------------------- #
@dataclass
class SavingsBreakdown:
    """Energy savings of one policy, broken down by component."""

    workload: str
    policy: PolicyName
    total_savings: float
    by_component: dict[Component, float] = field(default_factory=dict)


def energy_savings_breakdown(
    workload: str, chip: str = "NPU-D", config: SimulationConfig | None = None
) -> list[SavingsBreakdown]:
    """Per-component energy savings of every policy vs NoPG (Figure 17)."""
    result = evaluate(workload, chip, config)
    breakdowns = []
    for policy in GATING_POLICIES:
        if policy not in result.reports:
            continue
        breakdown = SavingsBreakdown(
            workload=workload,
            policy=policy,
            total_savings=result.energy_savings(policy),
        )
        for component in Component.gateable():
            breakdown.by_component[component] = result.component_savings(policy, component)
        breakdowns.append(breakdown)
    return breakdowns


# ---------------------------------------------------------------------- #
# Figure 18: average and peak power
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PowerPoint:
    """Average/peak power of one policy on one workload (per chip)."""

    workload: str
    policy: PolicyName
    average_power_w: float
    peak_power_w: float


def power_consumption(
    workload: str, chip: str = "NPU-D", config: SimulationConfig | None = None
) -> list[PowerPoint]:
    """Average and peak per-chip power of every design (Figure 18)."""
    result = evaluate(workload, chip, config)
    return [
        PowerPoint(
            workload=workload,
            policy=policy,
            average_power_w=result.average_power_w(policy),
            peak_power_w=result.peak_power_w(policy),
        )
        for policy in result.reports
    ]


# ---------------------------------------------------------------------- #
# Figure 19: performance overhead
# ---------------------------------------------------------------------- #
def performance_overhead(
    workload: str, chip: str = "NPU-D", config: SimulationConfig | None = None
) -> dict[PolicyName, float]:
    """Slowdown of each gating design relative to NoPG (Figure 19)."""
    result = evaluate(workload, chip, config)
    return {
        policy: result.performance_overhead(policy)
        for policy in GATING_POLICIES
        if policy in result.reports
    }


# ---------------------------------------------------------------------- #
# Figure 20: setpm instruction rate
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SetpmRate:
    """Executed ``setpm`` instructions per 1,000 cycles (ReGate-Full)."""

    workload: str
    vu_setpm_per_kcycle: float
    sram_setpm_per_kcycle: float


def setpm_rate(workload: str, chip: str = "NPU-D") -> SetpmRate:
    """Estimate the Figure 20 metric from the gating-event counts.

    Every software-gated VU idle interval costs one power-off and one
    power-on ``setpm``; SRAM ``setpm`` instructions are only needed when
    the capacity demand changes (operator boundaries).
    """
    result = evaluate(workload, chip)
    report = result.report(PolicyName.REGATE_FULL)
    total_cycles = result.chip.seconds_to_cycles(report.total_time_s)
    if total_cycles <= 0:
        return SetpmRate(workload, 0.0, 0.0)
    vu_setpm = 2.0 * report.gating_events.get(Component.VU, 0.0)
    sram_setpm = 2.0 * report.gating_events.get(Component.SRAM, 0.0)
    return SetpmRate(
        workload=workload,
        vu_setpm_per_kcycle=1000.0 * vu_setpm / total_cycles,
        sram_setpm_per_kcycle=1000.0 * sram_setpm / total_cycles,
    )


# ---------------------------------------------------------------------- #
# Figure 24: operational carbon reduction
# ---------------------------------------------------------------------- #
def carbon_reduction(
    workload: str, chip: str = "NPU-D", config: SimulationConfig | None = None
) -> dict[PolicyName, float]:
    """Operational-carbon reduction of each design vs NoPG (Figure 24)."""
    result = evaluate(workload, chip, config)
    model = OperationalCarbonModel()
    return {
        policy: model.carbon_reduction(result, policy)
        for policy in GATING_POLICIES
        if policy in result.reports
    }


__all__ = [
    "EVALUATION_WORKLOADS",
    "GATING_POLICIES",
    "PowerPoint",
    "SavingsBreakdown",
    "SetpmRate",
    "carbon_reduction",
    "energy_savings_breakdown",
    "evaluate",
    "performance_overhead",
    "power_consumption",
    "setpm_rate",
]
