"""Performance benchmark harness for the columnar simulation core.

``repro perf`` times the hot paths of the reproduction twice — once on
the object-path reference (``columnar.use_fast_path(False)``) and once
on the columnar fast path — and writes the results to
``BENCH_perf.json`` so every commit's performance trajectory is
recorded.  The measured pairs are:

* **graph_construction** — building the large workload graph from its
  builder parameters (array-native ``GraphTable`` emission vs
  per-operator object construction);
* **cold_simulate** — one cold ``NPUSimulator.simulate`` of that graph
  (vectorized fusion/tiling/timing/energy over the ``GraphTable`` vs
  the per-operator rewrite and simulation loops);
* **policy_evaluation** — all five gating policies evaluated on one
  fresh profile (vectorized gap/leakage accounting vs per-gap loops);
* **batch_policy_evaluation** — every policy across a fleet of
  profiles (packed multi-profile ``batch_evaluate`` vs the per-profile
  object-path loop; the serving-style deployment benchmark);
* **sensitivity_sweep** — a Figure-22 style delay sweep (one profile,
  many gating-parameter points) through :mod:`repro.analysis.sensitivity`;
* **sensitivity_grid** — the grid-batched policy kernel
  (:meth:`~repro.gating.policies.PowerGatingPolicy.grid_evaluate`) vs
  the per-point path it replaced: every policy priced across the
  sensitivity workloads × a 25-point Figure 21 × Figure 22 parameter
  grid.  Both sides run on the columnar fast path — the pair isolates
  the grid kernel itself;
* **multi_chip_sweep** — a cold multi-chip × gating-parameter sweep
  through the runner (chip-major packed batches, one grid call per
  policy) vs the object-path oracle;
* **multi_machine_shard** — the same grid executed as independent
  shards (``repro sweep --shard``) with the multi-machine wall clock
  modelled as ``max(shard times) + merge time``, vs the monolithic
  run; measures how close sharding gets to ideal N-way scale-out
  after partition imbalance and artifact/merge overhead;
* **idle_detector** — the run-length-encoded detection-window state
  machine vs the stepwise :class:`~repro.gating.idle_detection.IdleDetector`;
* **serving_sim** — the fleet serving simulation's batching + queueing
  kernels (:mod:`repro.serving`) on a synthetic multi-workload trace:
  columnar batch formation and the cumsum/running-max FCFS recursion vs
  the event-at-a-time oracle.  Service times come from a synthetic
  table, so the pair isolates the queueing kernels from the simulator;
* **cold_sweep** — a cold multi-workload × multi-chip grid through the
  :class:`~repro.experiments.SweepRunner` (the ROADMAP's headline
  number; the grids are defined in :data:`PERF_GRIDS`).

Each side reports the min **and** mean of its repeats (min is the
stable machine-speed estimate the speedups use; the mean exposes
variance).  Both paths must produce byte-identical sweep tables — the
harness asserts this on every run, so the benchmark doubles as an
end-to-end equivalence check.  Regression checking compares *speedups*
(a machine-independent ratio) against a committed baseline.
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro import __version__
from repro.analysis.sensitivity import SENSITIVITY_WORKLOADS, delay_sensitivity
from repro.core.config import SimulationConfig
from repro.core.regate import resolve_execution
from repro.experiments import SimulationCache, SweepRunner, SweepSpec
from repro.gating.bet import (
    DEFAULT_PARAMETERS,
    FIGURE21_LEAKAGE_POINTS,
    FIGURE22_DELAY_MULTIPLIERS,
    ParameterTable,
)
from repro.gating.idle_detection import IdleDetector, run_length_idle_stats
from repro.gating.policies import get_policy
from repro.hardware.power import ChipPowerModel
from repro.simulator import columnar
from repro.simulator.engine import NPUSimulator
from repro.workloads.registry import get_workload, list_workloads

#: Workload used by the single-simulation and policy benchmarks: the
#: largest operator graph in the registry (the diffusion pipeline),
#: where the per-operator loops the columnar core replaces are hottest.
PERF_WORKLOAD = "gligen-inference"
PERF_CHIP = "NPU-D"

#: Sweep grids by name: (number of workloads, chips).  The workload
#: axis picks the N largest operator graphs from the registry (every
#: workload family stays represented), so the grid measures compute
#: rather than per-point bookkeeping.  ``full`` is the ROADMAP's
#: 64-point cold sweep; ``small`` keeps CI fast; ``tiny`` is for tests.
PERF_GRIDS: dict[str, tuple[int, tuple[str, ...]]] = {
    "tiny": (2, ("NPU-D",)),
    "small": (4, ("NPU-C", "NPU-D")),
    "full": (16, ("NPU-A", "NPU-B", "NPU-C", "NPU-D")),
}

#: Idle-detector benchmark trace: a repeating burst/idle pattern long
#: enough to make the stepwise oracle's per-cycle cost visible.
_DETECTOR_PATTERN = (
    [True] * 7 + [False] * 4 + [True] * 2 + [False] * 50 + [True] * 1 + [False] * 9
)
_DETECTOR_REPEATS = 2000
_DETECTOR_WINDOW = 16
_DETECTOR_DELAY = 4


@dataclass
class PerfResult:
    """One benchmark pair: object path vs columnar path.

    ``object_s``/``columnar_s`` are min-of-repeats (what the speedup and
    the regression gate use); the ``*_mean_s`` fields report the mean of
    the same repeats so run-to-run variance stays visible.
    """

    name: str
    object_s: float
    columnar_s: float
    object_mean_s: float = 0.0
    columnar_mean_s: float = 0.0

    @property
    def speedup(self) -> float:
        if self.columnar_s <= 0:
            return 0.0
        return self.object_s / self.columnar_s

    def to_dict(self) -> dict[str, float]:
        return {
            "object_s": self.object_s,
            "columnar_s": self.columnar_s,
            "object_mean_s": self.object_mean_s,
            "columnar_mean_s": self.columnar_mean_s,
            "speedup": self.speedup,
        }


def _timeit(fn: Callable[[], Any], repeat: int) -> tuple[float, float]:
    """(min, mean) wall time of ``repeat`` runs of ``fn`` in seconds."""
    samples: list[float] = []
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples), sum(samples) / len(samples)


def _interleaved(
    object_fn: Callable[[], Any],
    columnar_fn: Callable[[], Any],
    repeat: int,
) -> tuple[float, float, float, float]:
    """Paired round-robin timing of the two sides of one benchmark.

    Every repeat round takes one object-path sample immediately
    followed by one columnar sample, so slow machine-load drift hits
    both sides of the ratio alike.  Timing the sides in separate
    blocks (the harness's original scheme) lets background load land
    on one side only and skew the recorded speedup by 2x or more —
    exactly the ``sensitivity_grid`` "regression" this layout fixed.

    Returns ``(object_min, object_mean, columnar_min, columnar_mean)``
    in seconds.
    """
    object_samples: list[float] = []
    columnar_samples: list[float] = []
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        object_fn()
        object_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        columnar_fn()
        columnar_samples.append(time.perf_counter() - start)
    return (
        min(object_samples),
        sum(object_samples) / len(object_samples),
        min(columnar_samples),
        sum(columnar_samples) / len(columnar_samples),
    )


def _timed_pair(
    name: str,
    fn: Callable[[], Any],
    repeat: int,
    columnar_fn: Callable[[], Any] | None = None,
) -> PerfResult:
    """Time ``fn`` under both paths with interleaved paired sampling.

    ``columnar_fn`` overrides the callable timed on the fast path — for
    benchmarks whose columnar side consumes a different input (e.g. a
    ``GraphTable`` instead of an ``OperatorGraph``).  The path toggle
    rides inside each sample's callable; flipping the fast-path flag is
    nanoseconds against millisecond-scale benchmark bodies.
    """
    columnar_fn = columnar_fn or fn

    def object_side() -> None:
        with columnar.use_fast_path(False):
            fn()

    def columnar_side() -> None:
        with columnar.use_fast_path(True):
            columnar_fn()

    object_side()  # warm imports/registries outside the timed region
    columnar_side()
    object_s, object_mean_s, columnar_s, columnar_mean_s = _interleaved(
        object_side, columnar_side, repeat
    )
    return PerfResult(
        name=name,
        object_s=object_s,
        columnar_s=columnar_s,
        object_mean_s=object_mean_s,
        columnar_mean_s=columnar_mean_s,
    )


def perf_sweep_spec(grid: str) -> SweepSpec:
    """The cold-sweep grid of one :data:`PERF_GRIDS` entry."""
    if grid not in PERF_GRIDS:
        raise KeyError(
            f"unknown perf grid {grid!r}; choose from {sorted(PERF_GRIDS)}"
        )
    num_workloads, chips = PERF_GRIDS[grid]
    config = SimulationConfig()
    sizes: list[tuple[int, str]] = []
    for name in list_workloads():
        spec = get_workload(name)
        chip, batch, parallelism = resolve_execution(spec, config)
        graph = spec.build_graph(batch_size=batch, parallelism=parallelism)
        sizes.append((len(graph.operators), name))
    largest = [name for _, name in sorted(sizes, reverse=True)[:num_workloads]]
    # Registry order keeps the grid deterministic across runs.
    ordered = tuple(name for name in list_workloads() if name in largest)
    return SweepSpec(workloads=ordered, chips=chips)


# ---------------------------------------------------------------------- #
# Individual benchmarks
# ---------------------------------------------------------------------- #
def bench_graph_construction(repeat: int) -> PerfResult:
    """Builder parameters -> graph IR (object list vs GraphTable)."""
    spec = get_workload(PERF_WORKLOAD)
    config = SimulationConfig(chip=PERF_CHIP)
    _chip, batch, parallelism = resolve_execution(spec, config)
    return _timed_pair(
        "graph_construction",
        lambda: spec.build_graph(batch_size=batch, parallelism=parallelism),
        repeat,
        columnar_fn=lambda: spec.build_table(
            batch_size=batch, parallelism=parallelism
        ),
    )


def bench_cold_simulate(repeat: int) -> PerfResult:
    spec = get_workload(PERF_WORKLOAD)
    config = SimulationConfig(chip=PERF_CHIP)
    chip, batch, parallelism = resolve_execution(spec, config)
    graph = spec.build_graph(batch_size=batch, parallelism=parallelism)
    table = spec.build_table(batch_size=batch, parallelism=parallelism)
    return _timed_pair(
        "cold_simulate",
        lambda: NPUSimulator(chip).simulate(graph),
        repeat,
        columnar_fn=lambda: NPUSimulator(chip).simulate(table),
    )


def bench_policy_evaluation(repeat: int) -> PerfResult:
    spec = get_workload(PERF_WORKLOAD)
    config = SimulationConfig(chip=PERF_CHIP)
    chip, batch, parallelism = resolve_execution(spec, config)
    graph = spec.build_graph(batch_size=batch, parallelism=parallelism)
    table = spec.build_table(batch_size=batch, parallelism=parallelism)
    power_model = ChipPowerModel.for_chip(chip)

    def evaluate_all(source) -> None:
        # A fresh profile per run: "cold" includes building the gap
        # tables and factor arrays, exactly like one sweep point.
        profile = NPUSimulator(chip).simulate(source)
        for policy_name in config.policies:
            get_policy(policy_name, config.gating_parameters).evaluate(
                profile, power_model
            )

    return _timed_pair(
        "policy_evaluation",
        lambda: evaluate_all(graph),
        repeat,
        columnar_fn=lambda: evaluate_all(table),
    )


#: Fleet size of the batched policy-evaluation benchmark: the N largest
#: registry workloads, all profiled on :data:`PERF_CHIP`.
BATCH_EVAL_FLEET = 8


def bench_batch_policy_evaluation(repeat: int) -> PerfResult:
    """One policy set priced across a fleet of profiles (serving-style).

    Object side: the per-profile object-path loops.  Columnar side: one
    :class:`~repro.gating.policies.PackedProfiles` packing shared by all
    five policies, with every profile's derived caches dropped first so
    each run is cold like a fresh deployment evaluation.
    """
    from repro.gating.policies import PackedProfiles

    spec = perf_sweep_spec("full")
    workloads = spec.workloads[:BATCH_EVAL_FLEET]
    config = SimulationConfig(chip=PERF_CHIP)
    chip = config.resolve_chip()
    power_model = ChipPowerModel.for_chip(chip)
    profiles = []
    for name in workloads:
        workload_spec = get_workload(name)
        _chip, batch, parallelism = resolve_execution(workload_spec, config)
        table = workload_spec.build_table(batch_size=batch, parallelism=parallelism)
        profiles.append(NPUSimulator(chip).simulate(table))
    policies = [
        get_policy(policy_name, config.gating_parameters)
        for policy_name in config.policies
    ]

    def object_loop() -> None:
        for policy in policies:
            for profile in profiles:
                policy.evaluate(profile, power_model)

    def columnar_batch() -> None:
        for profile in profiles:
            profile.table.reset_caches()
        packed = PackedProfiles.pack(profiles)
        for policy in policies:
            policy.batch_evaluate(packed, power_model)

    return _timed_pair(
        "batch_policy_evaluation", object_loop, repeat, columnar_fn=columnar_batch
    )


def bench_sensitivity_sweep(repeat: int) -> PerfResult:
    return _timed_pair(
        "sensitivity_sweep",
        lambda: delay_sensitivity(PERF_WORKLOAD, chip=PERF_CHIP, cache=None),
        repeat,
    )


#: Gating-parameter grid of the ``sensitivity_grid`` benchmark: the
#: Figure 21 leakage points crossed with the Figure 22 delay
#: multipliers (25 points — the 3-figure sensitivity suite's axes).
SENSITIVITY_GRID_PARAMETERS = tuple(
    DEFAULT_PARAMETERS.with_leakage(*leakage).with_delay_multiplier(multiplier)
    for leakage in FIGURE21_LEAKAGE_POINTS
    for multiplier in FIGURE22_DELAY_MULTIPLIERS
)


def bench_sensitivity_grid(repeat: int) -> PerfResult:
    """Grid-batched policy kernel vs the per-point path it replaced.

    Unlike the other pairs, *both* sides run on the columnar fast path:
    the "object" side is the per-point path a sensitivity sweep used
    before the grid kernel (one ``batch_evaluate`` per gating-parameter
    point), the "columnar" side one
    :meth:`~repro.gating.policies.PowerGatingPolicy.grid_evaluate` per
    policy over the same packed profiles — so the pair isolates the
    speedup of the grid kernel itself.  Derived table/pack caches are
    dropped before every run (cold, like a fresh sweep), and the two
    sides are asserted report-identical before timing.
    """
    from repro.gating.policies import PackedProfiles

    config = SimulationConfig(chip=PERF_CHIP)
    chip = config.resolve_chip()
    power_model = ChipPowerModel.for_chip(chip)
    grid = SENSITIVITY_GRID_PARAMETERS
    with columnar.use_fast_path(True):
        profiles = []
        for name in SENSITIVITY_WORKLOADS:
            workload_spec = get_workload(name)
            _chip, batch, parallelism = resolve_execution(workload_spec, config)
            table = workload_spec.build_table(
                batch_size=batch, parallelism=parallelism
            )
            profiles.append(NPUSimulator(chip).simulate(table))

        def reset() -> "PackedProfiles":
            for profile in profiles:
                profile.table.reset_caches()
            return PackedProfiles.pack(profiles)

        def per_point() -> None:
            packed = reset()
            for policy_name in config.policies:
                for parameters in grid:
                    get_policy(policy_name, parameters).batch_evaluate(
                        packed, power_model
                    )

        def grid_batched() -> None:
            packed = reset()
            ptable = ParameterTable(grid)
            for policy_name in config.policies:
                get_policy(policy_name).grid_evaluate(packed, ptable, power_model)

        # The benchmark doubles as an equivalence check: every grid cell
        # must reproduce the per-point report bit-for-bit.
        packed = reset()
        ptable = ParameterTable(grid)
        for policy_name in config.policies:
            observed = get_policy(policy_name).grid_evaluate(
                packed, ptable, power_model
            )
            for index, parameters in enumerate(grid):
                expected = get_policy(policy_name, parameters).batch_evaluate(
                    packed, power_model
                )
                if observed.reports(index) != expected:  # pragma: no cover
                    raise AssertionError("sensitivity grid paths disagree")

        per_point()
        grid_batched()
        object_s, object_mean_s, columnar_s, columnar_mean_s = _interleaved(
            per_point, grid_batched, repeat
        )
    return PerfResult(
        "sensitivity_grid",
        object_s=object_s,
        columnar_s=columnar_s,
        object_mean_s=object_mean_s,
        columnar_mean_s=columnar_mean_s,
    )


#: Chip fleet of the ``multi_chip_sweep`` benchmark.
MULTI_CHIP_SWEEP_CHIPS = ("NPU-A", "NPU-B", "NPU-C", "NPU-D")


def multi_chip_sweep_spec() -> SweepSpec:
    """The multi-chip × delay-multiplier grid of ``multi_chip_sweep``."""
    base = perf_sweep_spec("small")
    return SweepSpec(
        workloads=base.workloads[:2],
        chips=MULTI_CHIP_SWEEP_CHIPS,
        gating_parameters=tuple(
            (f"{multiplier}x", DEFAULT_PARAMETERS.with_delay_multiplier(multiplier))
            for multiplier in FIGURE22_DELAY_MULTIPLIERS
        ),
    )


def bench_multi_chip_sweep(repeat: int) -> PerfResult:
    """A cold multi-chip × gating-parameter sweep through the runner.

    End-to-end counterpart of :func:`bench_sensitivity_grid`: the
    columnar side packs the whole chip fleet chip-major once per policy
    and prices the full (profile × parameter) grid per kernel call; the
    object side is the per-profile object-path oracle.  Both sides must
    produce byte-identical sweep tables.
    """
    spec = multi_chip_sweep_spec()

    def run_cold():
        return SweepRunner(spec, cache=None).run()

    def object_side():
        with columnar.use_fast_path(False):
            return run_cold()

    def columnar_side():
        with columnar.use_fast_path(True):
            return run_cold()

    object_table = object_side()
    columnar_table = columnar_side()
    if columnar_table.to_csv() != object_table.to_csv():  # pragma: no cover
        raise AssertionError("multi-chip sweep paths disagree (not byte-identical)")
    object_s, object_mean_s, columnar_s, columnar_mean_s = _interleaved(
        object_side, columnar_side, repeat
    )
    return PerfResult(
        "multi_chip_sweep",
        object_s=object_s,
        columnar_s=columnar_s,
        object_mean_s=object_mean_s,
        columnar_mean_s=columnar_mean_s,
    )


#: Simulated machine count of the ``multi_machine_shard`` pair.  Eight
#: machines: at N=2 the modelled wall clock ``max(shards) + merge`` is
#: mathematically capped below 2x (both sides execute the identical
#: per-point kernels, so ``max(shards) >= compute/2`` before the merge
#: tail is even added); N=8 — the same count the CI shard-smoke job
#: exercises — leaves the scale-out benchmark room to demonstrate that
#: per-shard fixed costs and the serial artifact/merge tail are small,
#: which is what the pair actually measures.
MULTI_MACHINE_SHARDS = 8


#: Gating-parameter points of the sharding benchmark's grid.  Denser
#: than the 25-point sensitivity grid: sharding is the scale-out story,
#: and the wall-clock model only demonstrates the amortized per-shard
#: fixed costs on a grid big enough that one shard's compute clearly
#: dominates its startup + artifact tail (sharding a tiny grid is all
#: overhead, and not the use case).
MULTI_MACHINE_SHARD_PARAMETER_POINTS = 128


def multi_machine_shard_spec() -> SweepSpec:
    """The sharding benchmark's grid: multi-chip × a dense 128-point
    delay-multiplier parameter grid (1024 points, 5120 result rows)."""
    base = multi_chip_sweep_spec()
    return SweepSpec(
        workloads=base.workloads,
        chips=base.chips,
        gating_parameters=tuple(
            (
                f"g{index}",
                DEFAULT_PARAMETERS.with_delay_multiplier(
                    1.0 + index / MULTI_MACHINE_SHARD_PARAMETER_POINTS
                ),
            )
            for index in range(MULTI_MACHINE_SHARD_PARAMETER_POINTS)
        ),
    )


def bench_multi_machine_shard(repeat: int) -> PerfResult:
    """Sharded execution modelled as parallel machines vs one monolith.

    The object side is the monolithic cold sweep of the
    :func:`multi_machine_shard_spec` grid; the "columnar" side runs the
    same grid as :data:`MULTI_MACHINE_SHARDS` shards
    (:class:`~repro.experiments.ShardRunner`, each with a fresh
    run-scoped cache and its artifact written to disk) and models the
    multi-machine wall clock as ``max(shard times) + merge time`` —
    shards are independent, so N machines run them concurrently and
    the merge is the only serial tail.  The speedup therefore measures
    how close sharding gets to the ideal N-way scale-out after
    partition imbalance and artifact/merge overhead.  The merged table
    is asserted byte-identical to the monolithic run before timing.
    """
    import tempfile

    from repro.experiments import ShardRunner, SweepResult

    spec = multi_machine_shard_spec()
    shards = MULTI_MACHINE_SHARDS

    def monolithic():
        return SweepRunner(spec, cache=None).run()

    def sharded_wall() -> tuple[float, SweepResult]:
        """(modelled wall-clock seconds, merged table) of one sharded run."""
        with tempfile.TemporaryDirectory() as tmp:
            shard_times: list[float] = []
            paths = []
            for index in range(shards):
                start = time.perf_counter()
                runner = ShardRunner(spec, shards, cache=None)
                paths.append(runner.write(index, tmp))
                shard_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            merged = SweepResult.merge_shards(paths)
            merge_s = time.perf_counter() - start
            return max(shard_times) + merge_s, merged

    with columnar.use_fast_path(True):
        object_table = monolithic()  # warm-up
        _wall, merged = sharded_wall()  # warm-up; doubles as equivalence check
        if merged.to_csv() != object_table.to_csv():  # pragma: no cover
            raise AssertionError("sharded sweep is not byte-identical")
        # Interleaved paired sampling: one monolith sample immediately
        # followed by one sharded sample per round, so machine-load
        # drift cannot land on one side of the ratio only.
        object_samples: list[float] = []
        wall_samples: list[float] = []
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            monolithic()
            object_samples.append(time.perf_counter() - start)
            wall_samples.append(sharded_wall()[0])
    return PerfResult(
        "multi_machine_shard",
        object_s=min(object_samples),
        columnar_s=min(wall_samples),
        object_mean_s=sum(object_samples) / len(object_samples),
        columnar_mean_s=sum(wall_samples) / len(wall_samples),
    )


def bench_idle_detector(repeat: int) -> PerfResult:
    trace = _DETECTOR_PATTERN * _DETECTOR_REPEATS

    def stepwise() -> None:
        IdleDetector(_DETECTOR_WINDOW, _DETECTOR_DELAY).run(trace)

    def vectorized() -> None:
        run_length_idle_stats(trace, _DETECTOR_WINDOW, _DETECTOR_DELAY)

    reference = IdleDetector(_DETECTOR_WINDOW, _DETECTOR_DELAY).run(trace)
    fast = run_length_idle_stats(trace, _DETECTOR_WINDOW, _DETECTOR_DELAY)
    if reference != fast:  # pragma: no cover - equivalence is tested
        raise AssertionError("idle detector paths disagree")
    object_s, object_mean_s, columnar_s, columnar_mean_s = _interleaved(
        stepwise, vectorized, repeat
    )
    return PerfResult(
        "idle_detector",
        object_s=object_s,
        columnar_s=columnar_s,
        object_mean_s=object_mean_s,
        columnar_mean_s=columnar_mean_s,
    )


#: Shape of the ``serving_sim`` benchmark's synthetic trace: enough
#: requests that the oracle's per-request Python loop dominates, small
#: enough to keep CI's small-grid suite quick.
SERVING_SIM_WORKLOADS = ("decode", "prefill", "rank")
SERVING_SIM_RATE_QPS = 800.0
SERVING_SIM_DURATION_S = 10.0
SERVING_SIM_REPLICAS = 4


def bench_serving_sim(repeat: int) -> PerfResult:
    """Vectorized serving batching+queueing vs the event-at-a-time oracle.

    Service times are a synthetic function of batch size (no simulator
    calls), so the pair isolates the queueing kernels; both sides are
    asserted exactly equal before timing — the benchmark doubles as the
    serving equivalence check on a trace far larger than the test
    suite's.
    """
    from repro.serving.arrivals import poisson_trace
    from repro.serving.batching import (
        BatchPolicy,
        form_batches,
        form_batches_oracle,
    )
    from repro.serving.queueing import queue_batches, queue_batches_oracle

    trace = poisson_trace(
        SERVING_SIM_WORKLOADS,
        SERVING_SIM_RATE_QPS,
        SERVING_SIM_DURATION_S,
        seed=42,
    )
    policies = {
        wid: BatchPolicy(max_batch=4 + 4 * wid, max_wait_s=0.010)
        for wid in range(len(trace.workloads))
    }

    def service_table(batches) -> np.ndarray:
        # Synthetic per-batch service time: affine in batch size.
        return (200_000 + 50_000 * batches.sizes).astype(np.int64)

    def vectorized():
        batches = form_batches(trace, policies)
        return batches, queue_batches(
            batches, service_table(batches), SERVING_SIM_REPLICAS
        )

    def oracle():
        batches = form_batches_oracle(trace, policies)
        return batches, queue_batches_oracle(
            batches, service_table(batches), SERVING_SIM_REPLICAS
        )

    fast_batches, (fast_start, fast_finish, fast_replica) = vectorized()
    slow_batches, (slow_start, slow_finish, slow_replica) = oracle()
    if not (
        np.array_equal(fast_batches.close_ns, slow_batches.close_ns)
        and np.array_equal(fast_batches.sizes, slow_batches.sizes)
        and np.array_equal(fast_batches.request_batch, slow_batches.request_batch)
        and np.array_equal(fast_start, slow_start)
        and np.array_equal(fast_finish, slow_finish)
        and np.array_equal(fast_replica, slow_replica)
    ):  # pragma: no cover - equivalence is tested
        raise AssertionError("serving sim paths disagree")
    object_s, object_mean_s, columnar_s, columnar_mean_s = _interleaved(
        oracle, vectorized, repeat
    )
    return PerfResult(
        "serving_sim",
        object_s=object_s,
        columnar_s=columnar_s,
        object_mean_s=object_mean_s,
        columnar_mean_s=columnar_mean_s,
    )


def bench_cold_sweep(grid: str, repeat: int) -> PerfResult:
    spec = perf_sweep_spec(grid)

    def run_cold():
        # A fresh run-scoped cache per run: every profile is simulated.
        return SweepRunner(spec, cache=None).run()

    def object_side():
        with columnar.use_fast_path(False):
            return run_cold()

    def columnar_side():
        with columnar.use_fast_path(True):
            return run_cold()

    object_table = object_side()
    columnar_table = columnar_side()
    if columnar_table.to_csv() != object_table.to_csv():  # pragma: no cover
        raise AssertionError("cold sweep paths disagree (not byte-identical)")
    object_s, object_mean_s, columnar_s, columnar_mean_s = _interleaved(
        object_side, columnar_side, repeat
    )
    return PerfResult(
        "cold_sweep",
        object_s=object_s,
        columnar_s=columnar_s,
        object_mean_s=object_mean_s,
        columnar_mean_s=columnar_mean_s,
    )


# ---------------------------------------------------------------------- #
# Suite
# ---------------------------------------------------------------------- #
#: Every benchmark pair by payload name, normalized to a ``(grid,
#: repeat)`` call.  The sweep-sized pairs run one fewer repeat than the
#: microbenchmarks (they are the slow ones, and min-of-repeats converges
#: fast on them).  Single source of the suite order and of the names
#: ``repro perf --profile`` accepts.
BENCHMARK_RUNNERS: "dict[str, Any]" = {
    "graph_construction": lambda grid, repeat: bench_graph_construction(repeat),
    "cold_simulate": lambda grid, repeat: bench_cold_simulate(repeat),
    "policy_evaluation": lambda grid, repeat: bench_policy_evaluation(repeat),
    "batch_policy_evaluation": (
        lambda grid, repeat: bench_batch_policy_evaluation(repeat)
    ),
    "sensitivity_sweep": lambda grid, repeat: bench_sensitivity_sweep(repeat),
    "sensitivity_grid": lambda grid, repeat: bench_sensitivity_grid(repeat),
    "multi_chip_sweep": (
        lambda grid, repeat: bench_multi_chip_sweep(max(1, repeat - 1))
    ),
    "multi_machine_shard": (
        lambda grid, repeat: bench_multi_machine_shard(max(1, repeat - 1))
    ),
    "idle_detector": lambda grid, repeat: bench_idle_detector(repeat),
    "serving_sim": lambda grid, repeat: bench_serving_sim(repeat),
    "cold_sweep": lambda grid, repeat: bench_cold_sweep(grid, max(1, repeat - 1)),
}


def profile_benchmark(
    name: str,
    grid: str = "tiny",
    repeat: int = 1,
    dump_path: "str | Path | None" = None,
    top: int = 25,
) -> "tuple[PerfResult, str, Path | None]":
    """Run one benchmark pair under :mod:`cProfile`.

    Returns ``(result, table, dump)``: the pair's timing result, the
    top-``top`` cumulative-time table as text, and the path the raw
    profile was dumped to (``None`` when ``dump_path`` is not given;
    load dumps with ``pstats.Stats`` or ``snakeviz``).  Raises
    :class:`KeyError` for unknown benchmark names.
    """
    runner = BENCHMARK_RUNNERS.get(name)
    if runner is None:
        known = ", ".join(BENCHMARK_RUNNERS)
        raise KeyError(f"unknown benchmark {name!r} (known: {known})")
    perf_sweep_spec(grid)  # validates the grid name early
    profiler = cProfile.Profile()
    profiler.enable()
    result = runner(grid, repeat)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    dump = None
    if dump_path is not None:
        dump = Path(dump_path)
        stats.dump_stats(dump)
    return result, stream.getvalue(), dump


def run_perf_suite(grid: str = "full", repeat: int = 3) -> dict[str, Any]:
    """Run every benchmark pair and assemble the ``BENCH_perf`` payload."""
    spec = perf_sweep_spec(grid)  # validates the grid name early
    results = [runner(grid, repeat) for runner in BENCHMARK_RUNNERS.values()]
    payload_benchmarks = {result.name: result.to_dict() for result in results}
    # The scale-out pair's speedup is only meaningful against its
    # modelled machine count; record it so payloads are self-describing.
    payload_benchmarks["multi_machine_shard"]["shards"] = MULTI_MACHINE_SHARDS
    return {
        "schema": 6,
        "version": __version__,
        "grid": grid,
        "grid_points": spec.num_points,
        "repeat": repeat,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "generated_unix": time.time(),
        "benchmarks": payload_benchmarks,
    }


def write_payload(payload: dict[str, Any], path: str | Path) -> Path:
    """Write a perf payload as pretty JSON."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


#: Benchmarks excluded from the regression gate (still recorded and
#: shown by ``--compare``).  Empty since the sharded pair moved to an
#: 8-machine wall-clock model with interleaved paired sampling: its
#: speedup now sits near 3x with enough headroom over the 25% gate
#: tolerance that it is held to the same standard as every other pair.
UNGATED_BENCHMARKS: frozenset[str] = frozenset()


def _version_tuple(text: str) -> tuple[int, ...]:
    """Dotted-version prefix as a comparable int tuple (1.8.0 -> (1,8,0)).

    Non-numeric segments end the prefix, so odd stamps compare on
    whatever leading numbers they do have instead of raising.
    """
    parts: list[int] = []
    for segment in str(text).split("."):
        if not segment.isdigit():
            break
        parts.append(int(segment))
    return tuple(parts)


def payload_version_drift(payload: dict[str, Any]) -> str | None:
    """Why this payload's version stamp trails the package, if it does.

    Perf payloads are committed artifacts; a stamp older than the
    running package means the numbers predate current code and must be
    regenerated (``repro perf --output ...``).  Returns ``None`` when
    the stamp is current (or ahead, e.g. comparing against a newer
    branch's payload).
    """
    stamped = payload.get("version")
    if not isinstance(stamped, str) or not _version_tuple(stamped):
        return f"payload has no valid version stamp (package is {__version__})"
    if _version_tuple(stamped) < _version_tuple(__version__):
        return (
            f"payload version {stamped} trails the package ({__version__}); "
            "regenerate it with `repro perf`"
        )
    return None


def check_regression(
    payload: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.25,
    check_version: bool = True,
) -> list[str]:
    """Compare speedups against a committed baseline payload.

    Returns a list of human-readable failures; empty means no benchmark
    regressed by more than ``tolerance`` (fractional) against the
    baseline's speedup.  Absolute times are machine-dependent, so only
    the object/columnar ratio is compared.
    :data:`UNGATED_BENCHMARKS` are informational and never fail.

    With ``check_version`` (the default — what the CI perf gate runs),
    a baseline stamped with an older package version fails loudly: its
    numbers predate current code, so the gate would be comparing
    against stale machinery — regenerate and commit the baseline
    instead.  ``--compare`` of two historical payloads disables it and
    warns in the report instead.
    """
    failures: list[str] = []
    if check_version:
        drift = payload_version_drift(baseline)
        if drift:
            failures.append(f"baseline: {drift}")
    current = payload.get("benchmarks", {})
    for name, entry in baseline.get("benchmarks", {}).items():
        if name in UNGATED_BENCHMARKS:
            continue
        baseline_speedup = entry.get("speedup", 0.0) if isinstance(entry, dict) else 0.0
        if baseline_speedup <= 0:
            continue
        observed = current.get(name)
        if observed is None:
            failures.append(f"{name}: missing from current run")
            continue
        observed_speedup = (
            observed.get("speedup") if isinstance(observed, dict) else None
        )
        if observed_speedup is None:
            # Schema drift (an entry without a speedup field) is reported
            # per-name like a missing benchmark, never a KeyError.
            failures.append(f"{name}: no speedup in current payload (schema drift?)")
            continue
        floor = baseline_speedup * (1.0 - tolerance)
        if observed_speedup < floor:
            failures.append(
                f"{name}: speedup {observed_speedup:.2f}x fell below "
                f"{floor:.2f}x ({(1.0 - tolerance):.0%} of the baseline "
                f"{baseline_speedup:.2f}x)"
            )
    return failures


def compare_payloads(
    old: dict[str, Any],
    new: dict[str, Any],
    tolerance: float = 0.25,
) -> tuple[str, list[str]]:
    """Per-benchmark speedup deltas between two ``BENCH_perf`` payloads.

    Returns ``(report, failures)``: a human-readable table of old/new
    speedups with their relative delta, and the
    :func:`check_regression` failures of ``new`` against ``old`` (empty
    when nothing regressed beyond ``tolerance``).  Replaces eyeballing
    two JSON files — ``repro perf --compare OLD.json NEW.json`` prints
    the table and exits nonzero on regression.

    Payloads stamped with a version older than the running package get
    a warning line under the table (historical payloads are the point
    of ``--compare``, so drift warns here instead of failing).
    """
    from repro.analysis.tables import format_table

    old_benchmarks = old.get("benchmarks", {})
    new_benchmarks = new.get("benchmarks", {})
    names = list(old_benchmarks) + [
        name for name in new_benchmarks if name not in old_benchmarks
    ]

    def _speedup(benchmarks: dict[str, Any], name: str) -> float | None:
        # Payloads from drifted schemas may lack entries, hold non-dict
        # entries or miss the speedup field; all of those render as "no
        # value" per-name instead of raising.
        entry = benchmarks.get(name)
        if not isinstance(entry, dict):
            return None
        speedup = entry.get("speedup")
        return speedup if isinstance(speedup, (int, float)) else None

    rows = []
    for name in names:
        old_speedup = _speedup(old_benchmarks, name)
        new_speedup = _speedup(new_benchmarks, name)
        if old_speedup and new_speedup:
            delta = f"{new_speedup / old_speedup - 1.0:+.1%}"
        elif name not in old_benchmarks:
            delta = "benchmark missing from OLD payload"
        elif name not in new_benchmarks:
            delta = "benchmark missing from NEW payload"
        else:
            delta = "-"
        rows.append(
            [
                name,
                "-" if old_speedup is None else f"{old_speedup:.2f}x",
                "-" if new_speedup is None else f"{new_speedup:.2f}x",
                delta,
            ]
        )
    report = format_table(
        ["benchmark", "old speedup", "new speedup", "delta"],
        rows,
        title=(
            f"BENCH_perf comparison (old schema {old.get('schema')}, "
            f"new schema {new.get('schema')})"
        ),
    )
    warnings = [
        f"warning: {label} {drift}"
        for label, payload in (("OLD", old), ("NEW", new))
        if (drift := payload_version_drift(payload))
    ]
    if warnings:
        report += "\n" + "\n".join(warnings)
    return report, check_regression(
        new, old, tolerance=tolerance, check_version=False
    )


def format_report(payload: dict[str, Any]) -> str:
    """Human-readable table of one perf payload."""
    from repro.analysis.tables import format_table

    rows = [
        [
            name,
            f"{entry['object_s'] * 1e3:.2f}",
            f"{entry.get('object_mean_s', 0.0) * 1e3:.2f}",
            f"{entry['columnar_s'] * 1e3:.2f}",
            f"{entry.get('columnar_mean_s', 0.0) * 1e3:.2f}",
            f"{entry['speedup']:.1f}x",
        ]
        for name, entry in payload["benchmarks"].items()
    ]
    title = (
        f"Columnar-core benchmarks (grid={payload['grid']}, "
        f"{payload['grid_points']} sweep points; min / mean of repeats)"
    )
    return format_table(
        [
            "benchmark",
            "object min (ms)",
            "object mean (ms)",
            "columnar min (ms)",
            "columnar mean (ms)",
            "speedup",
        ],
        rows,
        title=title,
    )


__all__ = [
    "BATCH_EVAL_FLEET",
    "BENCHMARK_RUNNERS",
    "MULTI_CHIP_SWEEP_CHIPS",
    "MULTI_MACHINE_SHARDS",
    "PERF_GRIDS",
    "PERF_WORKLOAD",
    "PerfResult",
    "SENSITIVITY_GRID_PARAMETERS",
    "UNGATED_BENCHMARKS",
    "bench_batch_policy_evaluation",
    "bench_cold_simulate",
    "bench_cold_sweep",
    "bench_graph_construction",
    "bench_idle_detector",
    "bench_multi_chip_sweep",
    "bench_multi_machine_shard",
    "bench_policy_evaluation",
    "bench_sensitivity_grid",
    "bench_sensitivity_sweep",
    "bench_serving_sim",
    "check_regression",
    "compare_payloads",
    "payload_version_drift",
    "format_report",
    "multi_chip_sweep_spec",
    "multi_machine_shard_spec",
    "perf_sweep_spec",
    "profile_benchmark",
    "run_perf_suite",
    "write_payload",
]
