"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's figures
report; this module renders them as aligned text tables so the output of
``pytest benchmarks/`` is directly readable.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table."""
    formatted_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in formatted_rows)
    return "\n".join(lines)


def percentage(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


__all__ = ["format_table", "percentage"]
