"""Embodied carbon of NPU chips.

Embodied carbon is the emission from manufacturing a chip (wafer
processing, HBM stacks, packaging, the share of the host and
infrastructure attributed to the accelerator).  The paper takes its
values from the TPU life-cycle analysis of Schneider et al.; absent the
exact per-SKU numbers we use estimates that scale with die area, HBM
capacity and technology node, which preserves the trade-off the lifespan
study (Figure 25) explores.
"""

from __future__ import annotations

from repro.hardware.area import AreaModel
from repro.hardware.chips import NPUChipSpec, get_chip

# Manufacturing carbon intensity per mm^2 of logic die, by node (kgCO2e/mm^2).
# Newer nodes need more lithography passes / EUV energy per area.
_DIE_CARBON_PER_MM2 = {16: 0.18, 7: 0.28, 4: 0.40}
# HBM embodied carbon per GB (kgCO2e/GB).
_HBM_CARBON_PER_GB = 0.55
# Packaging, substrate, and attributed host/infrastructure share.
_PACKAGING_CARBON_KG = 25.0

#: Fixed per-generation estimates, exposed for tests and quick studies.
EMBODIED_CARBON_KG: dict[str, float] = {}


def embodied_carbon_kg(chip: str | NPUChipSpec) -> float:
    """Embodied carbon of manufacturing one NPU chip (kgCO2e)."""
    spec = chip if isinstance(chip, NPUChipSpec) else get_chip(chip)
    area = AreaModel(spec).breakdown()
    die = area.total_mm2 * _DIE_CARBON_PER_MM2[spec.technology_nm]
    hbm = spec.hbm.capacity_gb * _HBM_CARBON_PER_GB
    return die + hbm + _PACKAGING_CARBON_KG


def _populate_table() -> None:
    for name in ("NPU-A", "NPU-B", "NPU-C", "NPU-D", "NPU-E"):
        EMBODIED_CARBON_KG[name] = embodied_carbon_kg(name)


_populate_table()


__all__ = ["EMBODIED_CARBON_KG", "embodied_carbon_kg"]
