"""Carbon-efficiency models (operational + embodied, §6.6 of the paper)."""

from repro.carbon.operational import OperationalCarbonModel
from repro.carbon.embodied import EMBODIED_CARBON_KG, embodied_carbon_kg
from repro.carbon.lifespan import LifespanAnalysis, LifespanPoint

__all__ = [
    "EMBODIED_CARBON_KG",
    "LifespanAnalysis",
    "LifespanPoint",
    "OperationalCarbonModel",
    "embodied_carbon_kg",
]
