"""Device-lifespan analysis trading embodied vs. operational carbon.

Figure 25 of the paper: over a 10-year horizon, upgrading the NPU fleet
every ``L`` years amortizes the embodied carbon over more work as ``L``
grows, but keeps older, less energy-efficient chips in service longer,
so the operational carbon per unit of work grows.  The optimum lifespan
minimizes the total carbon per unit of work; power gating lowers the
operational component and therefore *extends* the optimal lifespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.carbon.embodied import embodied_carbon_kg
from repro.carbon.operational import OperationalCarbonModel
from repro.core.results import SimulationResult
from repro.gating.report import PolicyName


@dataclass(frozen=True)
class LifespanPoint:
    """Carbon per unit of work for one device lifespan."""

    lifespan_years: int
    embodied_kg_per_work: float
    operational_kg_per_work: float

    @property
    def total_kg_per_work(self) -> float:
        return self.embodied_kg_per_work + self.operational_kg_per_work


@dataclass
class LifespanAnalysis:
    """Sweeps device lifespans for one workload result."""

    result: SimulationResult
    operational_model: OperationalCarbonModel = field(
        default_factory=OperationalCarbonModel
    )
    horizon_years: int = 10
    #: Year-over-year energy-efficiency improvement of new chip generations
    #: (the paper uses the NPU-D over NPU-C ratio).
    yearly_efficiency_gain: float = 0.22
    utilization_seconds_per_year: float = 365.25 * 24 * 3600

    # ------------------------------------------------------------------ #
    @classmethod
    def for_serving(
        cls,
        result: SimulationResult,
        utilization: float,
        operational_model: OperationalCarbonModel | None = None,
        **kwargs: object,
    ) -> "LifespanAnalysis":
        """A lifespan analysis at a *measured* fleet duty cycle.

        The serving simulation observes how busy each replica pool
        actually is; substituting that for the assumed 60% duty cycle
        makes the Figure 25 trade-off reflect the trace.
        """
        model = (operational_model or OperationalCarbonModel()).with_duty_cycle(
            min(1.0, max(0.01, utilization))
        )
        return cls(result=result, operational_model=model, **kwargs)  # type: ignore[arg-type]

    def work_per_chip_year(self, policy: PolicyName) -> float:
        """Units of work one pod completes per year at the duty cycle."""
        duty = self.operational_model.duty_cycle
        iterations_per_s = 1.0 / self.result.iteration_time_s(policy)
        return (
            iterations_per_s
            * duty
            * self.utilization_seconds_per_year
            * self.result.work_per_iteration
        )

    def _operational_per_work(self, policy: PolicyName, device_age_years: float) -> float:
        """Operational carbon per work for a chip of a given age.

        Older chips are less efficient than the newest generation by the
        yearly efficiency gain compounding over their age.
        """
        base = self.operational_model.carbon_per_work_kg(self.result, policy)
        return base * (1.0 + self.yearly_efficiency_gain) ** device_age_years

    # ------------------------------------------------------------------ #
    def point(self, lifespan_years: int, policy: PolicyName) -> LifespanPoint:
        """Carbon per unit of work if devices are replaced every ``L`` years."""
        if lifespan_years < 1:
            raise ValueError("lifespan must be at least one year")
        embodied_total = embodied_carbon_kg(self.result.chip) * self.result.num_chips
        work_per_year = self.work_per_chip_year(policy)
        embodied_per_work = embodied_total / (lifespan_years * work_per_year)
        # Average operational carbon over the device's service life: the
        # chip falls behind the state of the art by one year of efficiency
        # gain for every year it stays in service.
        ages = range(lifespan_years)
        operational = sum(self._operational_per_work(policy, age) for age in ages)
        operational_per_work = operational / lifespan_years
        return LifespanPoint(
            lifespan_years=lifespan_years,
            embodied_kg_per_work=embodied_per_work,
            operational_kg_per_work=operational_per_work,
        )

    def sweep(self, policy: PolicyName) -> list[LifespanPoint]:
        """Carbon per work for lifespans 1..horizon (Figure 25 series)."""
        return [self.point(years, policy) for years in range(1, self.horizon_years + 1)]

    def optimal_lifespan(self, policy: PolicyName) -> int:
        """The lifespan minimizing total carbon per unit of work."""
        points = self.sweep(policy)
        best = min(points, key=lambda point: point.total_kg_per_work)
        return best.lifespan_years


__all__ = ["LifespanAnalysis", "LifespanPoint"]
