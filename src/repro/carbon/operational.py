"""Operational carbon emissions of NPU fleets.

Operational carbon is the emission caused by the electricity the chips
draw at runtime.  Following the paper (§6.6) we assume a grid carbon
intensity of 0.0624 kgCO2e/kWh, a data-center PUE of 1.1 and a 60% chip
duty cycle; energy drawn while the chip is powered on but idle counts
too, which is why power gating reduces operational carbon by more than
it reduces busy energy (Figure 24).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import (
    DEFAULT_CARBON_INTENSITY,
    DEFAULT_DUTY_CYCLE,
    DEFAULT_PUE,
)
from repro.core.results import SimulationResult
from repro.gating.report import PolicyName
from repro.hardware.components import Component
from repro.hardware.power import ChipPowerModel

JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class OperationalCarbonModel:
    """Converts simulation results into operational carbon emissions."""

    carbon_intensity_kg_per_kwh: float = DEFAULT_CARBON_INTENSITY
    pue: float = DEFAULT_PUE
    duty_cycle: float = DEFAULT_DUTY_CYCLE

    # ------------------------------------------------------------------ #
    def with_duty_cycle(self, duty_cycle: float) -> "OperationalCarbonModel":
        """The same grid/PUE assumptions at a different duty cycle.

        The serving simulation *measures* fleet utilization instead of
        assuming the paper's 60% duty cycle; this lets the carbon rollup
        price duty-cycle idle energy at what the trace actually showed.
        """
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        return replace(self, duty_cycle=duty_cycle)

    def energy_to_carbon_kg(self, energy_j: float) -> float:
        """Facility-level carbon of a given amount of chip energy."""
        return energy_j * self.pue * self.carbon_intensity_kg_per_kwh / JOULES_PER_KWH

    def idle_power_w(self, result: SimulationResult, policy: PolicyName) -> float:
        """Chip power while powered on but running no job.

        Without power gating the idle chip still leaks its full static
        power; a gating policy brings every gateable component down to
        its gated leakage ratio.
        """
        power_model = ChipPowerModel(result.chip)
        breakdown = power_model.breakdown()
        if policy is PolicyName.NOPG:
            return breakdown.idle_w
        report = result.report(policy)
        clock_w = 0.04 * breakdown.total_peak_dynamic_w
        static_w = 0.0
        for component in Component.all():
            base = power_model.static_power_w(component)
            if component is Component.OTHER:
                static_w += base
            elif policy is PolicyName.IDEAL:
                static_w += 0.0
            elif component is Component.SRAM:
                static_w += base * 0.002 if policy is PolicyName.REGATE_FULL else base * 0.25
            else:
                static_w += base * 0.03
        return static_w + clock_w

    # ------------------------------------------------------------------ #
    def carbon_per_iteration_kg(
        self, result: SimulationResult, policy: PolicyName
    ) -> float:
        """Operational carbon of one workload iteration on the whole pod.

        Includes the pro-rated idle energy implied by the duty cycle: for
        every second of busy execution the chip also spends
        ``(1 - duty) / duty`` seconds powered on but idle.
        """
        report = result.report(policy)
        busy_energy = report.total_energy_j
        idle_seconds = report.total_time_s * (1.0 - self.duty_cycle) / self.duty_cycle
        idle_energy = self.idle_power_w(result, policy) * idle_seconds
        per_chip = busy_energy + idle_energy
        return self.energy_to_carbon_kg(per_chip * result.num_chips)

    def carbon_per_work_kg(self, result: SimulationResult, policy: PolicyName) -> float:
        """Operational carbon per unit of work (token, image, request, step)."""
        return self.carbon_per_iteration_kg(result, policy) / result.work_per_iteration

    def carbon_reduction(self, result: SimulationResult, policy: PolicyName) -> float:
        """Fractional operational-carbon reduction versus NoPG (Figure 24)."""
        baseline = self.carbon_per_iteration_kg(result, PolicyName.NOPG)
        if baseline <= 0:
            return 0.0
        return 1.0 - self.carbon_per_iteration_kg(result, policy) / baseline


__all__ = ["JOULES_PER_KWH", "OperationalCarbonModel"]
