"""Dynamic batch formation for the serving simulation.

Requests are grouped into batches by a *clocked window* policy
(:class:`BatchPolicy`): the batch former ticks every ``max_wait_s``,
and within one tick's window requests of the same workload fill batches
of up to ``max_batch``.  A batch dispatches (its *close* time) as soon
as it fills, or at the window boundary if the window ends first — so no
request waits more than one window for its batch to form, and batching
never depends on downstream replica state.  That last property is what
makes batch formation a pure function of the trace, computable either
columnar (:func:`form_batches`) or event-at-a-time
(:func:`form_batches_oracle`) with bit-identical results.

Both paths operate on integer-nanosecond timestamps, so there is no
floating-point drift between them: the equivalence suite asserts exact
array equality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.arrivals import NS, RequestTrace, TraceError


@dataclass(frozen=True)
class BatchPolicy:
    """Batch-formation knobs: size cap and forming window.

    ``max_batch`` caps how many requests share one inference iteration;
    ``max_wait_s`` is the forming-window length (the most extra latency
    batching itself can add to a request).
    """

    max_batch: int = 8
    max_wait_s: float = 0.050

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise TraceError("max_batch must be >= 1")
        if self.max_wait_s <= 0:
            raise TraceError("max_wait_s must be positive")

    @property
    def window_ns(self) -> int:
        return max(1, int(round(self.max_wait_s * NS)))

    def with_max_batch(self, max_batch: int) -> "BatchPolicy":
        return BatchPolicy(max_batch=max_batch, max_wait_s=self.max_wait_s)


@dataclass(frozen=True)
class BatchTable:
    """Columnar batch table: one row per formed batch.

    Batches are grouped by workload — all of a workload's batches form
    one contiguous slice, ordered by dispatch (close) time — and
    ``request_batch`` maps every request of the originating trace to
    its batch row.
    """

    workload_ids: np.ndarray  # int64 per batch
    close_ns: np.ndarray  # int64 per batch: dispatch-ready time
    sizes: np.ndarray  # int64 per batch
    request_batch: np.ndarray  # int64 per request (original trace order)
    workloads: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.close_ns)

    def workload_slice(self, workload_id: int) -> slice:
        """The contiguous batch-row slice of one workload."""
        indices = np.flatnonzero(self.workload_ids == workload_id)
        if len(indices) == 0:
            return slice(0, 0)
        return slice(int(indices[0]), int(indices[-1]) + 1)


def _empty_table(trace: RequestTrace) -> BatchTable:
    return BatchTable(
        workload_ids=np.empty(0, dtype=np.int64),
        close_ns=np.empty(0, dtype=np.int64),
        sizes=np.empty(0, dtype=np.int64),
        request_batch=np.empty(0, dtype=np.int64),
        workloads=trace.workloads,
    )


def _policy_columns(
    trace: RequestTrace, policy: "BatchPolicy | dict[int, BatchPolicy]"
) -> tuple[np.ndarray, np.ndarray]:
    """Per-workload-id ``(window_ns, max_batch)`` lookup columns.

    A single :class:`BatchPolicy` broadcasts across the fleet; a dict
    maps workload id → policy (missing ids fall back to the default),
    so every pod can run its own SLO-selected batch cap.
    """
    count = max(1, len(trace.workloads))
    if isinstance(policy, BatchPolicy):
        policies = {wid: policy for wid in range(count)}
    else:
        default = BatchPolicy()
        policies = {wid: policy.get(wid, default) for wid in range(count)}
    window_ns = np.asarray(
        [policies[wid].window_ns for wid in range(count)], dtype=np.int64
    )
    max_batch = np.asarray(
        [policies[wid].max_batch for wid in range(count)], dtype=np.int64
    )
    return window_ns, max_batch


def form_batches(
    trace: RequestTrace, policy: "BatchPolicy | dict[int, BatchPolicy]"
) -> BatchTable:
    """Columnar batch formation (no per-request Python loop).

    One stable sort brings each workload's requests together (they are
    already in arrival order); window indices, in-window ranks and
    size-capped chunks then fall out of array arithmetic.
    """
    if len(trace) == 0:
        return _empty_table(trace)
    window_by_id, batch_by_id = _policy_columns(trace, policy)
    order = np.argsort(trace.workload_ids, kind="stable")
    arrival = trace.arrival_ns[order]
    workload = trace.workload_ids[order]
    window_ns = window_by_id[workload]
    max_batch = batch_by_id[workload]
    window = arrival // window_ns

    # A new (workload, window) group starts wherever either changes.
    new_group = np.ones(len(arrival), dtype=bool)
    new_group[1:] = (workload[1:] != workload[:-1]) | (window[1:] != window[:-1])
    group_id = np.cumsum(new_group) - 1
    group_starts = np.flatnonzero(new_group)
    rank = np.arange(len(arrival)) - group_starts[group_id]

    # Within a group, a new batch opens every ``max_batch`` requests.
    new_batch = (rank % max_batch) == 0
    batch_id = np.cumsum(new_batch) - 1
    batch_starts = np.flatnonzero(new_batch)
    batch_ends = np.append(batch_starts[1:], len(arrival))
    sizes = (batch_ends - batch_starts).astype(np.int64)

    last_arrival = arrival[batch_ends - 1]
    window_close = (window[batch_starts] + 1) * window_ns[batch_starts]
    full = sizes == max_batch[batch_starts]
    close_ns = np.where(full, last_arrival, window_close).astype(np.int64)

    request_batch = np.empty(len(arrival), dtype=np.int64)
    request_batch[order] = batch_id
    return BatchTable(
        workload_ids=workload[batch_starts].astype(np.int64),
        close_ns=close_ns,
        sizes=sizes,
        request_batch=request_batch,
        workloads=trace.workloads,
    )


def form_batches_oracle(
    trace: RequestTrace, policy: "BatchPolicy | dict[int, BatchPolicy]"
) -> BatchTable:
    """Event-at-a-time reference with identical semantics.

    Walks each workload's requests one by one, opening and closing
    batches exactly as a stepwise batch former would.  Kept as the
    equivalence oracle for :func:`form_batches` — both must agree on
    every output array, exactly.
    """
    if len(trace) == 0:
        return _empty_table(trace)
    window_by_id, batch_by_id = _policy_columns(trace, policy)

    workload_rows: list[int] = []
    close_rows: list[int] = []
    size_rows: list[int] = []
    request_rows: list[tuple[int, int]] = []  # (original index, batch row)

    for workload_id in range(len(trace.workloads)):
        indices = np.flatnonzero(trace.workload_ids == workload_id)
        window_ns = int(window_by_id[workload_id])
        max_batch = int(batch_by_id[workload_id])
        open_window: int | None = None
        open_size = 0
        for original in indices:
            arrival = int(trace.arrival_ns[original])
            window = arrival // window_ns
            if open_window is None or window != open_window or open_size >= max_batch:
                # Open a new batch; the previous one (if any) keeps the
                # close time already recorded below.
                workload_rows.append(workload_id)
                close_rows.append((window + 1) * window_ns)  # provisional
                size_rows.append(0)
                open_window = window
                open_size = 0
            row = len(size_rows) - 1
            open_size += 1
            size_rows[row] = open_size
            request_rows.append((int(original), row))
            if open_size >= max_batch:
                close_rows[row] = arrival  # filled: dispatch immediately
                open_window = None  # force a fresh batch next request

    request_batch = np.empty(len(trace), dtype=np.int64)
    for original, row in request_rows:
        request_batch[original] = row
    return BatchTable(
        workload_ids=np.asarray(workload_rows, dtype=np.int64),
        close_ns=np.asarray(close_rows, dtype=np.int64),
        sizes=np.asarray(size_rows, dtype=np.int64),
        request_batch=request_batch,
        workloads=trace.workloads,
    )


__all__ = ["BatchPolicy", "BatchTable", "form_batches", "form_batches_oracle"]
