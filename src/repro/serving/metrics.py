"""Serving-metrics containers and the llm-d-benchmark-style table.

The metric set mirrors the well-defined table llm-d-benchmark publishes
for LLM serving (throughput in requests/second, TTFT/TPOT-like latency
percentiles, per-request cost) with the quantities this reproduction
can actually measure: queue wait (arrival → service start, the
TTFT-like component batching and queueing add), request latency
(arrival → batch completion), replica utilization, and — the paper's
angle — energy per request and power-gating savings under each policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.gating.report import PolicyName
from repro.serving.arrivals import NS


@dataclass(frozen=True)
class PolicyEnergy:
    """Fleet energy of one gating policy over the simulated span."""

    busy_j: float
    idle_j: float
    requests: int

    @property
    def total_j(self) -> float:
        return self.busy_j + self.idle_j

    @property
    def per_request_j(self) -> float:
        if self.requests <= 0:
            return 0.0
        return self.total_j / self.requests

    def savings_vs(self, baseline: "PolicyEnergy") -> float:
        if baseline.total_j <= 0:
            return 0.0
        return 1.0 - self.total_j / baseline.total_j


def _percentile_ms(values_ns: np.ndarray, q: float) -> float:
    if len(values_ns) == 0:
        return 0.0
    return float(np.percentile(values_ns, q)) / 1e6


@dataclass
class WorkloadMetrics:
    """One workload pool's serving metrics."""

    workload: str
    replicas: int
    requests: int
    batches: int
    qps: float
    mean_batch: float
    p50_queue_ms: float
    p99_queue_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    utilization: float
    energy: dict[PolicyName, PolicyEnergy] = field(default_factory=dict)

    def savings(self, policy: PolicyName) -> float:
        nopg = self.energy.get(PolicyName.NOPG)
        entry = self.energy.get(policy)
        if nopg is None or entry is None:
            return 0.0
        return entry.savings_vs(nopg)

    def to_json(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "replicas": self.replicas,
            "requests": self.requests,
            "batches": self.batches,
            "qps": self.qps,
            "mean_batch": self.mean_batch,
            "p50_queue_ms": self.p50_queue_ms,
            "p99_queue_ms": self.p99_queue_ms,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "utilization": self.utilization,
            "energy": {
                policy.value: {
                    "busy_j": entry.busy_j,
                    "idle_j": entry.idle_j,
                    "total_j": entry.total_j,
                    "per_request_j": entry.per_request_j,
                    "savings_vs_nopg": self.savings(policy),
                }
                for policy, entry in self.energy.items()
            },
        }


def compute_workload_metrics(
    workload: str,
    replicas: int,
    span_ns: int,
    sizes: np.ndarray,
    service_ns: np.ndarray,
    queue_wait_ns: np.ndarray,
    latency_ns: np.ndarray,
    energy: dict[PolicyName, PolicyEnergy],
) -> WorkloadMetrics:
    """Assemble one pool's metrics from its batch/request columns."""
    requests = int(sizes.sum()) if len(sizes) else 0
    busy_ns = int(service_ns.sum()) if len(service_ns) else 0
    span_s = span_ns / NS if span_ns > 0 else 0.0
    capacity_ns = replicas * span_ns
    return WorkloadMetrics(
        workload=workload,
        replicas=replicas,
        requests=requests,
        batches=len(sizes),
        qps=requests / span_s if span_s > 0 else 0.0,
        mean_batch=requests / len(sizes) if len(sizes) else 0.0,
        p50_queue_ms=_percentile_ms(queue_wait_ns, 50),
        p99_queue_ms=_percentile_ms(queue_wait_ns, 99),
        p50_latency_ms=_percentile_ms(latency_ns, 50),
        p99_latency_ms=_percentile_ms(latency_ns, 99),
        utilization=busy_ns / capacity_ns if capacity_ns > 0 else 0.0,
        energy=energy,
    )


def aggregate_fleet(
    per_workload: "list[WorkloadMetrics]", span_ns: int
) -> WorkloadMetrics:
    """Fleet-level rollup of the per-workload metrics.

    Latency percentiles do not aggregate from percentiles, so the fleet
    row reports request-weighted means of the per-pool percentiles —
    close enough for a summary line, and clearly labeled ``fleet``.
    """
    requests = sum(m.requests for m in per_workload)
    batches = sum(m.batches for m in per_workload)
    replicas = sum(m.replicas for m in per_workload)
    span_s = span_ns / NS if span_ns > 0 else 0.0

    def weighted(attribute: str) -> float:
        if requests <= 0:
            return 0.0
        return (
            sum(getattr(m, attribute) * m.requests for m in per_workload) / requests
        )

    energy: dict[PolicyName, PolicyEnergy] = {}
    policies = dict.fromkeys(policy for m in per_workload for policy in m.energy)
    for policy in policies:
        energy[policy] = PolicyEnergy(
            busy_j=sum(m.energy[policy].busy_j for m in per_workload if policy in m.energy),
            idle_j=sum(m.energy[policy].idle_j for m in per_workload if policy in m.energy),
            requests=requests,
        )
    utilization = (
        sum(m.utilization * m.replicas for m in per_workload) / replicas
        if replicas
        else 0.0
    )
    return WorkloadMetrics(
        workload="fleet",
        replicas=replicas,
        requests=requests,
        batches=batches,
        qps=requests / span_s if span_s > 0 else 0.0,
        mean_batch=requests / batches if batches else 0.0,
        p50_queue_ms=weighted("p50_queue_ms"),
        p99_queue_ms=weighted("p99_queue_ms"),
        p50_latency_ms=weighted("p50_latency_ms"),
        p99_latency_ms=weighted("p99_latency_ms"),
        utilization=utilization,
        energy=energy,
    )


def metrics_table(
    per_workload: "list[WorkloadMetrics]",
    fleet: WorkloadMetrics,
    policy: PolicyName = PolicyName.REGATE_FULL,
) -> str:
    """The serving-metrics table (llm-d-benchmark's shape).

    One row per workload pool plus the fleet rollup; the energy columns
    show NoPG energy per request and the chosen gating policy's savings.
    """
    from repro.analysis.tables import format_table, percentage

    rows = []
    for metric in [*per_workload, fleet]:
        nopg = metric.energy.get(PolicyName.NOPG)
        rows.append(
            [
                metric.workload,
                metric.replicas,
                metric.requests,
                f"{metric.qps:.2f}",
                f"{metric.mean_batch:.2f}",
                f"{metric.p50_queue_ms:.2f}",
                f"{metric.p99_queue_ms:.2f}",
                f"{metric.p50_latency_ms:.2f}",
                f"{metric.p99_latency_ms:.2f}",
                percentage(metric.utilization),
                f"{nopg.per_request_j:.3f}" if nopg else "-",
                percentage(metric.savings(policy)),
            ]
        )
    return format_table(
        [
            "pool",
            "replicas",
            "requests",
            "qps",
            "mean batch",
            "p50 queue (ms)",
            "p99 queue (ms)",
            "p50 latency (ms)",
            "p99 latency (ms)",
            "util",
            "J/request (NoPG)",
            f"savings ({policy.value})",
        ],
        rows,
        title="Serving metrics (queue = arrival->service start, "
        "latency = arrival->completion)",
    )


__all__ = [
    "PolicyEnergy",
    "WorkloadMetrics",
    "aggregate_fleet",
    "compute_workload_metrics",
    "metrics_table",
]
