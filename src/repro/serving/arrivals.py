"""Request-arrival processes for the fleet serving simulation.

The serving layer models traffic as a :class:`RequestTrace`: a columnar
table of request arrival timestamps plus a workload tag per request.
Three sources produce traces:

* :func:`poisson_trace` — a homogeneous Poisson process at a fixed
  request rate (the classic open-loop load generator);
* :func:`diurnal_trace` — an inhomogeneous Poisson process whose rate
  follows a sinusoidal day/night profile (thinning construction), the
  bursty-fleet scenario where power-gating opportunity is largest in
  the troughs;
* :func:`load_trace` — a trace file (CSV or JSONL) of recorded arrival
  timestamps and workload tags, replayed verbatim.

All timestamps are held as **integer nanoseconds** (``int64``).  The
queueing simulation is pure integer arithmetic on these columns, which
is what makes the vectorized path bit-identical to the event-at-a-time
oracle: there is no floating-point reassociation to disagree about.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

#: Nanoseconds per second — the trace time base.
NS = 1_000_000_000


class TraceError(ValueError):
    """A trace file (or trace construction) is malformed."""


def _to_ns(seconds: float) -> int:
    """Seconds → integer nanoseconds (round-half-even, like np.round)."""
    return int(round(seconds * NS))


@dataclass(frozen=True)
class RequestTrace:
    """A columnar request trace: sorted arrival times + workload tags.

    ``arrival_ns`` is sorted ascending; ``workload_ids[i]`` indexes
    ``workloads``.  Construct via the factory helpers below — they
    normalize sorting and the tag dictionary.
    """

    arrival_ns: np.ndarray  # int64, sorted ascending
    workload_ids: np.ndarray  # int64, parallel to arrival_ns
    workloads: tuple[str, ...]  # tag dictionary: id -> workload name

    def __post_init__(self) -> None:
        if len(self.arrival_ns) != len(self.workload_ids):
            raise TraceError("arrival and workload columns differ in length")
        if len(self.arrival_ns) and np.any(np.diff(self.arrival_ns) < 0):
            raise TraceError("arrival timestamps must be sorted ascending")

    # -- construction --------------------------------------------------- #
    @classmethod
    def from_rows(
        cls, rows: Iterable[tuple[float, str]], workloads: Sequence[str] = ()
    ) -> "RequestTrace":
        """Build a trace from ``(timestamp_seconds, workload)`` rows.

        Rows need not be sorted; the tag dictionary lists workloads in
        first-appearance order (extended by any names in ``workloads``
        that never appear, so empty traces can still carry a fleet).
        """
        names: list[str] = list(dict.fromkeys(workloads))
        ids: dict[str, int] = {name: index for index, name in enumerate(names)}
        arrivals: list[int] = []
        tags: list[int] = []
        for timestamp, workload in rows:
            if workload not in ids:
                ids[workload] = len(names)
                names.append(workload)
            arrivals.append(_to_ns(float(timestamp)))
            tags.append(ids[workload])
        arrival_ns = np.asarray(arrivals, dtype=np.int64)
        workload_ids = np.asarray(tags, dtype=np.int64)
        order = np.argsort(arrival_ns, kind="stable")
        return cls(arrival_ns[order], workload_ids[order], tuple(names))

    # -- views ----------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self.arrival_ns)

    @property
    def span_ns(self) -> int:
        """Last arrival minus first arrival (0 for empty/single traces)."""
        if len(self) < 2:
            return 0
        return int(self.arrival_ns[-1] - self.arrival_ns[0])

    def workload_mask(self, workload_id: int) -> np.ndarray:
        return self.workload_ids == workload_id

    def request_counts(self) -> dict[str, int]:
        """Requests per workload tag."""
        counts = np.bincount(self.workload_ids, minlength=len(self.workloads))
        return {name: int(counts[i]) for i, name in enumerate(self.workloads)}

    # -- transforms ------------------------------------------------------ #
    def compressed(self, load_factor: float) -> "RequestTrace":
        """Scale the offered load by compressing time.

        ``load_factor == 2`` replays the same requests twice as fast
        (double the qps); ``0.5`` half as fast.  This is how the
        gating-vs-utilization curve sweeps one trace across load levels
        without changing its request mix or burst structure.
        """
        if load_factor <= 0:
            raise TraceError("load factor must be positive")
        arrival = np.rint(self.arrival_ns / load_factor).astype(np.int64)
        return RequestTrace(arrival, self.workload_ids.copy(), self.workloads)

    def demand_qps(self, window_s: float = 60.0) -> float:
        """Peak windowed arrival rate (requests/second).

        The autoscaler sizes replica pools against this: the maximum
        over fixed ``window_s`` windows of the in-window request count
        divided by the window length.  Falls back to the whole-trace
        average when the trace is shorter than one window.
        """
        if len(self) == 0:
            return 0.0
        window_ns = max(1, _to_ns(window_s))
        if self.span_ns <= window_ns:
            span = max(self.span_ns, 1)
            return len(self) * NS / span if self.span_ns else float(len(self))
        windows = (self.arrival_ns - self.arrival_ns[0]) // window_ns
        counts = np.bincount(windows)
        return float(counts.max()) * NS / window_ns


# ---------------------------------------------------------------------- #
# Synthetic processes
# ---------------------------------------------------------------------- #
def _merge_streams(
    streams: list[tuple[np.ndarray, int]], workloads: tuple[str, ...]
) -> RequestTrace:
    if streams:
        arrival = np.concatenate([times for times, _ in streams])
        tags = np.concatenate(
            [np.full(len(times), tag, dtype=np.int64) for times, tag in streams]
        )
    else:
        arrival = np.empty(0, dtype=np.int64)
        tags = np.empty(0, dtype=np.int64)
    order = np.argsort(arrival, kind="stable")
    return RequestTrace(arrival[order], tags[order], workloads)


def poisson_trace(
    workloads: Sequence[str],
    rate_qps: Sequence[float] | float,
    duration_s: float,
    seed: int = 0,
) -> RequestTrace:
    """Homogeneous Poisson arrivals over ``[0, duration_s)``.

    ``rate_qps`` is per workload (a scalar is broadcast across the
    fleet).  Deterministic for a given seed: each workload draws from
    its own substream, so adding a workload never perturbs another's
    arrivals.
    """
    workloads = tuple(workloads)
    rates = _broadcast_rates(rate_qps, workloads)
    if duration_s <= 0:
        raise TraceError("duration must be positive")
    streams = []
    for tag, (workload, rate) in enumerate(zip(workloads, rates)):
        rng = np.random.default_rng([seed, tag])
        count = rng.poisson(rate * duration_s)
        times = np.sort(rng.uniform(0.0, duration_s, size=count))
        streams.append((np.rint(times * NS).astype(np.int64), tag))
    return _merge_streams(streams, workloads)


def diurnal_trace(
    workloads: Sequence[str],
    mean_qps: Sequence[float] | float,
    duration_s: float,
    seed: int = 0,
    period_s: float = 86_400.0,
    amplitude: float = 0.8,
    phase: float = 0.0,
) -> RequestTrace:
    """Inhomogeneous Poisson arrivals with a sinusoidal rate profile.

    The instantaneous rate is ``mean * (1 + amplitude * sin(2πt/period
    + phase))`` — a day/night traffic curve.  Implemented by thinning a
    homogeneous process at the peak rate, so it is exact and
    deterministic per seed.
    """
    workloads = tuple(workloads)
    rates = _broadcast_rates(mean_qps, workloads)
    if duration_s <= 0:
        raise TraceError("duration must be positive")
    if not 0.0 <= amplitude <= 1.0:
        raise TraceError("diurnal amplitude must be in [0, 1]")
    streams = []
    for tag, (workload, mean) in enumerate(zip(workloads, rates)):
        rng = np.random.default_rng([seed, tag, 1])
        peak = mean * (1.0 + amplitude)
        count = rng.poisson(peak * duration_s)
        times = np.sort(rng.uniform(0.0, duration_s, size=count))
        rate = mean * (
            1.0 + amplitude * np.sin(2.0 * math.pi * times / period_s + phase)
        )
        keep = rng.uniform(0.0, peak, size=count) < rate
        streams.append((np.rint(times[keep] * NS).astype(np.int64), tag))
    return _merge_streams(streams, workloads)


def _broadcast_rates(
    rate: Sequence[float] | float, workloads: tuple[str, ...]
) -> list[float]:
    if not workloads:
        raise TraceError("at least one workload is required")
    if isinstance(rate, (int, float)):
        rates = [float(rate)] * len(workloads)
    else:
        rates = [float(value) for value in rate]
        if len(rates) == 1:
            rates = rates * len(workloads)
        if len(rates) != len(workloads):
            raise TraceError(
                f"{len(rates)} rates for {len(workloads)} workloads "
                "(give one rate, or one per workload)"
            )
    if any(value <= 0 for value in rates):
        raise TraceError("arrival rates must be positive")
    return rates


# ---------------------------------------------------------------------- #
# Trace files
# ---------------------------------------------------------------------- #
def load_trace(path: str | Path, workloads: Sequence[str] = ()) -> RequestTrace:
    """Read a trace file: CSV (``timestamp_s,workload``) or JSONL.

    CSV needs a header with ``timestamp_s`` and ``workload`` columns
    (extra columns are ignored).  JSONL is one object per line with the
    same two keys.  The format is sniffed from the first non-blank
    character, so either works regardless of file extension.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise TraceError(f"cannot read trace {path}: {error}") from error
    stripped = text.lstrip()
    if not stripped:
        return RequestTrace.from_rows([], workloads)
    if stripped[0] == "{":
        rows = _jsonl_rows(text, path)
    else:
        rows = _csv_rows(text, path)
    return RequestTrace.from_rows(rows, workloads)


def _jsonl_rows(text: str, path: Path) -> list[tuple[float, str]]:
    rows: list[tuple[float, str]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            rows.append((float(record["timestamp_s"]), str(record["workload"])))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise TraceError(f"{path}:{number}: bad JSONL record ({error})") from error
    return rows


def _csv_rows(text: str, path: Path) -> list[tuple[float, str]]:
    reader = csv.DictReader(text.splitlines())
    if reader.fieldnames is None or not {
        "timestamp_s",
        "workload",
    } <= set(reader.fieldnames):
        raise TraceError(
            f"{path}: CSV trace needs a header with timestamp_s and workload "
            f"columns (got {reader.fieldnames})"
        )
    rows: list[tuple[float, str]] = []
    for number, record in enumerate(reader, start=2):
        try:
            rows.append((float(record["timestamp_s"]), str(record["workload"])))
        except (TypeError, ValueError) as error:
            raise TraceError(f"{path}:{number}: bad CSV record ({error})") from error
    return rows


def write_trace_csv(trace: RequestTrace, path: str | Path) -> Path:
    """Write a trace back out in the CSV trace format (round-trips)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp_s", "workload"])
        for arrival, tag in zip(trace.arrival_ns, trace.workload_ids):
            writer.writerow([repr(int(arrival) / NS), trace.workloads[tag]])
    return path


__all__ = [
    "NS",
    "RequestTrace",
    "TraceError",
    "diurnal_trace",
    "load_trace",
    "poisson_trace",
    "write_trace_csv",
]
