"""Per-batch service-time and energy model backing the serving layer.

:class:`ServiceModel` is the bridge between the queueing simulation and
the paper's NPU simulator: for every (workload, batch size) the pod
actually forms, it runs :func:`repro.core.regate.simulate_workload`
once (memoized) and exposes

* the batch service time in integer nanoseconds (the NoPG iteration
  time — gating's sub-percent wake-up overhead is accounted in energy,
  not in the queueing timeline);
* the pod busy energy of that batch under every gating policy;
* the pod idle power under every policy (via
  :class:`~repro.carbon.operational.OperationalCarbonModel`'s gated
  idle-power model), which prices the time replicas sit between
  batches — the term that makes power gating's fleet savings shrink as
  utilization rises.

Only batch sizes that actually occur are simulated: a trace that forms
batches of sizes {1, 7, 8} costs three simulator calls per workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.carbon.operational import OperationalCarbonModel
from repro.core.config import SimulationConfig
from repro.core.regate import simulate_workload
from repro.core.results import SimulationResult
from repro.gating.report import PolicyName
from repro.serving.arrivals import NS


@dataclass(frozen=True)
class PodSpec:
    """One workload's pod shape: chip generation, pod size, batch cap."""

    workload: str
    chip: str = "NPU-D"
    num_chips: int | None = None  # None: the workload's default pod
    max_batch: int = 8

    def describe(self) -> str:
        chips = self.num_chips if self.num_chips is not None else "default"
        return (
            f"{self.workload} on {self.chip} x{chips} "
            f"(max batch {self.max_batch})"
        )


@dataclass
class ServiceModel:
    """Memoized simulator lookups for the serving simulation."""

    policies: tuple[PolicyName, ...] = SimulationConfig().policies
    _results: dict[tuple[str, str, int | None, int], SimulationResult] = field(
        default_factory=dict, repr=False
    )
    _idle_power: dict[tuple[str, str, int | None, PolicyName], float] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------ #
    def result(self, pod: PodSpec, batch_size: int) -> SimulationResult:
        """The (memoized) simulation of one batch size on one pod."""
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        key = (pod.workload, pod.chip, pod.num_chips, batch_size)
        if key not in self._results:
            self._results[key] = simulate_workload(
                pod.workload,
                SimulationConfig(
                    chip=pod.chip,
                    num_chips=pod.num_chips,
                    batch_size=batch_size,
                    policies=self.policies,
                ),
            )
        return self._results[key]

    # ------------------------------------------------------------------ #
    def service_ns(self, pod: PodSpec, batch_size: int) -> int:
        """Service time of one batch, in integer nanoseconds."""
        time_s = self.result(pod, batch_size).iteration_time_s(PolicyName.NOPG)
        return max(1, int(round(time_s * NS)))

    def busy_energy_j(
        self, pod: PodSpec, batch_size: int, policy: PolicyName
    ) -> float:
        """Pod energy of serving one batch under ``policy`` (joules)."""
        result = self.result(pod, batch_size)
        return result.report(policy).total_energy_j * result.num_chips

    def idle_power_w(self, pod: PodSpec, policy: PolicyName) -> float:
        """Pod power while a replica is up but serving nothing (watts).

        NoPG leaks the chips' full static power; gating policies bring
        every gateable component down to its gated leakage ratio — the
        same model :mod:`repro.carbon.operational` uses for duty-cycle
        idle energy, so serving and carbon accounting agree.
        """
        key = (pod.workload, pod.chip, pod.num_chips, policy)
        if key not in self._idle_power:
            result = self.result(pod, max(1, pod.max_batch))
            per_chip = OperationalCarbonModel().idle_power_w(result, policy)
            self._idle_power[key] = per_chip * result.num_chips
        return self._idle_power[key]

    # ------------------------------------------------------------------ #
    def replica_rps(self, pod: PodSpec, batch_size: int | None = None) -> float:
        """Steady-state requests/second one replica sustains at a batch size."""
        size = batch_size if batch_size is not None else pod.max_batch
        return size * NS / self.service_ns(pod, size)


__all__ = ["PodSpec", "ServiceModel"]
