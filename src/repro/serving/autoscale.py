"""SLO-aware pod autoscaling for the serving simulation.

The autoscaler answers two questions per workload:

1. **What does one replica look like?**  It reuses
   :class:`repro.core.slo.SLOSearch` — the paper's Table 4 machinery —
   to pick the most energy-efficient SLO-compliant pod configuration
   (chip count and batch size) on the requested NPU generation.  If the
   search returns an infeasible selection (no runnable configuration),
   sizing fails with a :class:`ServingError` naming the workload.

2. **How many replicas?**  Enough that the peak windowed arrival rate
   keeps every pool at or below a target utilization:
   ``replicas = ceil(peak_qps / (replica_rps * target_utilization))``
   where ``replica_rps`` comes from the replica's measured batch
   service time.  Head-room below 100% is what keeps queueing delay —
   and therefore the latency SLO — bounded under bursty arrivals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.slo import SLOSearch, SLOSelection
from repro.serving.arrivals import RequestTrace
from repro.serving.service import PodSpec, ServiceModel


class ServingError(RuntimeError):
    """The serving simulation cannot be set up as requested."""


@dataclass(frozen=True)
class PodPlan:
    """One workload's sized pool: pod shape, replica count, provenance."""

    pod: PodSpec
    replicas: int
    demand_qps: float
    replica_rps: float
    selection: SLOSelection | None = None  # None when sized manually

    def describe(self) -> str:
        how = "SLO-sized" if self.selection is not None else "manual"
        return (
            f"{self.pod.describe()}: {self.replicas} replica(s) "
            f"[{how}; demand {self.demand_qps:.2f} rps, "
            f"one replica {self.replica_rps:.2f} rps]"
        )


@dataclass
class Autoscaler:
    """Sizes replica pools from a trace's peak windowed demand."""

    service_model: ServiceModel
    chip: str = "NPU-D"
    slo_search: SLOSearch = field(default_factory=SLOSearch)
    target_utilization: float = 0.8
    demand_window_s: float = 60.0
    min_replicas: int = 1
    max_replicas: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilization <= 1.0:
            raise ServingError("target utilization must be in (0, 1]")
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ServingError("bad replica bounds")

    # ------------------------------------------------------------------ #
    def select_pod(self, workload: str) -> tuple[PodSpec, SLOSelection]:
        """The SLO search's most energy-efficient compliant pod shape."""
        selection = self.slo_search.search(workload, self.chip)
        if not selection.feasible:
            raise ServingError(
                f"no runnable pod configuration for {workload!r} on "
                f"{self.chip} — the SLO search returned an infeasible "
                "selection; pick a larger chip or size the pod manually"
            )
        pod = PodSpec(
            workload=workload,
            chip=self.chip,
            num_chips=selection.num_chips,
            max_batch=max(1, selection.batch_size),
        )
        return pod, selection

    def size(
        self,
        trace: RequestTrace,
        workload: str,
        pod: PodSpec | None = None,
    ) -> PodPlan:
        """Size one workload's pool against the trace's peak demand.

        ``pod`` overrides the SLO-searched shape (manual sizing keeps
        the demand-driven replica count).
        """
        selection: SLOSelection | None = None
        if pod is None:
            pod, selection = self.select_pod(workload)
        try:
            workload_id = trace.workloads.index(workload)
        except ValueError:
            workload_id = -1
        if workload_id >= 0:
            mask = trace.workload_mask(workload_id)
            sub = RequestTrace(
                trace.arrival_ns[mask], trace.workload_ids[mask], trace.workloads
            )
            demand = sub.demand_qps(self.demand_window_s)
        else:
            demand = 0.0
        replica_rps = self.service_model.replica_rps(pod)
        if replica_rps <= 0:
            raise ServingError(f"replica of {workload!r} has zero throughput")
        wanted = math.ceil(demand / (replica_rps * self.target_utilization))
        replicas = min(self.max_replicas, max(self.min_replicas, wanted))
        return PodPlan(
            pod=pod,
            replicas=replicas,
            demand_qps=demand,
            replica_rps=replica_rps,
            selection=selection,
        )

    def plan_fleet(
        self, trace: RequestTrace, pods: "dict[str, PodSpec] | None" = None
    ) -> dict[str, PodPlan]:
        """A :class:`PodPlan` per workload tag in the trace."""
        pods = pods or {}
        return {
            workload: self.size(trace, workload, pods.get(workload))
            for workload in trace.workloads
        }


__all__ = ["Autoscaler", "PodPlan", "ServingError"]
