"""Trace-driven fleet serving simulation with SLO-aware autoscaling.

A vectorized queueing simulation layered over the NPU simulator:
arrival processes (Poisson, diurnal, or trace files) feed a clocked
dynamic batcher, batches queue FCFS onto SLO-sized replica pools, and
every batch is priced through the paper's energy model — yielding
serving metrics (qps, latency percentiles, energy per request) and the
power-gating-savings-vs-utilization curve.  An event-at-a-time oracle
mirrors every vectorized stage bit-for-bit for equivalence testing
(``REPRO_FAST_PATH=0`` selects it end to end).
"""

from repro.serving.arrivals import (
    NS,
    RequestTrace,
    TraceError,
    diurnal_trace,
    load_trace,
    poisson_trace,
    write_trace_csv,
)
from repro.serving.autoscale import Autoscaler, PodPlan, ServingError
from repro.serving.batching import (
    BatchPolicy,
    BatchTable,
    form_batches,
    form_batches_oracle,
)
from repro.serving.metrics import PolicyEnergy, WorkloadMetrics, metrics_table
from repro.serving.queueing import (
    queue_batches,
    queue_batches_oracle,
    request_latencies,
)
from repro.serving.rollup import ServingCarbonReport, carbon_table, rollup_carbon
from repro.serving.service import PodSpec, ServiceModel
from repro.serving.simulate import (
    CurvePoint,
    ServingReport,
    curve_table,
    simulate_serving,
    utilization_curve,
)

__all__ = [
    "NS",
    "Autoscaler",
    "BatchPolicy",
    "BatchTable",
    "CurvePoint",
    "PodPlan",
    "PodSpec",
    "PolicyEnergy",
    "RequestTrace",
    "ServiceModel",
    "ServingCarbonReport",
    "ServingError",
    "ServingReport",
    "TraceError",
    "WorkloadMetrics",
    "carbon_table",
    "curve_table",
    "diurnal_trace",
    "form_batches",
    "form_batches_oracle",
    "load_trace",
    "metrics_table",
    "poisson_trace",
    "queue_batches",
    "queue_batches_oracle",
    "request_latencies",
    "rollup_carbon",
    "simulate_serving",
    "utilization_curve",
    "write_trace_csv",
]
