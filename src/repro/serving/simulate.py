"""The trace-driven fleet serving simulation (orchestrator).

:func:`simulate_serving` ties the layers together: a
:class:`~repro.serving.arrivals.RequestTrace` is batched
(:mod:`~repro.serving.batching`), queued onto replica pools
(:mod:`~repro.serving.queueing`), priced per gating policy through the
NPU simulator (:mod:`~repro.serving.service`) and summarized as the
serving-metrics table (:mod:`~repro.serving.metrics`).

Which queueing implementation runs follows the repo-wide columnar
switch: the vectorized path when
:func:`repro.simulator.columnar.fast_path_enabled` (the default), the
event-at-a-time oracle under ``REPRO_FAST_PATH=0`` — the two are
bit-identical by contract and the serving equivalence suite asserts it.

:func:`utilization_curve` produces the paper-extending result the
ROADMAP asks for: power-gating savings as a function of fleet
utilization, computed by replaying one trace at compressed/stretched
load levels against a fixed fleet.  As utilization rises the idle time
between batches — the gating opportunity — shrinks, and fleet savings
converge to the busy-execution savings alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.gating.report import PolicyName
from repro.simulator import columnar
from repro.serving.arrivals import NS, RequestTrace
from repro.serving.autoscale import PodPlan
from repro.serving.batching import BatchPolicy, BatchTable, form_batches, form_batches_oracle
from repro.serving.metrics import (
    PolicyEnergy,
    WorkloadMetrics,
    aggregate_fleet,
    compute_workload_metrics,
    metrics_table,
)
from repro.serving.queueing import (
    queue_batches,
    queue_batches_oracle,
    request_latencies,
)
from repro.serving.service import ServiceModel


@dataclass
class ServingReport:
    """Everything one serving run produced."""

    trace: RequestTrace
    plans: dict[str, PodPlan]
    batches: BatchTable
    start_ns: np.ndarray
    finish_ns: np.ndarray
    queue_wait_ns: np.ndarray
    latency_ns: np.ndarray
    span_ns: int
    per_workload: list[WorkloadMetrics] = field(default_factory=list)
    fleet: WorkloadMetrics | None = None

    def metrics_table(self, policy: PolicyName = PolicyName.REGATE_FULL) -> str:
        assert self.fleet is not None
        return metrics_table(self.per_workload, self.fleet, policy)

    def fleet_energy(self, policy: PolicyName) -> PolicyEnergy:
        assert self.fleet is not None
        return self.fleet.energy[policy]

    def fleet_savings(self, policy: PolicyName) -> float:
        assert self.fleet is not None
        return self.fleet.savings(policy)

    @property
    def fleet_utilization(self) -> float:
        assert self.fleet is not None
        return self.fleet.utilization

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": "repro-serving-report",
            "span_s": self.span_ns / NS,
            "pools": {plan.pod.workload: plan.describe() for plan in self.plans.values()},
            "per_workload": [metric.to_json() for metric in self.per_workload],
            "fleet": self.fleet.to_json() if self.fleet else None,
        }


def _batch_service_ns(
    batches: BatchTable, plans: dict[str, PodPlan], model: ServiceModel
) -> np.ndarray:
    """Per-batch service times: one simulator call per distinct size."""
    service = np.zeros(len(batches), dtype=np.int64)
    for wid, workload in enumerate(batches.workloads):
        rows = batches.workload_slice(wid)
        if rows.stop == rows.start:
            continue
        pod = plans[workload].pod
        sizes = batches.sizes[rows]
        for size in np.unique(sizes):
            ns = model.service_ns(pod, int(size))
            service[rows.start + np.flatnonzero(sizes == size)] = ns
    return service


def _policy_energy(
    batches: BatchTable,
    service_ns: np.ndarray,
    plans: dict[str, PodPlan],
    model: ServiceModel,
    span_ns: int,
    wid: int,
) -> dict[PolicyName, PolicyEnergy]:
    """Busy + idle fleet energy of one workload pool, per policy.

    Busy energy sums the simulator's per-batch pod energy; idle energy
    prices the pool's remaining up-time at the policy's gated idle
    power.  Identical int64 inputs on both queueing paths make these
    floats identical too.
    """
    workload = batches.workloads[wid]
    plan = plans[workload]
    rows = batches.workload_slice(wid)
    sizes = batches.sizes[rows]
    requests = int(sizes.sum()) if len(sizes) else 0
    busy_ns = int(service_ns[rows].sum()) if rows.stop > rows.start else 0
    idle_ns = max(0, plan.replicas * span_ns - busy_ns)
    energy: dict[PolicyName, PolicyEnergy] = {}
    for policy in model.policies:
        busy_j = 0.0
        for size in np.unique(sizes):
            count = int((sizes == size).sum())
            busy_j += count * model.busy_energy_j(plan.pod, int(size), policy)
        idle_j = model.idle_power_w(plan.pod, policy) * (idle_ns / NS)
        energy[policy] = PolicyEnergy(
            busy_j=busy_j, idle_j=idle_j, requests=requests
        )
    return energy


def simulate_serving(
    trace: RequestTrace,
    plans: dict[str, PodPlan],
    service_model: ServiceModel,
    max_wait_s: float = 0.050,
    use_fast_path: bool | None = None,
) -> ServingReport:
    """Run the fleet serving simulation over one trace.

    ``plans`` must cover every workload tag in the trace (the
    :class:`~repro.serving.autoscale.Autoscaler` produces them).
    ``use_fast_path`` overrides the repo-wide columnar switch; the two
    paths are bit-identical.
    """
    missing = [name for name in trace.workloads if name not in plans]
    if missing:
        raise KeyError(f"no pod plan for workload(s) {missing}")
    fast = columnar.fast_path_enabled() if use_fast_path is None else use_fast_path
    policies = {
        wid: BatchPolicy(
            max_batch=plans[name].pod.max_batch, max_wait_s=max_wait_s
        )
        for wid, name in enumerate(trace.workloads)
    }
    former = form_batches if fast else form_batches_oracle
    batches = former(trace, policies)
    service_ns = _batch_service_ns(batches, plans, service_model)
    replicas = {
        wid: plans[name].replicas for wid, name in enumerate(trace.workloads)
    }
    queue = queue_batches if fast else queue_batches_oracle
    start_ns, finish_ns, _replica_of = queue(batches, service_ns, replicas)
    queue_wait_ns, latency_ns = request_latencies(
        trace, batches, start_ns, finish_ns
    )
    if len(trace):
        span_ns = int(finish_ns.max() - trace.arrival_ns.min())
    else:
        span_ns = 0

    per_workload: list[WorkloadMetrics] = []
    for wid, workload in enumerate(trace.workloads):
        rows = batches.workload_slice(wid)
        mask = trace.workload_mask(wid)
        energy = _policy_energy(
            batches, service_ns, plans, service_model, span_ns, wid
        )
        per_workload.append(
            compute_workload_metrics(
                workload=workload,
                replicas=plans[workload].replicas,
                span_ns=span_ns,
                sizes=batches.sizes[rows],
                service_ns=service_ns[rows],
                queue_wait_ns=queue_wait_ns[mask],
                latency_ns=latency_ns[mask],
                energy=energy,
            )
        )
    fleet = aggregate_fleet(per_workload, span_ns)
    return ServingReport(
        trace=trace,
        plans=plans,
        batches=batches,
        start_ns=start_ns,
        finish_ns=finish_ns,
        queue_wait_ns=queue_wait_ns,
        latency_ns=latency_ns,
        span_ns=span_ns,
        per_workload=per_workload,
        fleet=fleet,
    )


#: Load factors of the default gating-vs-utilization curve: from a
#: mostly-idle fleet to saturation of the autoscaled operating point.
DEFAULT_LOAD_FACTORS = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class CurvePoint:
    """One load level of the gating-savings-vs-utilization curve."""

    load_factor: float
    qps: float
    utilization: float
    p99_latency_ms: float
    savings: dict[PolicyName, float]
    energy_per_request_j: dict[PolicyName, float]


def utilization_curve(
    trace: RequestTrace,
    plans: dict[str, PodPlan],
    service_model: ServiceModel,
    load_factors: Sequence[float] = DEFAULT_LOAD_FACTORS,
    max_wait_s: float = 0.050,
    use_fast_path: bool | None = None,
) -> list[CurvePoint]:
    """Gating savings vs utilization: replay the trace across load levels.

    The fleet (replica counts, pod shapes) stays fixed while the trace
    is time-compressed by each load factor — quantifying exactly how
    the power-gating opportunity shrinks as utilization rises.
    """
    points = []
    for factor in load_factors:
        report = simulate_serving(
            trace.compressed(factor),
            plans,
            service_model,
            max_wait_s=max_wait_s,
            use_fast_path=use_fast_path,
        )
        assert report.fleet is not None
        points.append(
            CurvePoint(
                load_factor=factor,
                qps=report.fleet.qps,
                utilization=report.fleet_utilization,
                p99_latency_ms=report.fleet.p99_latency_ms,
                savings={
                    policy: report.fleet_savings(policy)
                    for policy in service_model.policies
                    if policy is not PolicyName.NOPG
                },
                energy_per_request_j={
                    policy: report.fleet_energy(policy).per_request_j
                    for policy in service_model.policies
                },
            )
        )
    return points


def curve_table(points: "list[CurvePoint]") -> str:
    """The gating-opportunity-shrinks-under-load curve as a table."""
    from repro.analysis.tables import format_table, percentage

    policies = list(points[0].savings) if points else []
    rows = [
        [
            f"{point.load_factor:g}x",
            f"{point.qps:.2f}",
            percentage(point.utilization),
            f"{point.p99_latency_ms:.2f}",
            *[percentage(point.savings[policy]) for policy in policies],
        ]
        for point in points
    ]
    return format_table(
        [
            "load",
            "qps",
            "util",
            "p99 latency (ms)",
            *[f"savings ({policy.value})" for policy in policies],
        ],
        rows,
        title="Power-gating savings vs fleet utilization "
        "(fixed fleet, time-compressed trace)",
    )


__all__ = [
    "CurvePoint",
    "DEFAULT_LOAD_FACTORS",
    "ServingReport",
    "curve_table",
    "simulate_serving",
    "utilization_curve",
]
