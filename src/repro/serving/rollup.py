"""Fleet-level carbon rollup of a serving run.

Bridges the serving simulation into the carbon stack:
:func:`rollup_carbon` converts a :class:`~repro.serving.simulate.ServingReport`'s
per-policy fleet energy (measured busy + idle joules, not the assumed
duty cycle) into operational carbon via
:class:`~repro.carbon.operational.OperationalCarbonModel`, and re-runs
the Figure 25 lifespan trade-off
(:class:`~repro.carbon.lifespan.LifespanAnalysis`) per workload at the
pool's *measured* utilization — showing how power gating both cuts a
trace's operational carbon and extends the carbon-optimal device
lifespan under realistic, bursty load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.carbon.lifespan import LifespanAnalysis
from repro.carbon.operational import OperationalCarbonModel
from repro.gating.report import PolicyName
from repro.serving.arrivals import NS
from repro.serving.service import ServiceModel
from repro.serving.simulate import ServingReport


@dataclass(frozen=True)
class PolicyCarbon:
    """Operational carbon of serving the trace under one gating policy."""

    operational_kg: float
    per_request_kg: float
    reduction_vs_nopg: float


@dataclass(frozen=True)
class WorkloadLifespan:
    """One pool's carbon-optimal device lifespan under two policies."""

    workload: str
    utilization: float
    nopg_years: int
    gated_years: int


@dataclass
class ServingCarbonReport:
    """Carbon rollup of one serving run."""

    span_s: float
    duty_cycle: float  # the fleet's measured utilization
    per_policy: dict[PolicyName, PolicyCarbon] = field(default_factory=dict)
    lifespans: list[WorkloadLifespan] = field(default_factory=list)
    lifespan_policy: PolicyName = PolicyName.REGATE_FULL

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": "repro-serving-carbon",
            "span_s": self.span_s,
            "measured_duty_cycle": self.duty_cycle,
            "per_policy": {
                policy.value: {
                    "operational_kg": entry.operational_kg,
                    "per_request_kg": entry.per_request_kg,
                    "reduction_vs_nopg": entry.reduction_vs_nopg,
                }
                for policy, entry in self.per_policy.items()
            },
            "lifespans": [
                {
                    "workload": entry.workload,
                    "utilization": entry.utilization,
                    "optimal_years_nopg": entry.nopg_years,
                    f"optimal_years_{self.lifespan_policy.value}": entry.gated_years,
                }
                for entry in self.lifespans
            ],
        }


def rollup_carbon(
    report: ServingReport,
    service_model: ServiceModel,
    carbon_model: OperationalCarbonModel | None = None,
    lifespan_policy: PolicyName = PolicyName.REGATE_FULL,
) -> ServingCarbonReport:
    """Operational carbon + lifespan trade-off of one serving run."""
    assert report.fleet is not None
    carbon_model = carbon_model or OperationalCarbonModel()
    nopg = report.fleet.energy.get(PolicyName.NOPG)
    nopg_kg = carbon_model.energy_to_carbon_kg(nopg.total_j) if nopg else 0.0

    per_policy: dict[PolicyName, PolicyCarbon] = {}
    for policy, energy in report.fleet.energy.items():
        kg = carbon_model.energy_to_carbon_kg(energy.total_j)
        per_policy[policy] = PolicyCarbon(
            operational_kg=kg,
            per_request_kg=kg / energy.requests if energy.requests else 0.0,
            reduction_vs_nopg=1.0 - kg / nopg_kg if nopg_kg > 0 else 0.0,
        )

    lifespans: list[WorkloadLifespan] = []
    for metric in report.per_workload:
        plan = report.plans[metric.workload]
        result = service_model.result(plan.pod, plan.pod.max_batch)
        analysis = LifespanAnalysis.for_serving(
            result, metric.utilization, operational_model=carbon_model
        )
        lifespans.append(
            WorkloadLifespan(
                workload=metric.workload,
                utilization=metric.utilization,
                nopg_years=analysis.optimal_lifespan(PolicyName.NOPG),
                gated_years=analysis.optimal_lifespan(lifespan_policy),
            )
        )

    return ServingCarbonReport(
        span_s=report.span_ns / NS,
        duty_cycle=report.fleet.utilization,
        per_policy=per_policy,
        lifespans=lifespans,
        lifespan_policy=lifespan_policy,
    )


def carbon_table(rollup: ServingCarbonReport) -> str:
    """The carbon rollup as two short tables."""
    from repro.analysis.tables import format_table, percentage

    policy_rows = [
        [
            policy.value,
            f"{entry.operational_kg:.4f}",
            f"{entry.per_request_kg * 1e6:.2f}",
            percentage(entry.reduction_vs_nopg),
        ]
        for policy, entry in rollup.per_policy.items()
    ]
    lines = [
        format_table(
            ["policy", "kgCO2e", "mgCO2e/request", "reduction"],
            policy_rows,
            title=(
                "Operational carbon of the serving trace "
                f"(measured duty cycle {rollup.duty_cycle:.1%})"
            ),
        )
    ]
    if rollup.lifespans:
        lifespan_rows = [
            [
                entry.workload,
                percentage(entry.utilization),
                str(entry.nopg_years),
                str(entry.gated_years),
            ]
            for entry in rollup.lifespans
        ]
        lines.append(
            format_table(
                [
                    "pool",
                    "util",
                    "optimal lifespan (NoPG)",
                    f"optimal lifespan ({rollup.lifespan_policy.value})",
                ],
                lifespan_rows,
                title="Carbon-optimal device lifespan at measured utilization",
            )
        )
    return "\n\n".join(lines)


__all__ = [
    "PolicyCarbon",
    "ServingCarbonReport",
    "WorkloadLifespan",
    "carbon_table",
    "rollup_carbon",
]
