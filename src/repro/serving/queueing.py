"""Replica queueing for the serving simulation.

Each workload is served by a pool of identical replicas.  Batches are
handed to replicas round-robin in dispatch order (batch ``k`` of a
workload runs on replica ``k mod R``), and every replica serves its
batches FCFS — the standard deterministic router that keeps the system
analyzable and, crucially, lets the per-replica timeline be computed
two ways with bit-identical results:

* :func:`queue_batches` — columnar.  For each replica stripe the FCFS
  recursion ``finish[k] = max(ready[k], finish[k-1]) + service[k]``
  is rewritten as a ``cumsum`` plus a running maximum:
  ``finish[k] = cum[k] + max_{j<=k}(ready[j] - cum[j-1])``.  On the
  integer-nanosecond time base this algebra is exact, so the rewrite
  is not an approximation — it is the same recursion evaluated with
  array primitives.
* :func:`queue_batches_oracle` — the event-at-a-time reference: walk
  batches in dispatch order, tracking each replica's free time.

The equivalence suite asserts exact array equality between the two
across arrival processes, batch policies and replica counts.
"""

from __future__ import annotations

import numpy as np

from repro.serving.arrivals import RequestTrace, TraceError
from repro.serving.batching import BatchTable


def _replica_counts(
    batches: BatchTable, replicas: "dict[int, int] | int"
) -> dict[int, int]:
    if isinstance(replicas, int):
        counts = {wid: replicas for wid in range(len(batches.workloads))}
    else:
        counts = dict(replicas)
    for wid in range(len(batches.workloads)):
        count = counts.get(wid, 1)
        if count < 1:
            raise TraceError(
                f"workload {batches.workloads[wid]!r} needs >= 1 replica, got {count}"
            )
        counts[wid] = count
    return counts


def _strided_fcfs(ready: np.ndarray, service: np.ndarray) -> np.ndarray:
    """Exact single-server FCFS finish times via cumsum + running max."""
    cum = np.cumsum(service)
    # ready[k] - cum[k-1]  (cum[-1] := 0)
    offset = ready - (cum - service)
    return np.maximum.accumulate(offset) + cum


def queue_batches(
    batches: BatchTable,
    service_ns: np.ndarray,
    replicas: "dict[int, int] | int",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Columnar start/finish/replica arrays for every batch.

    ``service_ns`` is per batch (int64).  ``replicas`` maps workload id
    to pool size (an int broadcasts).  Returns ``(start_ns, finish_ns,
    replica_of)`` aligned with the batch table rows.
    """
    counts = _replica_counts(batches, replicas)
    start = np.zeros(len(batches), dtype=np.int64)
    finish = np.zeros(len(batches), dtype=np.int64)
    replica_of = np.zeros(len(batches), dtype=np.int64)
    for wid in range(len(batches.workloads)):
        rows = batches.workload_slice(wid)
        count = counts[wid]
        pool = np.arange(rows.stop - rows.start, dtype=np.int64) % count
        replica_of[rows] = pool
        ready_all = batches.close_ns[rows]
        service_all = service_ns[rows]
        for replica in range(count):
            stripe = np.flatnonzero(pool == replica)
            if len(stripe) == 0:
                continue
            fin = _strided_fcfs(ready_all[stripe], service_all[stripe])
            finish[rows.start + stripe] = fin
            start[rows.start + stripe] = fin - service_all[stripe]
    return start, finish, replica_of


def queue_batches_oracle(
    batches: BatchTable,
    service_ns: np.ndarray,
    replicas: "dict[int, int] | int",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Event-at-a-time reference for :func:`queue_batches`."""
    counts = _replica_counts(batches, replicas)
    start = np.zeros(len(batches), dtype=np.int64)
    finish = np.zeros(len(batches), dtype=np.int64)
    replica_of = np.zeros(len(batches), dtype=np.int64)
    free: dict[tuple[int, int], int] = {}
    sequence: dict[int, int] = {}
    for row in range(len(batches)):
        wid = int(batches.workload_ids[row])
        k = sequence.get(wid, 0)
        sequence[wid] = k + 1
        replica = k % counts[wid]
        ready = int(batches.close_ns[row])
        begin = max(ready, free.get((wid, replica), 0))
        end = begin + int(service_ns[row])
        free[(wid, replica)] = end
        start[row] = begin
        finish[row] = end
        replica_of[row] = replica
    return start, finish, replica_of


def request_latencies(
    trace: RequestTrace,
    batches: BatchTable,
    start_ns: np.ndarray,
    finish_ns: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-request ``(queue_wait_ns, latency_ns)``.

    Queue wait is arrival → batch service start (batch forming plus
    replica queueing — the TTFT-like component); latency is arrival →
    batch completion (the time-per-request metric).
    """
    if len(trace) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    batch = batches.request_batch
    queue_wait = start_ns[batch] - trace.arrival_ns
    latency = finish_ns[batch] - trace.arrival_ns
    return queue_wait, latency


__all__ = [
    "queue_batches",
    "queue_batches_oracle",
    "request_latencies",
]
