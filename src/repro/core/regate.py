"""Top-level simulation entry points.

:func:`simulate_workload` is the main public API of the reproduction: it
builds a workload graph, runs the performance simulator and evaluates the
requested power-gating policies, returning a
:class:`~repro.core.results.SimulationResult`.
"""

from __future__ import annotations

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.gating.policies import get_policy
from repro.gating.report import PolicyName
from repro.hardware.power import ChipPowerModel
from repro.simulator import columnar
from repro.simulator.engine import NPUSimulator, WorkloadProfile
from repro.workloads.base import OperatorGraph, ParallelismConfig
from repro.workloads.registry import WorkloadSpec, get_workload
from repro.workloads.table import GraphTable


def build_workload_graph(
    spec: WorkloadSpec, batch_size: int, parallelism: ParallelismConfig
) -> OperatorGraph | GraphTable:
    """Build a workload's graph in the IR the active path consumes.

    On the columnar fast path the builders emit a
    :class:`~repro.workloads.table.GraphTable` directly (no per-operator
    Python objects); on the object-path oracle they build the
    :class:`OperatorGraph`.  Both IRs are bit-identical by contract and
    the simulator accepts either.
    """
    if columnar.fast_path_enabled():
        return spec.build_table(batch_size=batch_size, parallelism=parallelism)
    return spec.build_graph(batch_size=batch_size, parallelism=parallelism)


def simulate_graph(
    graph: OperatorGraph,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Simulate an already-built operator graph under ``config``.

    Use this when you have constructed a custom
    :class:`~repro.workloads.base.OperatorGraph` (e.g. a single operator
    or a new model architecture) rather than a registered workload.
    """
    config = config or SimulationConfig()
    chip = config.resolve_chip()
    simulator = NPUSimulator(chip, apply_fusion=config.apply_fusion)
    profile = simulator.simulate(graph)
    return _evaluate(graph.name, profile, graph.parallelism, graph, config)


def simulate_workload(
    workload: str | WorkloadSpec,
    config: SimulationConfig | None = None,
    **config_overrides,
) -> SimulationResult:
    """Simulate a registered workload (Table 1) under a configuration.

    Parameters
    ----------
    workload:
        A workload name (``"llama3-70b-prefill"``, ``"dlrm-m"``,
        ``"dit-xl"``, ...) or a :class:`WorkloadSpec`.
    config:
        Optional :class:`SimulationConfig`; keyword overrides such as
        ``chip="NPU-C"`` or ``num_chips=8`` are applied on top.
    """
    if config_overrides:
        base = config or SimulationConfig()
        config = SimulationConfig(**{**base.__dict__, **config_overrides})
    config = config or SimulationConfig()
    spec = workload if isinstance(workload, WorkloadSpec) else get_workload(workload)
    chip, batch_size, parallelism = resolve_execution(spec, config)
    graph = build_workload_graph(spec, batch_size, parallelism)
    simulator = NPUSimulator(chip, apply_fusion=config.apply_fusion)
    profile = simulator.simulate(graph)
    return _evaluate(spec.name, profile, parallelism, graph, config)


def resolve_execution(spec: WorkloadSpec, config: SimulationConfig):
    """Resolve the (chip, batch size, parallelism) a config implies.

    The single source of the defaulting rules, shared by the direct
    simulation path above and the memoized path in
    :mod:`repro.experiments.cache` (their cache keys must agree with
    what actually runs).
    """
    chip = config.resolve_chip()
    num_chips = config.num_chips or spec.default_num_chips
    batch_size = config.batch_size or spec.default_batch_size
    parallelism = config.parallelism or spec.parallelism_for(
        num_chips, chip.hbm.capacity_bytes
    )
    return chip, batch_size, parallelism


def build_result(
    name: str,
    profile: WorkloadProfile,
    parallelism: ParallelismConfig,
    graph: OperatorGraph,
    config: SimulationConfig,
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` shell (no policy reports yet)."""
    return SimulationResult(
        workload=name,
        chip=config.resolve_chip(),
        num_chips=parallelism.num_chips,
        batch_size=graph.batch_size,
        parallelism=parallelism,
        profile=profile,
        work_per_iteration=graph.work_per_iteration,
        iteration_unit=graph.iteration_unit,
    )


def _evaluate(
    name: str,
    profile: WorkloadProfile,
    parallelism: ParallelismConfig,
    graph: OperatorGraph,
    config: SimulationConfig,
) -> SimulationResult:
    result = build_result(name, profile, parallelism, graph, config)
    power_model = ChipPowerModel.for_chip(result.chip)
    for policy_name in config.policies:
        policy = get_policy(policy_name, config.gating_parameters)
        result.reports[policy_name] = policy.evaluate(profile, power_model)
    return result


__all__ = ["build_workload_graph", "simulate_graph", "simulate_workload"]
