"""Simulation configuration shared by the analyses and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gating.bet import DEFAULT_PARAMETERS, GatingParameters
from repro.gating.report import PolicyName
from repro.hardware.chips import NPUChipSpec, get_chip
from repro.workloads.base import ParallelismConfig

#: Chip duty cycle assumed throughout the paper (60%, from Wu et al.).
DEFAULT_DUTY_CYCLE = 0.60
#: Data-center power usage effectiveness (1.1, Google 2025).
DEFAULT_PUE = 1.1
#: Grid carbon intensity in kgCO2e per kWh (Google 2024 environmental report).
DEFAULT_CARBON_INTENSITY = 0.0624


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to run one workload/chip/policy simulation."""

    chip: str | NPUChipSpec = "NPU-D"
    num_chips: int | None = None
    batch_size: int | None = None
    parallelism: ParallelismConfig | None = None
    policies: tuple[PolicyName, ...] = (
        PolicyName.NOPG,
        PolicyName.REGATE_BASE,
        PolicyName.REGATE_HW,
        PolicyName.REGATE_FULL,
        PolicyName.IDEAL,
    )
    gating_parameters: GatingParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    duty_cycle: float = DEFAULT_DUTY_CYCLE
    pue: float = DEFAULT_PUE
    carbon_intensity_kg_per_kwh: float = DEFAULT_CARBON_INTENSITY
    apply_fusion: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1.0")
        if self.num_chips is not None and self.num_chips < 1:
            raise ValueError("num_chips must be positive")

    # ------------------------------------------------------------------ #
    def resolve_chip(self) -> NPUChipSpec:
        """Return the chip spec, resolving names through the registry."""
        if isinstance(self.chip, NPUChipSpec):
            return self.chip
        return get_chip(self.chip)

    def with_policy_subset(self, *policies: PolicyName) -> "SimulationConfig":
        """Copy of this config evaluating only the given policies."""
        return replace(self, policies=tuple(policies))

    def with_gating_parameters(self, parameters: GatingParameters) -> "SimulationConfig":
        """Copy of this config with different gating parameters."""
        return replace(self, gating_parameters=parameters)

    def with_chip(self, chip: str | NPUChipSpec) -> "SimulationConfig":
        """Copy of this config targeting a different NPU generation."""
        return replace(self, chip=chip)


__all__ = [
    "DEFAULT_CARBON_INTENSITY",
    "DEFAULT_DUTY_CYCLE",
    "DEFAULT_PUE",
    "SimulationConfig",
]
