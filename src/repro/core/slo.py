"""SLO-compliant configuration search (§3 and Table 4 of the paper).

The paper compares NPU generations fairly by fixing a service-level
objective: each workload's performance with its default batch size on
the minimum number of NPU-D chips defines the 1x reference, the SLO is
1/5 of that performance, and every NPU generation is evaluated at its
most energy-efficient SLO-compliant pod configuration (chip count and
batch size).  This module implements that search on top of
:func:`repro.core.regate.simulate_workload`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import SimulationConfig
from repro.core.regate import simulate_workload
from repro.core.results import SimulationResult
from repro.gating.report import PolicyName
from repro.hardware.chips import NPUChipSpec, get_chip
from repro.workloads.base import ParallelismConfig
from repro.workloads.registry import WorkloadSpec, get_workload

#: The paper's SLO relaxation factor (1x SLO = 1/5 of reference performance).
SLO_RELAXATION = 5.0
DEFAULT_CHIP_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class SLOSelection:
    """The chosen configuration of one workload on one NPU generation."""

    workload: str
    chip: str
    num_chips: int
    batch_size: int
    parallelism: ParallelismConfig
    throughput: float
    energy_per_work_j: float
    attained_slo: float  # 1.0 means the 1x SLO is met; 2.0 means 2x relaxed

    @property
    def meets_slo(self) -> bool:
        return self.feasible and self.attained_slo <= 1.0 + 1e-9

    @property
    def feasible(self) -> bool:
        """Whether *any* runnable configuration backed this selection."""
        return self.num_chips > 0

    @classmethod
    def infeasible(cls, workload: str, chip: str) -> "SLOSelection":
        """The explicit no-runnable-configuration marker.

        Returned by :meth:`SLOSearch.search` when every candidate pod
        is rejected (weights do not fit, no valid parallelism, empty
        candidate grids) — callers such as the serving autoscaler branch
        on ``feasible``/``meets_slo`` instead of catching exceptions.
        """
        return cls(
            workload=workload,
            chip=chip,
            num_chips=0,
            batch_size=0,
            parallelism=ParallelismConfig(),
            throughput=0.0,
            energy_per_work_j=math.inf,
            attained_slo=math.inf,
        )


@dataclass
class SLOSearch:
    """Sweeps pod configurations and picks the most energy-efficient one."""

    reference_chip: str = "NPU-D"
    chip_counts: tuple[int, ...] = DEFAULT_CHIP_COUNTS
    batch_scales: tuple[float, ...] = (0.5, 1.0, 2.0)
    policy: PolicyName = PolicyName.NOPG
    _reference_cache: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def _simulate(
        self, spec: WorkloadSpec, chip: str, num_chips: int, batch_size: int
    ) -> SimulationResult | None:
        chip_spec = get_chip(chip)
        parallelism = spec.parallelism_for(num_chips, chip_spec.hbm.capacity_bytes)
        if parallelism.num_chips != num_chips:
            return None
        if spec.memory_per_chip(parallelism, batch_size) > chip_spec.hbm.capacity_bytes:
            return None
        config = SimulationConfig(
            chip=chip,
            num_chips=num_chips,
            batch_size=batch_size,
            parallelism=parallelism,
            policies=(self.policy,),
        )
        return simulate_workload(spec, config)

    def reference_throughput(self, workload: str | WorkloadSpec) -> float:
        """Throughput of the default configuration on the reference chip."""
        spec = workload if isinstance(workload, WorkloadSpec) else get_workload(workload)
        if spec.name not in self._reference_cache:
            result = self._simulate(
                spec, self.reference_chip, spec.default_num_chips, spec.default_batch_size
            )
            if result is None:
                raise RuntimeError(
                    f"default configuration of {spec.name} does not fit on "
                    f"{self.reference_chip}"
                )
            self._reference_cache[spec.name] = result.throughput(self.policy)
        return self._reference_cache[spec.name]

    def slo_throughput(self, workload: str | WorkloadSpec) -> float:
        """The 1x SLO throughput target (1/5 of the reference)."""
        return self.reference_throughput(workload) / SLO_RELAXATION

    # ------------------------------------------------------------------ #
    def candidate_batches(self, spec: WorkloadSpec) -> list[int]:
        batches = sorted(
            {
                max(1, int(round(spec.default_batch_size * scale)))
                for scale in self.batch_scales
            }
        )
        return batches

    def search(self, workload: str | WorkloadSpec, chip: str) -> SLOSelection:
        """Pick the most energy-efficient SLO-compliant config on ``chip``.

        If no configuration meets the 1x SLO, the best relaxed SLO the
        chip can attain is reported (the paper labels such bars with the
        attainable SLO, e.g. "2x").  If *no* candidate configuration is
        runnable at all — the workload's weights fit on none of the
        candidate pods, or the candidate grids are empty — an explicit
        infeasible :class:`SLOSelection` is returned
        (``feasible``/``meets_slo`` both ``False``) rather than raising,
        so sweep- and autoscaler-style callers can record the gap and
        move on.
        """
        spec = workload if isinstance(workload, WorkloadSpec) else get_workload(workload)
        target = self.slo_throughput(spec)
        best_compliant: tuple[float, SLOSelection] | None = None
        best_any: tuple[float, SLOSelection] | None = None
        for num_chips in self.chip_counts:
            for batch_size in self.candidate_batches(spec):
                result = self._simulate(spec, chip, num_chips, batch_size)
                if result is None:
                    continue
                throughput = result.throughput(self.policy)
                energy = result.energy_per_work(self.policy)
                attained = math.inf if throughput <= 0 else target / throughput
                selection = SLOSelection(
                    workload=spec.name,
                    chip=chip,
                    num_chips=num_chips,
                    batch_size=batch_size,
                    parallelism=result.parallelism,
                    throughput=throughput,
                    energy_per_work_j=energy,
                    attained_slo=max(1.0, attained) if attained != math.inf else math.inf,
                )
                if throughput >= target:
                    if best_compliant is None or energy < best_compliant[0]:
                        best_compliant = (energy, selection)
                else:
                    key = (attained, energy)
                    if best_any is None or key < (best_any[1].attained_slo, best_any[0]):
                        best_any = (energy, selection)
        if best_compliant is not None:
            return best_compliant[1]
        if best_any is not None:
            return best_any[1]
        return SLOSelection.infeasible(spec.name, chip)

    def table4(
        self, workloads: list[str], chip: str = "NPU-D"
    ) -> list[SLOSelection]:
        """Regenerate the Table 4 rows for a list of workloads."""
        return [self.search(workload, chip) for workload in workloads]


__all__ = ["SLOSearch", "SLOSelection", "SLO_RELAXATION"]
