"""Result containers for workload simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gating.report import EnergyReport, PolicyName
from repro.hardware.chips import NPUChipSpec
from repro.hardware.components import Component
from repro.simulator.engine import WorkloadProfile
from repro.workloads.base import ParallelismConfig


@dataclass
class SimulationResult:
    """Energy reports of every evaluated policy for one workload run.

    All energies are *per chip per iteration*; pod-level and per-unit-work
    quantities are derived via :meth:`pod_energy_j` and
    :meth:`energy_per_work`.
    """

    workload: str
    chip: NPUChipSpec
    num_chips: int
    batch_size: int
    parallelism: ParallelismConfig
    profile: WorkloadProfile
    reports: dict[PolicyName, EnergyReport] = field(default_factory=dict)
    work_per_iteration: float = 1.0
    iteration_unit: str = "iteration"

    # ------------------------------------------------------------------ #
    def report(self, policy: PolicyName) -> EnergyReport:
        """The energy report of one policy."""
        if policy not in self.reports:
            raise KeyError(f"policy {policy} was not evaluated for {self.workload}")
        return self.reports[policy]

    def pod_energy_j(self, policy: PolicyName) -> float:
        """Energy of the whole pod for one iteration."""
        return self.report(policy).total_energy_j * self.num_chips

    def energy_per_work(self, policy: PolicyName) -> float:
        """Joules per unit of work (token, image, request or step)."""
        return self.pod_energy_j(policy) / self.work_per_iteration

    def iteration_time_s(self, policy: PolicyName) -> float:
        """Execution time of one iteration under a policy."""
        return self.report(policy).total_time_s

    def throughput(self, policy: PolicyName = PolicyName.NOPG) -> float:
        """Units of work per second for the whole pod."""
        time_s = self.iteration_time_s(policy)
        if time_s <= 0:
            return 0.0
        return self.work_per_iteration / time_s

    # ------------------------------------------------------------------ #
    def energy_savings(self, policy: PolicyName) -> float:
        """Fractional energy savings of ``policy`` relative to NoPG."""
        return self.report(policy).savings_vs(self.report(PolicyName.NOPG))

    def component_savings(self, policy: PolicyName, component: Component) -> float:
        """Savings on one component, as a fraction of NoPG total energy."""
        return self.report(policy).component_savings_vs(
            self.report(PolicyName.NOPG), component
        )

    def performance_overhead(self, policy: PolicyName) -> float:
        """Slowdown of ``policy`` relative to NoPG."""
        baseline = self.report(PolicyName.NOPG).total_time_s
        if baseline <= 0:
            return 0.0
        return self.report(policy).total_time_s / baseline - 1.0

    def average_power_w(self, policy: PolicyName) -> float:
        """Average per-chip power under a policy."""
        return self.report(policy).average_power_w

    def peak_power_w(self, policy: PolicyName) -> float:
        """Peak per-chip power under a policy."""
        return self.report(policy).peak_power_w

    # ------------------------------------------------------------------ #
    def temporal_utilization(self, component: Component) -> float:
        """Temporal utilization of a component (Figures 4, 6, 8, 9)."""
        return self.profile.temporal_utilization(component)

    def sa_spatial_utilization(self) -> float:
        """Spatial utilization of the systolic arrays (Figure 5)."""
        return self.profile.sa_spatial_utilization()

    def summary(self) -> dict[str, float]:
        """A flat dictionary useful for tabular reporting."""
        nopg = self.report(PolicyName.NOPG)
        row: dict[str, float] = {
            "time_s": nopg.total_time_s,
            "energy_j": nopg.total_energy_j,
            "static_fraction": nopg.static_fraction(),
            "sa_temporal_util": self.temporal_utilization(Component.SA),
            "sa_spatial_util": self.sa_spatial_utilization(),
            "vu_temporal_util": self.temporal_utilization(Component.VU),
            "hbm_temporal_util": self.temporal_utilization(Component.HBM),
            "ici_temporal_util": self.temporal_utilization(Component.ICI),
        }
        for policy in self.reports:
            if policy is PolicyName.NOPG:
                continue
            key = policy.value.lower().replace("-", "_")
            row[f"savings_{key}"] = self.energy_savings(policy)
            row[f"overhead_{key}"] = self.performance_overhead(policy)
        return row


__all__ = ["EnergyReport", "SimulationResult"]
