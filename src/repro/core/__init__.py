"""Top-level simulation API: configuration, results, SLO search."""

from repro.core.config import SimulationConfig
from repro.core.regate import simulate_graph, simulate_workload
from repro.core.results import EnergyReport, SimulationResult
from repro.core.slo import SLOSearch, SLOSelection

__all__ = [
    "EnergyReport",
    "SLOSearch",
    "SLOSelection",
    "SimulationConfig",
    "SimulationResult",
    "simulate_graph",
    "simulate_workload",
]
