"""Power-state tracking in the NPU core pipeline (§4.1 of the paper).

A power-gated component is handled as a structural hazard: an
instruction cannot be dispatched until its target component is ready.
Dispatching to a powered-off component triggers a wake-up; the ready bit
is set once the wake-up delay elapses.  Each component has its own ready
bit so different components can be powered on/off independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.components import Component, PowerState
from repro.isa.instructions import (
    Instruction,
    Opcode,
    Program,
    SetpmInstruction,
    SlotKind,
)

_SLOT_COMPONENT = {
    SlotKind.SA: Component.SA,
    SlotKind.VU: Component.VU,
    SlotKind.DMA: Component.HBM,
    SlotKind.ICI: Component.ICI,
}


@dataclass
class FunctionalUnitState:
    """Power and readiness state of one functional unit instance."""

    component: Component
    index: int
    wake_delay_cycles: int
    power_state: PowerState = PowerState.ON
    ready_at_cycle: int = 0
    busy_until_cycle: int = 0
    software_mode: PowerState = PowerState.AUTO
    wake_count: int = 0
    gated_cycles: int = 0
    _gated_since: int | None = None

    @property
    def is_powered(self) -> bool:
        return self.power_state is PowerState.ON

    def power_off(self, cycle: int, mode: PowerState = PowerState.OFF) -> None:
        """Gate the unit at ``cycle`` (no effect if already gated)."""
        if self.power_state is PowerState.ON:
            self.power_state = mode
            self._gated_since = cycle

    def power_on(self, cycle: int) -> int:
        """Wake the unit; returns the cycle at which it becomes ready."""
        if self.power_state is PowerState.ON:
            return max(self.ready_at_cycle, cycle)
        if self._gated_since is not None:
            self.gated_cycles += max(0, cycle - self._gated_since)
            self._gated_since = None
        self.power_state = PowerState.ON
        self.wake_count += 1
        self.ready_at_cycle = cycle + self.wake_delay_cycles
        return self.ready_at_cycle

    def finalize(self, cycle: int) -> None:
        """Account for a gated period still open at the end of execution."""
        if self._gated_since is not None:
            self.gated_cycles += max(0, cycle - self._gated_since)
            self._gated_since = None


class CorePipeline:
    """In-order dispatch model with per-component ready bits.

    The pipeline executes a :class:`~repro.isa.instructions.Program`,
    stalling instructions whose target unit is waking up, and applying
    ``setpm`` instructions to override the hardware-managed (auto)
    policy.  It reports the schedule length (with stalls) and per-unit
    gating statistics; the hardware idle-detection policy itself lives in
    :mod:`repro.gating.idle_detection`.
    """

    def __init__(
        self,
        num_sa: int = 2,
        num_vu: int = 2,
        sa_wake_delay: int = 10,
        vu_wake_delay: int = 2,
        dma_wake_delay: int = 60,
        ici_wake_delay: int = 60,
    ):
        self.units: dict[tuple[Component, int], FunctionalUnitState] = {}
        for index in range(num_sa):
            self._add_unit(Component.SA, index, sa_wake_delay)
        for index in range(num_vu):
            self._add_unit(Component.VU, index, vu_wake_delay)
        self._add_unit(Component.HBM, 0, dma_wake_delay)
        self._add_unit(Component.ICI, 0, ici_wake_delay)
        self.total_stall_cycles = 0
        self.executed_instructions = 0

    def _add_unit(self, component: Component, index: int, delay: int) -> None:
        self.units[(component, index)] = FunctionalUnitState(
            component=component, index=index, wake_delay_cycles=delay
        )

    def unit(self, component: Component, index: int = 0) -> FunctionalUnitState:
        """Look up the state of one functional unit."""
        return self.units[(component, index)]

    # ------------------------------------------------------------------ #
    def _apply_setpm(self, instruction: SetpmInstruction, cycle: int) -> None:
        if instruction.target is Component.SRAM:
            return  # SRAM segment states are modelled in gating.sram_gating.
        for index in instruction.affected_units():
            key = (instruction.target, index)
            if key not in self.units:
                continue
            unit = self.units[key]
            unit.software_mode = instruction.mode
            if instruction.mode is PowerState.OFF:
                unit.power_off(cycle)
            elif instruction.mode is PowerState.ON:
                unit.power_on(cycle)

    def _dispatch(self, instruction: Instruction, cycle: int) -> int:
        """Dispatch one instruction; returns the stall cycles it incurred."""
        component = _SLOT_COMPONENT.get(instruction.slot)
        if component is None:
            return 0
        key = (component, instruction.unit_index)
        unit = self.units.get(key) or self.units.get((component, 0))
        if unit is None:
            return 0
        ready_at = unit.power_on(cycle) if not unit.is_powered else unit.ready_at_cycle
        stall = max(0, ready_at - cycle)
        start = cycle + stall
        unit.busy_until_cycle = max(unit.busy_until_cycle, start + instruction.duration_cycles)
        return stall

    def run(self, program: Program) -> int:
        """Execute a program; returns total cycles including wake-up stalls."""
        skew = 0  # accumulated stall cycles shifting the whole schedule
        last_cycle = 0
        for bundle in program.bundles:
            cycle = bundle.cycle + skew
            bundle_stall = 0
            for instruction in bundle.instructions:
                if isinstance(instruction, SetpmInstruction):
                    self._apply_setpm(instruction, cycle)
                    continue
                if instruction.opcode is Opcode.NOP:
                    continue
                bundle_stall = max(bundle_stall, self._dispatch(instruction, cycle))
                self.executed_instructions += 1
            skew += bundle_stall
            self.total_stall_cycles += bundle_stall
            last_cycle = cycle + bundle_stall
        end = max(
            [last_cycle]
            + [unit.busy_until_cycle for unit in self.units.values()]
        )
        for unit in self.units.values():
            unit.finalize(end)
        return end


__all__ = ["CorePipeline", "FunctionalUnitState"]
