"""VLIW instruction bundles and the ``setpm`` power-management instruction.

The NPU core issues statically scheduled VLIW bundles; ReGate adds a
``setpm`` (set power mode) instruction encoded in the miscellaneous slot
(Figure 14 of the paper).  Three variants exist:

* SRAM variant — two scalar registers give the start/end address of a
  contiguous SRAM region whose power mode is changed.
* Register-bitmap variant — a scalar register holds a functional-unit
  bitmap.
* Immediate-bitmap variant — an 8-bit immediate holds the bitmap.

Each component can be put into ``on``, ``auto``, ``off`` (and ``sleep``
for SRAM) mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.hardware.components import Component, PowerState


class SlotKind(str, Enum):
    """VLIW issue slots of the NPU core."""

    SA = "sa"
    VU = "vu"
    DMA = "dma"
    ICI = "ici"
    MISC = "misc"


class Opcode(str, Enum):
    """Operations modelled at the tile level."""

    PUSH = "push"  # push a weight/input tile into an SA
    POP = "pop"  # pop an output tile from an SA
    VADD = "vadd"
    VMUL = "vmul"
    VREDUCE = "vreduce"
    DMA_IN = "dma_in"
    DMA_OUT = "dma_out"
    ICI_SEND = "ici_send"
    ICI_RECV = "ici_recv"
    SETPM = "setpm"
    NOP = "nop"


_FU_TYPE_CODES = {
    "sram": 0b000,
    Component.SRAM: 0b000,
    Component.SA: 0b001,
    Component.VU: 0b010,
    Component.HBM: 0b011,
    Component.ICI: 0b100,
}

_MODE_CODES = {
    PowerState.AUTO: 0b00,
    PowerState.ON: 0b01,
    PowerState.OFF: 0b10,
    PowerState.SLEEP: 0b11,
}


@dataclass(frozen=True)
class Instruction:
    """One operation occupying one VLIW slot for ``duration_cycles``."""

    opcode: Opcode
    slot: SlotKind
    unit_index: int = 0
    duration_cycles: int = 1
    operands: tuple = ()

    def __post_init__(self) -> None:
        if self.duration_cycles < 1:
            raise ValueError("instruction duration must be >= 1 cycle")


@dataclass(frozen=True)
class SetpmInstruction(Instruction):
    """A ``setpm`` instruction configuring the power mode of components.

    Exactly one of ``unit_bitmap`` (for SAs/VUs/HBM/ICI) or
    ``address_range`` (for SRAM) must be provided.
    """

    target: Component = Component.VU
    mode: PowerState = PowerState.AUTO
    unit_bitmap: int | None = None
    address_range: tuple[int, int] | None = None
    use_register_bitmap: bool = False

    def __init__(
        self,
        target: Component,
        mode: PowerState,
        unit_bitmap: int | None = None,
        address_range: tuple[int, int] | None = None,
        use_register_bitmap: bool = False,
    ):
        object.__setattr__(self, "opcode", Opcode.SETPM)
        object.__setattr__(self, "slot", SlotKind.MISC)
        object.__setattr__(self, "unit_index", 0)
        object.__setattr__(self, "duration_cycles", 1)
        object.__setattr__(self, "operands", ())
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "unit_bitmap", unit_bitmap)
        object.__setattr__(self, "address_range", address_range)
        object.__setattr__(self, "use_register_bitmap", use_register_bitmap)
        self._validate()

    def _validate(self) -> None:
        if self.target is Component.SRAM:
            if self.address_range is None:
                raise ValueError("SRAM setpm requires an address range")
            start, end = self.address_range
            if end < start or start < 0:
                raise ValueError("invalid SRAM address range")
        else:
            if self.unit_bitmap is None:
                raise ValueError("non-SRAM setpm requires a unit bitmap")
            if self.unit_bitmap <= 0 or self.unit_bitmap > 0xFF:
                raise ValueError("unit bitmap must fit in 8 bits and be non-zero")
            if self.mode is PowerState.SLEEP:
                raise ValueError("only SRAM supports the sleep mode")

    # ------------------------------------------------------------------ #
    def encode(self) -> int:
        """Encode the instruction into the misc-slot bit layout (Figure 14).

        Layout (low to high bits):
        ``[mode:2][fu_type:3][variant:1][bitmap:8 | reserved]``.
        The SRAM variant carries its addresses in scalar registers, so
        only the opcode fields are encoded here.
        """
        mode_bits = _MODE_CODES[self.mode]
        type_bits = _FU_TYPE_CODES[self.target]
        encoded = mode_bits | (type_bits << 2)
        if self.target is Component.SRAM:
            variant = 0
            payload = 0
        else:
            variant = 0 if self.use_register_bitmap else 1
            payload = self.unit_bitmap or 0
        encoded |= variant << 5
        encoded |= payload << 6
        return encoded

    @classmethod
    def decode(cls, word: int) -> "SetpmInstruction":
        """Decode an encoded ``setpm`` word (inverse of :meth:`encode`)."""
        mode_bits = word & 0b11
        type_bits = (word >> 2) & 0b111
        variant = (word >> 5) & 0b1
        payload = (word >> 6) & 0xFF
        mode = {code: state for state, code in _MODE_CODES.items()}[mode_bits]
        target = {
            0b000: Component.SRAM,
            0b001: Component.SA,
            0b010: Component.VU,
            0b011: Component.HBM,
            0b100: Component.ICI,
        }[type_bits]
        if target is Component.SRAM:
            return cls(target=target, mode=mode, address_range=(0, 0))
        return cls(
            target=target,
            mode=mode,
            unit_bitmap=payload if payload else 1,
            use_register_bitmap=not variant,
        )

    def affected_units(self) -> list[int]:
        """Indices of the functional units selected by the bitmap."""
        if self.unit_bitmap is None:
            return []
        return [bit for bit in range(8) if self.unit_bitmap & (1 << bit)]


@dataclass
class VLIWBundle:
    """One issue cycle: at most one instruction per slot category."""

    cycle: int
    instructions: list[Instruction] = field(default_factory=list)

    def add(self, instruction: Instruction) -> None:
        if instruction.slot is SlotKind.MISC and any(
            existing.slot is SlotKind.MISC for existing in self.instructions
        ):
            raise ValueError("only one misc-slot instruction per bundle")
        self.instructions.append(instruction)

    def slot_instructions(self, slot: SlotKind) -> list[Instruction]:
        return [instr for instr in self.instructions if instr.slot is slot]

    @property
    def setpm_instructions(self) -> list[SetpmInstruction]:
        return [
            instr for instr in self.instructions if isinstance(instr, SetpmInstruction)
        ]


@dataclass
class Program:
    """A statically scheduled sequence of VLIW bundles."""

    bundles: list[VLIWBundle] = field(default_factory=list)

    def append(self, bundle: VLIWBundle) -> None:
        if self.bundles and bundle.cycle <= self.bundles[-1].cycle:
            raise ValueError("bundles must be appended in increasing cycle order")
        self.bundles.append(bundle)

    @property
    def num_cycles(self) -> int:
        """Total schedule length in cycles."""
        if not self.bundles:
            return 0
        last = self.bundles[-1]
        tail = max((instr.duration_cycles for instr in last.instructions), default=1)
        return last.cycle + tail

    def instructions_in_slot(self, slot: SlotKind, unit_index: int | None = None):
        """Yield (cycle, instruction) pairs for one slot (optionally one unit)."""
        for bundle in self.bundles:
            for instruction in bundle.slot_instructions(slot):
                if unit_index is None or instruction.unit_index == unit_index:
                    yield bundle.cycle, instruction

    def count_setpm(self) -> int:
        """Number of ``setpm`` instructions in the program."""
        return sum(len(bundle.setpm_instructions) for bundle in self.bundles)


__all__ = [
    "Instruction",
    "Opcode",
    "Program",
    "SetpmInstruction",
    "SlotKind",
    "VLIWBundle",
]
