"""NPU ISA model, including the ReGate ``setpm`` extension (§4.2)."""

from repro.isa.instructions import (
    Instruction,
    Opcode,
    Program,
    SetpmInstruction,
    SlotKind,
    VLIWBundle,
)
from repro.isa.pipeline import CorePipeline, FunctionalUnitState

__all__ = [
    "CorePipeline",
    "FunctionalUnitState",
    "Instruction",
    "Opcode",
    "Program",
    "SetpmInstruction",
    "SlotKind",
    "VLIWBundle",
]
